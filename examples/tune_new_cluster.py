#!/usr/bin/env python3
"""Compile-time tuning of a brand-new cluster (the paper's Fig. 4 flow).

Trains the shipped model with MRI held out, then plays the part of an
MPI library being compiled on MRI for the first time:

1. no tuning table exists -> hardware features are extracted from the
   (synthetic) ``lscpu``/``ibstat``/``lspci`` output, the pre-trained
   model is batch-inferred, and a JSON tuning table is written;
2. a second compilation finds the table and skips the ML path;
3. the resulting selector is compared against MVAPICH defaults and the
   exhaustive-benchmarking oracle on MRI.

Run:  python examples/tune_new_cluster.py
"""

import tempfile
import time
from pathlib import Path

from repro.core import PmlMpiFramework, collect_dataset, offline_train
from repro.hwmodel import cluster_features, get_cluster
from repro.apps import run_sweep, speedup_summary
from repro.smpi import MvapichDefaultSelector, OracleSelector


def main() -> None:
    print("offline stage: training with MRI held out...")
    dataset = collect_dataset()  # full 18-cluster campaign (cached)
    train = dataset.filter(clusters=set(dataset.clusters()) - {"MRI"})
    selector = offline_train(train)

    mri = get_cluster("MRI")
    feats = cluster_features(mri)
    print(f"\nextracted hardware features of {mri.name}:")
    print(f"  clock={feats.cpu_max_clock_ghz} GHz, "
          f"L3={feats.l3_cache_mib} MiB, "
          f"membw={feats.memory_bandwidth_gbs} GB/s, "
          f"link={feats.link_speed_gbps} Gb/s x{feats.link_width}")

    with tempfile.TemporaryDirectory() as tmp:
        fw = PmlMpiFramework(selector, Path(tmp))

        t0 = time.perf_counter()
        table_selector = fw.setup_cluster(mri)
        first = time.perf_counter() - t0
        print(f"\nfirst compilation: generated tuning table in "
              f"{first * 1e3:.1f} ms -> {fw.table_path('MRI').name}")

        t0 = time.perf_counter()
        fw.setup_cluster(mri)
        second = time.perf_counter() - t0
        print(f"second compilation: loaded existing table in "
              f"{second * 1e3:.1f} ms (ML path bypassed)")

        print("\nruntime comparison on MRI (8 nodes x 64 ppn):")
        for coll in ("allgather", "alltoall"):
            ours = run_sweep(mri, coll, 8, 64, table_selector)
            default = run_sweep(mri, coll, 8, 64,
                                MvapichDefaultSelector())
            oracle = run_sweep(mri, coll, 8, 64, OracleSelector())
            vs_def = speedup_summary(default, ours)
            vs_orc = speedup_summary(oracle, ours)
            print(f"  {coll:<10} vs MVAPICH default: "
                  f"{vs_def['total_time_speedup']:.3f}x | "
                  f"slowdown vs oracle: "
                  f"{(1 / vs_orc['total_time_speedup'] - 1) * 100:.1f}%")


if __name__ == "__main__":
    main()
