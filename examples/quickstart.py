#!/usr/bin/env python3
"""Quickstart: train a PML-MPI selector and pick collective algorithms.

Collects a small benchmark dataset on three of the paper's clusters
(simulated), trains the pre-trained Random-Forest selector, and asks it
for algorithm choices on a cluster it has never seen.

Run:  python examples/quickstart.py
"""

from repro.core import collect_dataset, offline_train
from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import measured_time


def main() -> None:
    # 1. Offline stage: benchmark three small clusters and train.
    #    (The full 18-cluster campaign is collect_dataset() with no
    #    arguments; it is cached on disk after the first run.)
    clusters = [get_cluster(n) for n in ("RI", "Ray", "Frontera RTX")]
    print("collecting benchmark dataset (simulated clusters)...")
    dataset = collect_dataset(clusters=clusters)
    print(f"  {len(dataset)} records, labels: "
          f"{dataset.label_distribution()}")

    selector = offline_train(dataset)
    for coll, model in selector.models.items():
        print(f"  {coll}: top features {model.feature_names}")

    # 2. Online stage: constant-time selection on an unseen cluster.
    spec = get_cluster("Sierra")
    machine = Machine(spec, nodes=4, ppn=16)
    print(f"\nalgorithm choices on unseen cluster {spec.name} "
          f"({machine.nodes} nodes x {machine.ppn} ppn):")
    print(f"{'collective':<10} {'msg size':>9} {'chosen':>20} "
          f"{'runtime':>12}")
    for coll in ("allgather", "alltoall"):
        for msg in (16, 4096, 1 << 20):
            algo = selector.select(coll, machine, msg)
            t = measured_time(machine, coll, algo, msg)
            print(f"{coll:<10} {msg:>9} {algo:>20} {t * 1e6:>10.1f}us")


if __name__ == "__main__":
    main()
