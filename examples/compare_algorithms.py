#!/usr/bin/env python3
"""Explore the collective algorithms themselves (paper Fig. 2).

Sweeps every MPI_Alltoall and MPI_Allgather algorithm across message
sizes on two very different clusters and prints the winner per size —
showing how the optimal algorithm shifts with hardware.  Also
cross-checks the analytic cost model against the discrete-event
executor (which really moves every block) on a small configuration.

Run:  python examples/compare_algorithms.py
"""

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import algorithms, execute
from repro.smpi.datatypes import alltoall_expected

MSG_SIZES = [2**k for k in range(0, 21, 2)]


def sweep(cluster: str, collective: str, nodes: int, ppn: int) -> None:
    machine = Machine(get_cluster(cluster), nodes, ppn)
    algos = algorithms(collective)
    print(f"\n{collective} on {cluster} ({nodes} nodes x {ppn} ppn):")
    header = f"{'msg':>9}" + "".join(f"{n[:12]:>14}" for n in algos)
    print(header + f"{'best':>20}")
    for msg in MSG_SIZES:
        times = {n: a.estimate(machine, msg) for n, a in algos.items()}
        best = min(times, key=times.__getitem__)
        row = f"{msg:>9}" + "".join(f"{t * 1e6:>12.1f}us"
                                    for t in times.values())
        print(row + f"{best:>20}")


def verify_correctness() -> None:
    """Run the data-level executor: every algorithm must deliver every
    block to the right rank (and the simulated clock should agree with
    the analytic estimate to within pipelining slack)."""
    machine = Machine(get_cluster("Haswell"), 2, 6)
    print(f"\ncorrectness check on Haswell 2x6 (p={machine.p}):")
    for name, algo in algorithms("alltoall").items():
        result = execute(algo, machine, msg_size=512)
        ok = all(result.buffers[r] == alltoall_expected(r, machine.p)
                 for r in range(machine.p))
        est = algo.estimate(machine, 512)
        print(f"  {name:<20} data={'OK' if ok else 'CORRUPT'} "
              f"des={result.time_s * 1e6:8.2f}us "
              f"analytic={est * 1e6:8.2f}us")


def main() -> None:
    sweep("Frontera", "alltoall", 2, 16)
    sweep("MRI", "alltoall", 2, 16)
    sweep("Frontera", "allgather", 4, 28)
    sweep("RI", "allgather", 2, 8)
    verify_correctness()


if __name__ == "__main__":
    main()
