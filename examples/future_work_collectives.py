#!/usr/bin/env python3
"""Beyond the paper: Allreduce/Bcast selection and two-level algorithms.

The paper's Section IX proposes extending the framework to further
collectives and to hierarchical algorithms.  This example:

1. collects an Allreduce+Bcast dataset on three clusters and trains the
   same PML pipeline on it,
2. shows the selector's choices on an unseen cluster,
3. compares two-level (leader-based) algorithms against the best flat
   algorithm at full subscription — where hierarchy pays off and where
   it does not.

Run:  python examples/future_work_collectives.py
"""

from repro.core import collect_dataset, offline_train
from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import algorithms, measured_time
from repro.smpi.collectives.twolevel import two_level_variants


def ml_on_new_collectives() -> None:
    clusters = [get_cluster(n) for n in ("RI", "Ray", "Frontera RTX")]
    dataset = collect_dataset(clusters=clusters,
                              collectives=("allreduce", "bcast"))
    print(f"dataset: {len(dataset)} records, "
          f"labels {dataset.label_distribution()}")
    selector = offline_train(dataset, collectives=("allreduce", "bcast"))

    machine = Machine(get_cluster("Sierra"), 4, 16)
    print(f"\nselections on unseen Sierra (4x16):")
    for coll in ("allreduce", "bcast"):
        for msg in (8, 8192, 1 << 20):
            algo = selector.select(coll, machine, msg)
            t = measured_time(machine, coll, algo, msg)
            print(f"  {coll:<10} m={msg:>8} -> {algo:<22} "
                  f"{t * 1e6:9.1f}us")


def two_level_vs_flat() -> None:
    machine = Machine(get_cluster("Frontera"), 16, 56)
    print(f"\ntwo-level vs best flat on Frontera 16x56:")
    for coll, variants in two_level_variants().items():
        for msg in (8, 4096, 1 << 20):
            flat_t, flat_n = min(
                (a.estimate(machine, msg), n)
                for n, a in algorithms(coll).items())
            two_t, two_n = min((a.estimate(machine, msg), a.name)
                               for a in variants)
            winner = "two-level" if two_t < flat_t else "flat"
            print(f"  {coll:<10} m={msg:>8} flat[{flat_n}]="
                  f"{flat_t * 1e6:10.1f}us  "
                  f"2lvl[{two_n}]={two_t * 1e6:10.1f}us  -> {winner}")


if __name__ == "__main__":
    ml_on_new_collectives()
    two_level_vs_flat()
