#!/usr/bin/env python3
"""Talk to the persistent selection daemon (`pml-mpi serve`).

Trains a tiny bundle, starts a daemon for cluster RI on a Unix socket
(in-process, on a background thread — a deployment would run
`pml-mpi serve RI --bundle pml.json` as its own process), then drives
it through the client: ping, a query batch, a deadline-bounded batch,
hot-reload, stats, graceful shutdown.

Run:  python examples/daemon_client.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro.core import collect_dataset, save_selector
from repro.core.inference import PretrainedSelector
from repro.core.training import train_model
from repro.hwmodel import get_cluster
from repro.serve import DaemonClient, DaemonConfig, SelectionDaemon

COLLECTIVES = ("allgather", "alltoall")


def train_bundle(path: Path, seed: int = 0) -> None:
    dataset = collect_dataset(clusters=[get_cluster("RI")])
    selector = PretrainedSelector({
        coll: train_model(dataset, coll, seed=seed,
                          params={"n_estimators": 8})
        for coll in COLLECTIVES})
    save_selector(selector, path)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="pml-daemon-") as tmp:
        root = Path(tmp)
        bundle = root / "pml.json"
        print("training a small RI bundle...")
        train_bundle(bundle)

        # 1. Boot and serve in the background.  `boot()` acquires the
        #    state-dir lock, recovers any previous crash, and loads the
        #    bundle; `run()` serves until drained.
        daemon = SelectionDaemon(DaemonConfig(
            spec=get_cluster("RI"),
            socket_path=root / "daemon.sock",
            state_dir=root / "state",
            bundle=bundle,
            ready_file=root / "ready.json",
            reload_poll_s=0.1))
        daemon.boot()
        thread = threading.Thread(target=daemon.run, name="daemon")
        thread.start()
        while not (root / "ready.json").exists():
            time.sleep(0.01)
        print(f"daemon ready on {daemon.config.socket_path}")

        with DaemonClient(daemon.config.socket_path) as client:
            # 2. Ping: protocol version and current snapshot.
            pong = client.ping()
            print(f"ping: protocol v{pong['protocol']}, "
                  f"snapshot {pong['snapshot']}")

            # 3. A query batch.  Malformed queries never raise — they
            #    come back as decisions with action="invalid".
            response = client.select([
                {"collective": "allgather", "nodes": 2, "ppn": 8,
                 "msg_size": 4096},
                {"collective": "alltoall", "nodes": 2, "ppn": 4,
                 "msg_size": 65536},
                {"collective": "allgather", "nodes": 2, "ppn": 8,
                 "msg_size": -1},
            ])
            for d in response["decisions"]:
                print(f"  {d['collective']:>9} msg={d['msg_size']:>6}"
                      f" -> {d['algorithm']} ({d['action']})")

            # 4. A deadline-bounded batch: if the model path cannot
            #    answer in time, the daemon degrades to the heuristic
            #    floor and says so (degraded="deadline-floor").
            response = client.select(
                [{"collective": "allgather", "nodes": 2, "ppn": 8,
                  "msg_size": 512}], deadline_ms=250)
            print(f"deadline batch answered by "
                  f"{response.get('degraded', 'model snapshot')}")

            # 5. Hot-reload: retrain, overwrite the bundle, reload.
            #    A corrupt bundle would be rejected (old snapshot
            #    keeps serving); a valid one swaps atomically.
            train_bundle(bundle, seed=1)
            result = client.reload()
            print(f"reload: {result['status']} -> "
                  f"snapshot {result['version']}")

            # 6. Health counters: requests partition exactly into
            #    ok + deadline_floor + bad_request + overloaded +
            #    draining + internal.
            counters = client.stats()["counters"]
            daemon_counters = {
                k.removeprefix("serve.daemon."): v
                for k, v in counters.items()
                if k.startswith("serve.daemon.")}
            print(f"counters: {daemon_counters}")

            # 7. Graceful drain: in-flight work finishes, socket and
            #    lock are removed, the thread exits.
            client.shutdown()
        thread.join(timeout=30)
        print("daemon drained; bye")


if __name__ == "__main__":
    main()
