#!/usr/bin/env python3
"""Application-level impact of collective algorithm selection
(the paper's Fig. 13 workload).

Strong-scales the Gromacs BenchMEM proxy and the MiniFE CG proxy on
simulated TACC Frontera under three selectors — the pre-trained PML
model (trained without Frontera), the MVAPICH static defaults, and
random selection — and reports runtimes plus speedups.

Run:  python examples/application_speedup.py
"""

from repro.apps import GromacsProxy, MiniFEProxy, strong_scaling
from repro.core import collect_dataset, offline_train
from repro.hwmodel import get_cluster
from repro.smpi import MvapichDefaultSelector, RandomSelector

COUNTS = [(1, 56), (2, 56), (4, 56), (8, 56), (16, 56)]


def main() -> None:
    dataset = collect_dataset()
    # The paper's cluster-based protocol holds out both evaluation
    # systems (Frontera and MRI) during training.
    train = dataset.filter(
        clusters=set(dataset.clusters()) - {"Frontera", "MRI"})
    pml = offline_train(train)
    frontera = get_cluster("Frontera")

    selectors = {
        "pml": pml,
        "default": MvapichDefaultSelector(),
        "random": RandomSelector(0),
    }

    for app in (GromacsProxy(), MiniFEProxy()):
        print(f"\n=== {app.name} on Frontera (strong scaling, 50 steps)"
              f" ===")
        results = {name: strong_scaling(app, frontera, COUNTS, sel,
                                        steps=50)
                   for name, sel in selectors.items()}
        print(f"{'#procs':>7} {'pml(s)':>10} {'default(s)':>11} "
              f"{'random(s)':>10} {'comm%':>6}")
        for i, (nodes, ppn) in enumerate(COUNTS):
            r = results["pml"][i]
            print(f"{nodes * ppn:>7} {r.total_s:>10.4f} "
                  f"{results['default'][i].total_s:>11.4f} "
                  f"{results['random'][i].total_s:>10.4f} "
                  f"{r.comm_fraction * 100:>5.1f}%")
        tot = {n: sum(r.total_s for r in rs)
               for n, rs in results.items()}
        print(f"overall: vs default "
              f"{(tot['default'] / tot['pml'] - 1) * 100:+.2f}%  "
              f"vs random {(tot['random'] / tot['pml'] - 1) * 100:+.2f}%"
              f"  (paper: +2.9%/+19.4% gromacs, +4.4%/+20.7% minife)")


if __name__ == "__main__":
    main()
