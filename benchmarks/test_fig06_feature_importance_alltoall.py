"""Fig. 6 — Gini feature importances, MPI_Alltoall.

Paper: MPI-specific features dominate again; among hardware features
the interconnect bandwidth (link speed and lane count) leads, because
Alltoall moves far more data than Allgather.

Shape checks: msg_size first; MPI features carry most mass; hardware
features contribute a nonzero remainder.  Whether link speed or a
correlated cluster identifier (e.g. core count) tops the hardware
ranking is reported rather than asserted — see EXPERIMENTS.md.
"""

from repro.core.features import MPI_FEATURE_NAMES
from repro.core.training import feature_importance_report
from repro.hwmodel.extract import HARDWARE_FEATURE_NAMES


def test_fig06_importance_alltoall(benchmark, dataset, report):
    rep = benchmark.pedantic(
        lambda: feature_importance_report(dataset, "alltoall"),
        rounds=1, iterations=1)

    lines = [f"{'feature':<24} {'importance':>10}"]
    for name, value in rep:
        tag = " (MPI)" if name in MPI_FEATURE_NAMES else " (HW)"
        lines.append(f"{name:<24} {value:>10.4f}{tag}")
    scores = dict(rep)
    hw_top = max(HARDWARE_FEATURE_NAMES, key=scores.__getitem__)
    lines.append(f"top hardware feature here: {hw_top} "
                 "(paper: interconnect speed/lanes)")
    report("Fig. 6 — feature importances (Alltoall)", lines)

    ordered = [name for name, _ in rep]
    assert ordered[0] == "msg_size"
    assert sum(scores[f] for f in MPI_FEATURE_NAMES) > 0.5
    assert sum(scores[f] for f in HARDWARE_FEATURE_NAMES) > 0.02
