"""Extension — two-level (hierarchical) collectives.

The paper restricts its study to flat algorithms (Section I) and names
hierarchical collectives as the follow-up.  This benchmark quantifies
what that scoping left on the table: for each collective, the best
two-level variant vs the best flat algorithm across message sizes on
Frontera at full subscription (16 x 56).

Shape checks: two-level allreduce/allgather win at small message sizes
(hierarchy collapses the inter-node latency term), flat alltoall wins
at large sizes (the leader funnel saturates), and no two-level variant
is pathological (>100x) anywhere.
"""

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import algorithms
from repro.smpi.collectives.twolevel import two_level_variants

MSGS = (8, 256, 8192, 262144, 1048576)


def run_comparison():
    machine = Machine(get_cluster("Frontera"), 16, 56)
    out = {}
    variants = two_level_variants()
    for coll in ("allgather", "alltoall", "allreduce", "bcast"):
        flat_algos = algorithms(coll)
        rows = {}
        for msg in MSGS:
            flat_best = min((a.estimate(machine, msg), n)
                            for n, a in flat_algos.items())
            two_best = min((a.estimate(machine, msg), a.name)
                           for a in variants[coll])
            rows[msg] = (flat_best, two_best)
        out[coll] = rows
    return out


def test_two_level_extension(benchmark, report):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    lines = [f"{'collective':<10} {'msg':>9} {'best flat':>24} "
             f"{'best two-level':>28} {'2lvl/flat':>10}"]
    for coll, rows in results.items():
        for msg, ((ft, fn), (tt, tn)) in rows.items():
            lines.append(f"{coll:<10} {msg:>9} "
                         f"{fn:>18} {ft * 1e6:>9.1f}us "
                         f"{tn:>22} {tt * 1e6:>9.1f}us "
                         f"{tt / ft:>9.2f}x")
    lines.append("paper scope: flat only; hierarchy is Section IX "
                 "future work")
    report("Extension — two-level vs flat (Frontera 16x56)", lines)

    # Hierarchy wins the latency-bound allgather outright...
    (ft, _), (tt, _) = results["allgather"][8]
    assert tt < ft, "two-level allgather should win tiny messages"
    # ...and stays close for allreduce, where the flat binomial
    # reduce+bcast is already placement-friendly under block mapping.
    (ft, _), (tt, _) = results["allreduce"][8]
    assert tt < 1.5 * ft, "two-level allreduce should be competitive"
    # ...and loses the bandwidth-bound alltoall.
    (ft, _), (tt, _) = results["alltoall"][1048576]
    assert ft < tt, "flat alltoall should win large messages"
    # Nothing pathological anywhere.
    for coll, rows in results.items():
        for msg, ((ft, _), (tt, _)) in rows.items():
            assert tt / ft < 100, f"{coll}@{msg}: two-level {tt / ft}x"
