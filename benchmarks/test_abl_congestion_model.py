"""Ablation — the congestion terms of the network model (DESIGN.md).

The cost model adds two congestion mechanisms on top of plain
Hockney/LogGP: a destination-spread penalty and a flow-count penalty.
Without them, the one-shot Scatter-Destination blast would dominate
Pairwise at every large Alltoall size — contradicting both MPICH's
decision tables and the paper's measurements.  This ablation evaluates
algorithm rankings with the penalties zeroed out.

Shape checks: with the full model, pairwise wins large messages at
16x56; with congestion off, scatter_dest (wrongly) wins; small-message
rankings are unaffected by the ablation.
"""

import dataclasses

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import algorithms

LARGE = 1 << 20
SMALL = 16


def _winner(machine, msg):
    times = {n: a.estimate(machine, msg)
             for n, a in algorithms("alltoall").items()}
    return min(times, key=times.__getitem__), times


def run_ablation():
    machine = Machine(get_cluster("Frontera"), 16, 56)
    full_large = _winner(machine, LARGE)
    full_small = _winner(machine, SMALL)

    # Zero out both congestion mechanisms.
    machine.params = dataclasses.replace(machine.params,
                                         spread_gamma=0.0,
                                         flow_gamma=0.0)
    abl_large = _winner(machine, LARGE)
    abl_small = _winner(machine, SMALL)
    return full_large, full_small, abl_large, abl_small


def test_ablation_congestion_model(benchmark, report):
    (full_large, full_small, abl_large,
     abl_small) = benchmark.pedantic(run_ablation, rounds=1,
                                     iterations=1)

    def fmt(tag, res):
        winner, times = res
        body = " ".join(f"{n[:6]}={t * 1e3:9.2f}ms"
                        for n, t in times.items())
        return f"{tag:<28} {body} -> {winner}"

    lines = [fmt("full model, 1 MiB", full_large),
             fmt("no congestion, 1 MiB", abl_large),
             fmt("full model, 16 B", full_small),
             fmt("no congestion, 16 B", abl_small),
             "claim: congestion terms are what separate pairwise from "
             "the scatter blast at large sizes"]
    report("Ablation — congestion model terms (alltoall 16x56)", lines)

    assert full_large[0] in ("pairwise", "recursive_doubling"), \
        f"full model large-message winner: {full_large[0]}"
    assert abl_large[0] == "scatter_dest", \
        f"ablated model should (wrongly) favour the blast: {abl_large[0]}"
    # Small messages are latency/gap-bound — ablation must not change
    # the winner.
    assert full_small[0] == abl_small[0]
