"""Fig. 5 — Gini feature importances, MPI_Allgather.

Paper: MPI-specific features (message size above all) dominate; among
hardware features, L3 cache size is the leading one for Allgather.

Shape checks: msg_size is the single most important feature; the three
MPI-specific features carry most of the mass; L3 ranks in the top half
of the hardware features.
"""

from repro.core.features import (
    ALL_FEATURE_NAMES,
    MPI_FEATURE_NAMES,
)
from repro.core.training import feature_importance_report

from repro.hwmodel.extract import HARDWARE_FEATURE_NAMES


def test_fig05_importance_allgather(benchmark, dataset, report):
    rep = benchmark.pedantic(
        lambda: feature_importance_report(dataset, "allgather"),
        rounds=1, iterations=1)

    lines = [f"{'feature':<24} {'importance':>10}"]
    for name, value in rep:
        tag = " (MPI)" if name in MPI_FEATURE_NAMES else " (HW)"
        lines.append(f"{name:<24} {value:>10.4f}{tag}")
    lines.append("paper: msg size dominant; L3 cache is the top hardware "
                 "feature for Allgather")
    report("Fig. 5 — feature importances (Allgather)", lines)

    ordered = [name for name, _ in rep]
    scores = dict(rep)
    assert ordered[0] == "msg_size"
    mpi_mass = sum(scores[f] for f in MPI_FEATURE_NAMES)
    assert mpi_mass > 0.5
    hw_ranked = [f for f in ordered if f in HARDWARE_FEATURE_NAMES]
    assert hw_ranked.index("l3_cache_mib") < len(hw_ranked) / 2
    assert len(ordered) == len(ALL_FEATURE_NAMES)
