"""Calibration — analytic round model vs discrete-event execution.

Not a paper figure: this benchmark pins down the substitution at the
heart of the reproduction (DESIGN.md).  Dataset generation prices
schedules with the bulk-synchronous analytic model; the discrete-event
engine executes every message.  For the reproduction to be meaningful
the two must agree on *rankings*, and their absolute ratio must sit in
a narrow, known envelope.

Shape checks: median DES/analytic ratio in [0.5, 1.2] (the DES
pipelines across rounds, so it runs a bit faster — most extreme for
single-node ring-style schedules, hence the wide lower envelope), every
case within [0.15, 2.0], mean per-config rank correlation > 0.7, and
both paths name the same fastest algorithm in > 70% of configurations.
"""

from repro.validation import validate


def test_validation_cost_model(benchmark, report):
    result = benchmark.pedantic(validate, rounds=1, iterations=1)

    report("Calibration — analytic model vs discrete-event engine",
           result.summary_lines())

    lo, hi = result.ratio_range
    assert 0.5 <= result.median_ratio <= 1.2
    assert lo >= 0.15 and hi <= 2.0
    assert result.mean_rank_correlation > 0.7
    assert result.decision_agreement_rate > 0.7
    assert len(result.cases) > 250
