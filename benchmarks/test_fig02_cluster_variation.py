"""Fig. 2 — MPI_Alltoall algorithm runtimes differ across clusters.

Paper: at 2 nodes x 16 PPN, the per-algorithm runtime curves (and
especially the identity of the best algorithm per message size) change
between TACC Frontera (Intel + EDR) and MRI (AMD + HDR): Bruck leads a
small-message band on one system but degrades on the other;
Scatter-Destination wins a mid-size band on MRI.

Shape checks: the best-algorithm-per-size sequence is not identical on
the two clusters, and each cluster has more than one distinct winner
across the sweep.
"""

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import algorithms

MSG_SIZES = tuple(2**k for k in range(0, 21, 2))
NODES, PPN = 2, 16


def run_fig2():
    out = {}
    for cname in ("Frontera", "MRI"):
        machine = Machine(get_cluster(cname), NODES, PPN)
        rows = {}
        for msg in MSG_SIZES:
            times = {name: algo.estimate(machine, msg)
                     for name, algo in algorithms("alltoall").items()}
            rows[msg] = times
        out[cname] = rows
    return out


def test_fig02_cluster_variation(benchmark, report):
    data = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    lines = []
    winners = {}
    for cname, rows in data.items():
        lines.append(f"-- {cname} (2 nodes x 16 PPN, alltoall) --")
        seq = []
        for msg, times in rows.items():
            best = min(times, key=times.__getitem__)
            seq.append(best)
            pretty = " ".join(f"{n[:6]}={t * 1e6:9.1f}us"
                              for n, t in times.items())
            lines.append(f"  m={msg:>8} {pretty} best={best}")
        winners[cname] = seq
    lines.append("paper: winner identity shifts between clusters "
                 "(e.g. Bruck vs Scatter_Dest in the 32-1024 B band)")
    report("Fig. 2 — per-cluster algorithm variation", lines)

    for seq in winners.values():
        assert len(set(seq)) >= 2, "one algorithm dominated everywhere"
    assert winners["Frontera"] != winners["MRI"], \
        "hardware had no effect on algorithm ranking"
