"""Table II — test accuracy of RF vs GradientBoost vs KNN vs SVM after
hyperparameter tuning.

Paper:  MPI_Allgather  RF 88.8  GB 80.5  KNN 64.1  SVM 67.3
        MPI_Alltoall   RF 89.9  GB 78.4  KNN 61.9  SVM 60.4

Shape checks: RF is the best family for both collectives; the tree
ensembles (RF, GB) beat the distance/margin models (KNN, SVM); RF is
within 10 points of the paper's number.
"""

from repro.core.training import compare_models

PAPER = {
    "allgather": {"rf": 0.888, "gradientboost": 0.805, "knn": 0.641,
                  "svm": 0.673},
    "alltoall": {"rf": 0.899, "gradientboost": 0.784, "knn": 0.619,
                 "svm": 0.604},
}


def test_table2_model_comparison(benchmark, random_split_sets, report):
    train, test = random_split_sets

    def run():
        out = {}
        for coll in ("allgather", "alltoall"):
            out[coll] = compare_models(
                train, test.filter(collective=coll), coll, tune=True)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'collective':<12} {'family':<14} {'paper':>7} "
             f"{'measured':>9}"]
    for coll, fams in results.items():
        for fam, acc in fams.items():
            lines.append(f"{coll:<12} {fam:<14} "
                         f"{PAPER[coll][fam] * 100:>6.1f}% "
                         f"{acc * 100:>8.1f}%")
    report("Table II — model comparison (tuned, random split)", lines)

    for coll, fams in results.items():
        # RF leads (the tuned GB can come within statistical noise of
        # it on our simulated dataset; the paper's gap is wider).
        assert fams["rf"] >= max(fams.values()) - 0.02, \
            f"RF not competitive for {coll}: {fams}"
        assert min(fams["rf"], fams["gradientboost"]) > \
            max(fams["knn"], fams["svm"]) - 0.05, \
            f"tree ensembles did not lead for {coll}: {fams}"
        assert abs(fams["rf"] - PAPER[coll]["rf"]) < 0.10
