"""Shared helpers for the selector-comparison figure benchmarks."""

from repro.apps import compare_selectors, speedup_summary
from repro.hwmodel import get_cluster
from repro.smpi import AlgorithmSelector


def run_panels(cluster: str, baseline_name: str,
               baseline: AlgorithmSelector, pml: AlgorithmSelector,
               panels: list[tuple[str, int, int]]):
    """Run the PML-vs-baseline sweep for each (collective, nodes, ppn)
    panel; returns {panel_key: (results, summary)}."""
    spec = get_cluster(cluster)
    out = {}
    for coll, nodes, ppn in panels:
        res = compare_selectors(spec, coll, nodes, ppn,
                                {"pml": pml, baseline_name: baseline})
        summary = speedup_summary(res[baseline_name], res["pml"])
        out[f"{coll} {nodes}x{ppn}"] = (res, summary)
    return out


def panel_lines(key: str, res: dict, baseline_name: str,
                summary: dict) -> list[str]:
    lines = [f"-- {key} --"]
    base = res[baseline_name]
    pml = res["pml"]
    for pb, pp in zip(base.points, pml.points):
        ratio = pb.avg_time_s / pp.avg_time_s
        marker = ""
        if pb.algorithm != pp.algorithm:
            marker = f"  [{baseline_name}={pb.algorithm} " \
                     f"pml={pp.algorithm}]"
        lines.append(f"  m={pb.msg_size:>8} speedup={ratio:6.3f}x{marker}")
    lines.append(f"  total-time speedup: "
                 f"{summary['total_time_speedup']:.3f}x "
                 f"(max per-size {summary['max_speedup']:.2f}x)")
    return lines
