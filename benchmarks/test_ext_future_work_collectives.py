"""Extension — the paper's future work (Section IX): applying the
framework to more collectives.

Collects a full 18-cluster dataset for MPI_Allreduce and MPI_Bcast,
trains the same RF pipeline with Frontera/MRI held out, and compares
against the MVAPICH-style defaults, random selection, and the oracle on
the held-out systems.

Shape checks mirror the paper's main results: PML matches or beats the
defaults in total, clearly beats random, and stays within 10% of the
oracle.
"""

from repro.apps import run_sweep
from repro.core import collect_dataset
from repro.core.framework import offline_train
from repro.hwmodel import get_cluster
from repro.smpi import (
    MvapichDefaultSelector,
    OracleSelector,
    RandomSelector,
)

EXT = ("allreduce", "bcast")
PANELS = [("Frontera", 16, 56), ("MRI", 8, 64)]


def test_future_work_collectives(benchmark, report):
    def run():
        dataset = collect_dataset(collectives=EXT)
        train = dataset.filter(
            clusters=set(dataset.clusters()) - {"Frontera", "MRI"})
        pml = offline_train(train, collectives=EXT)
        selectors = {"pml": pml,
                     "default": MvapichDefaultSelector(),
                     "random": RandomSelector(0),
                     "oracle": OracleSelector()}
        out = {}
        for cluster, nodes, ppn in PANELS:
            spec = get_cluster(cluster)
            for coll in EXT:
                totals = {
                    name: run_sweep(spec, coll, nodes, ppn,
                                    sel).total_time()
                    for name, sel in selectors.items()
                }
                out[(cluster, coll)] = totals
        return dataset, out

    dataset, results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"dataset: {len(dataset)} records, labels "
             f"{dataset.label_distribution()}",
             f"{'panel':<22} {'vs default':>11} {'vs random':>10} "
             f"{'vs oracle':>10}"]
    for (cluster, coll), totals in results.items():
        vs_def = totals["default"] / totals["pml"]
        vs_rnd = totals["random"] / totals["pml"]
        vs_orc = totals["oracle"] / totals["pml"]
        lines.append(f"{cluster + '/' + coll:<22} {vs_def:>10.3f}x "
                     f"{vs_rnd:>9.2f}x {vs_orc:>9.3f}x")
    lines.append("(paper Section IX: extend the framework to further "
                 "collectives — no reference numbers)")
    report("Extension — Allreduce/Bcast under the PML pipeline", lines)

    assert len(dataset) > 15_000
    for (cluster, coll), totals in results.items():
        vs_def = totals["default"] / totals["pml"]
        vs_rnd = totals["random"] / totals["pml"]
        vs_orc = totals["oracle"] / totals["pml"]
        assert vs_def >= 0.97, f"{cluster}/{coll}: lost to default"
        assert vs_rnd >= 1.05, f"{cluster}/{coll}: no win over random"
        assert vs_orc >= 0.90, f"{cluster}/{coll}: >10% from oracle"
