"""Fig. 10 — PML vs MVAPICH2-2.3.7 defaults on MRI (cluster-based
protocol: MRI excluded from training).

Paper: the static MVAPICH table is unoptimized for MRI's AMD+HDR
hardware; PML finds better algorithms with up to 150.1%/154.5% speedups
at selected sizes.

Shape checks: PML's total time beats or matches the default on every
panel, with at least one panel >= 1.5x total-time speedup and a
per-size win >= 2x somewhere.
"""

from repro.smpi import MvapichDefaultSelector

from sweep_utils import panel_lines, run_panels

PANELS = [("allgather", 8, 128), ("alltoall", 8, 128),
          ("allgather", 8, 64), ("alltoall", 8, 64)]


def test_fig10_mri(benchmark, heldout_selector, report):
    results = benchmark.pedantic(
        lambda: run_panels("MRI", "mvapich", MvapichDefaultSelector(),
                           heldout_selector, PANELS),
        rounds=1, iterations=1)

    lines = []
    for key, (res, summary) in results.items():
        lines.extend(panel_lines(key, res, "mvapich", summary))
    lines.append("paper: up to 150-155% speedups — static tables are "
                 "unoptimized for MRI")
    report("Fig. 10 — PML vs MVAPICH default (MRI)", lines)

    totals = []
    max_per_size = 0.0
    for key, (res, summary) in results.items():
        assert summary["total_time_speedup"] >= 0.95, \
            f"{key}: PML total worse than default"
        totals.append(summary["total_time_speedup"])
        max_per_size = max(max_per_size, summary["max_speedup"])
    assert max(totals) >= 1.5, f"no big panel win on MRI ({totals})"
    assert max_per_size >= 2.0, \
        f"no >=2x per-size win on MRI ({max_per_size})"
