"""Fig. 9 — PML vs MVAPICH2-2.3.7 defaults on TACC Frontera
(cluster-based protocol: Frontera excluded from training).

Paper: PML picks faster algorithms at several sizes — 36.6%/36.3%
speedups for Alltoall at 4096/8192 B, 60.0%/44.3% for Allgather at
4/2048 B; elsewhere the two frameworks often coincide.

Shape checks: over each panel PML's total time is no worse than ~2%
above the default's, and at least one panel shows a >= 20% per-size
win.
"""

from repro.smpi import MvapichDefaultSelector

from sweep_utils import panel_lines, run_panels

PANELS = [("allgather", 16, 56), ("alltoall", 16, 56),
          ("allgather", 16, 28), ("alltoall", 16, 28)]


def test_fig09_frontera(benchmark, heldout_selector, report):
    results = benchmark.pedantic(
        lambda: run_panels("Frontera", "mvapich",
                           MvapichDefaultSelector(), heldout_selector,
                           PANELS),
        rounds=1, iterations=1)

    lines = []
    for key, (res, summary) in results.items():
        lines.extend(panel_lines(key, res, "mvapich", summary))
    lines.append("paper: 36-60% wins at selected sizes; parity when both "
                 "choose the same algorithm")
    report("Fig. 9 — PML vs MVAPICH default (Frontera)", lines)

    best_win = 0.0
    for key, (res, summary) in results.items():
        assert summary["total_time_speedup"] >= 0.98, \
            f"{key}: PML total worse than default"
        best_win = max(best_win, summary["max_speedup"])
    assert best_win >= 1.2, f"no >=20% per-size win anywhere ({best_win})"
