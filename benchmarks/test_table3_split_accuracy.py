"""Table III — RF accuracy under the three split methodologies.

Paper:  MPI_Allgather  random 88.8  cluster 84.4  node 79.8
        MPI_Alltoall   random 89.9  cluster 82.7  node 86.7

Shape checks: all six accuracies in the 70-95% range; random split is
the easiest (>= the others minus small slack); every split stays within
12 points of the paper.
"""

from repro.core.splits import split_dataset
from repro.core.training import train_model

PAPER = {
    "allgather": {"random": 0.888, "cluster": 0.844, "node": 0.798},
    "alltoall": {"random": 0.899, "cluster": 0.827, "node": 0.867},
}


def test_table3_split_accuracy(benchmark, dataset, report):
    def run():
        out = {"allgather": {}, "alltoall": {}}
        for method, kwargs in (("random", {"seed": 0}), ("cluster", {}),
                               ("node", {"max_train_nodes": 8})):
            train, test = split_dataset(dataset, method, **kwargs)
            for coll in out:
                model = train_model(train, coll, family="rf")
                out[coll][method] = model.accuracy(
                    test.filter(collective=coll))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'collective':<12} {'split':<9} {'paper':>7} "
             f"{'measured':>9}"]
    for coll, methods in results.items():
        for method, acc in methods.items():
            lines.append(f"{coll:<12} {method:<9} "
                         f"{PAPER[coll][method] * 100:>6.1f}% "
                         f"{acc * 100:>8.1f}%")
    report("Table III — split-methodology accuracy (RF)", lines)

    for coll, methods in results.items():
        for method, acc in methods.items():
            assert 0.70 <= acc <= 0.97, f"{coll}/{method}: {acc}"
            assert abs(acc - PAPER[coll][method]) < 0.12, \
                f"{coll}/{method}: {acc} vs paper {PAPER[coll][method]}"
        assert methods["random"] >= methods["cluster"] - 0.03
