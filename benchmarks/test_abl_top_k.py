"""Ablation — sensitivity to the top-k feature cutoff (DESIGN.md).

The paper keeps the top 5 of 14 features "to avoid overfitting".
This sweep retrains the RF at k = 3, 5, 8, 14 under the cluster-based
split.  Shape check: k = 5 is within 3 accuracy points of the best k —
i.e. the paper's choice sits on the plateau, and no k collapses.
"""

from repro.core.splits import split_dataset
from repro.core.training import train_model

KS = (3, 5, 8, 14)


def test_ablation_top_k(benchmark, dataset, report):
    def run():
        train, test = split_dataset(dataset, "cluster")
        out = {}
        for coll in ("allgather", "alltoall"):
            sub = test.filter(collective=coll)
            out[coll] = {
                k: train_model(train, coll, family="rf",
                               top_k=k).accuracy(sub)
                for k in KS
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'collective':<12}" + "".join(f"{f'k={k}':>9}"
                                             for k in KS)]
    for coll, per_k in results.items():
        lines.append(f"{coll:<12}" + "".join(
            f"{per_k[k] * 100:>8.1f}%" for k in KS))
    lines.append("paper: k=5 chosen to avoid overfitting")
    report("Ablation — top-k feature cutoff (cluster split)", lines)

    for coll, per_k in results.items():
        best = max(per_k.values())
        assert per_k[5] >= best - 0.03, \
            f"{coll}: k=5 off the plateau ({per_k})"
        assert min(per_k.values()) > 0.6, f"{coll}: a k collapsed"
