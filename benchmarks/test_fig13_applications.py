"""Fig. 13 — application results: Gromacs (BenchMEM) and MiniFE on
Frontera, PML vs MVAPICH default vs random selection.

Paper: strong scaling flattens around ~224 processes; PML yields 2.90%
(Gromacs) / 4.43% (MiniFE) over the default and 19.39% / 20.66% over
random selection.

Shape checks: PML >= default >= (never worse than) for total runtime
within noise; PML's win over random is several times its win over the
default; single-digit-percent wins over the default.
"""

from repro.apps import GromacsProxy, MiniFEProxy, strong_scaling
from repro.hwmodel import get_cluster
from repro.smpi import MvapichDefaultSelector, RandomSelector

COUNTS = [(1, 56), (2, 56), (4, 56), (8, 56), (16, 56)]
STEPS = 50


def test_fig13_applications(benchmark, heldout_selector, report):
    spec = get_cluster("Frontera")

    def run():
        out = {}
        for app in (GromacsProxy(), MiniFEProxy()):
            per_sel = {}
            for name, sel in (("pml", heldout_selector),
                              ("default", MvapichDefaultSelector()),
                              ("random", RandomSelector(0))):
                per_sel[name] = strong_scaling(app, spec, COUNTS, sel,
                                               steps=STEPS)
            out[app.name] = per_sel
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"gromacs": (1.0290, 1.1939), "minife": (1.0443, 1.2066)}
    lines = []
    checks = []
    for app_name, per_sel in results.items():
        lines.append(f"-- {app_name} (total runtime, {STEPS} steps) --")
        lines.append(f"{'#procs':>7} {'pml(s)':>10} {'default(s)':>11} "
                     f"{'random(s)':>10}")
        for i, (nodes, ppn) in enumerate(COUNTS):
            lines.append(
                f"{nodes * ppn:>7} {per_sel['pml'][i].total_s:>10.4f} "
                f"{per_sel['default'][i].total_s:>11.4f} "
                f"{per_sel['random'][i].total_s:>10.4f}")
        tot = {n: sum(r.total_s for r in rs)
               for n, rs in per_sel.items()}
        sp_def = tot["default"] / tot["pml"]
        sp_rnd = tot["random"] / tot["pml"]
        lines.append(f"  speedup vs default={sp_def:.4f}x "
                     f"(paper {paper[app_name][0]:.4f}x), "
                     f"vs random={sp_rnd:.4f}x "
                     f"(paper {paper[app_name][1]:.4f}x)")
        checks.append((app_name, per_sel, sp_def, sp_rnd))
    report("Fig. 13 — application results (Frontera)", lines)

    for app_name, per_sel, sp_def, sp_rnd in checks:
        assert sp_def >= 0.999, f"{app_name}: PML slower than default"
        assert 1.0 <= sp_rnd, f"{app_name}: PML slower than random"
        assert sp_rnd > sp_def, \
            f"{app_name}: random should be the weaker baseline"
        assert sp_def < 1.5, \
            f"{app_name}: app-level win implausibly large ({sp_def})"
        # Strong scaling: runtime at 112 procs below 56-proc runtime.
        pml = per_sel["pml"]
        assert pml[1].total_s < pml[0].total_s
