"""Shared fixtures for the table/figure reproduction benchmarks.

Heavy artifacts (the 18-cluster dataset, trained selectors) are built
once per session; the dataset is additionally cached on disk by
``collect_dataset``, so only the first-ever benchmark run pays the
collection cost.
"""

from pathlib import Path

import pytest

from repro.core import collect_dataset, offline_train, split_dataset

REPORT_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def dataset():
    """The full Table I dataset (~20k records, disk-cached)."""
    return collect_dataset()


@pytest.fixture(scope="session")
def heldout_selector(dataset):
    """PML selector trained with Frontera and MRI excluded — the
    cluster-based evaluation protocol of Figs. 8-11."""
    train = dataset.filter(
        clusters=set(dataset.clusters()) - {"Frontera", "MRI"})
    return offline_train(train)


@pytest.fixture(scope="session")
def frontera_node_selector(dataset):
    """Selector trained on Frontera data with nodes <= 8 (plus every
    other cluster) — the node-based protocol of Fig. 12 on Frontera."""
    sub = dataset.filter(max_nodes=8)
    return offline_train(sub)


@pytest.fixture(scope="session")
def mri_node_selector(dataset):
    """Fig. 12 on MRI: trained with nodes <= 4."""
    sub = dataset.filter(max_nodes=4)
    return offline_train(sub)


@pytest.fixture(scope="session")
def random_split_sets(dataset):
    return split_dataset(dataset, "random", seed=0)


@pytest.fixture
def report(request, capsys):
    """Print a reproduction table to the live terminal and persist it
    under benchmarks/reports/ for EXPERIMENTS.md."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _report(title: str, lines: list[str]) -> None:
        text = "\n".join([f"=== {title} ===", *lines, ""])
        with capsys.disabled():
            print("\n" + text)
        name = request.node.name.replace("/", "_")
        (REPORT_DIR / f"{name}.txt").write_text(text)

    return _report
