"""Fig. 7 — startup core-hours including the proposed framework.

Paper: PML-MPI's curve is flat (one inference on one process) while
offline micro-benchmarking and ACCLAiM grow; the gap is ~1e6x vs
micro-benchmarking at 32 nodes and ~1e4x vs ACCLAiM at 128 nodes.

Shape checks: PML core-hours constant across node counts; speedup vs
micro-benchmarking @32 nodes >= 1e4; vs ACCLAiM @128 nodes >= 1e3.
(Our inference runs on a laptop-class Python stack, so we assert one
order of magnitude of slack against the paper's C-side numbers.)
"""

from repro.core.inference import inference_latency
from repro.core.overhead import overhead_curves
from repro.hwmodel import get_cluster

NODE_COUNTS = (2, 8, 32, 128, 512, 2048, 8192)
PPN = 56


def test_fig07_overhead(benchmark, heldout_selector, report):
    spec = get_cluster("Frontera")

    def run():
        t_infer = inference_latency(heldout_selector, spec, repeats=3)
        return t_infer, overhead_curves(spec, "allgather", PPN,
                                        NODE_COUNTS, t_infer)

    t_infer, curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"inference wall time: {t_infer * 1e3:.1f} ms",
             f"{'nodes':>6} {'microbench':>12} {'ACCLAiM':>12} "
             f"{'PML':>12}  (core-hours)"]
    for m, a, p in zip(*curves.values()):
        lines.append(f"{m.nodes:>6} {m.core_hours:>12.3e} "
                     f"{a.core_hours:>12.3e} {p.core_hours:>12.3e}")
    micro32 = next(pt for pt in curves["microbenchmark"]
                   if pt.nodes == 32)
    acc128 = next(pt for pt in curves["acclaim"] if pt.nodes == 128)
    pml = curves["pml"][0].core_hours
    lines.append(f"speedup vs microbench@32 = {micro32.core_hours / pml:.2e} "
                 "(paper ~1e6)")
    lines.append(f"speedup vs ACCLAiM@128  = {acc128.core_hours / pml:.2e} "
                 "(paper ~1e4)")
    report("Fig. 7 — overhead comparison incl. proposed", lines)

    pml_vals = [pt.core_hours for pt in curves["pml"]]
    assert max(pml_vals) == min(pml_vals), "PML overhead must be constant"
    assert micro32.core_hours / pml >= 1e4
    assert acc128.core_hours / pml >= 1e3
