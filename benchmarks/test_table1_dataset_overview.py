"""Table I — dataset overview: 18 clusters, >9000 records per collective.

Paper: per-cluster sample counts (e.g. RI2 609, Frontera 756, MRI 491)
from grids of #node-settings x #PPN-settings x #message-sizes, with
some configurations missing.

Shape checks: 18 clusters present; >9000 records per collective; our
per-cluster counts within a factor of 2 of the paper's (the exact holes
in the paper's grid are not recoverable).
"""

PAPER_SAMPLES = {
    "RI2": 609, "RI": 42, "Haswell": 336, "Catalyst": 483, "Spock": 756,
    "Rome": 777, "Frontera": 756, "LLNL": 588, "Frontera RTX": 504,
    "Hartree": 294, "Mayer": 567, "Ray": 168, "Sierra": 819,
    "Bridges": 567, "Bebop": 525, "TACC KNL": 567, "TACC Skylake": 756,
    "MRI": 491,
}


def test_table1_dataset_overview(benchmark, dataset, report):
    def summarize():
        per_cluster = {}
        for coll in ("allgather", "alltoall"):
            sub = dataset.filter(collective=coll)
            for name, count in sub.counts_by_cluster().items():
                per_cluster.setdefault(name, {})[coll] = count
        return per_cluster

    per_cluster = benchmark.pedantic(summarize, rounds=1, iterations=1)

    lines = [f"{'cluster':<14} {'paper':>6} {'allgather':>10} "
             f"{'alltoall':>9}"]
    for name, paper in PAPER_SAMPLES.items():
        ag = per_cluster[name]["allgather"]
        a2a = per_cluster[name]["alltoall"]
        lines.append(f"{name:<14} {paper:>6} {ag:>10} {a2a:>9}")
    total_ag = sum(v["allgather"] for v in per_cluster.values())
    total_a2a = sum(v["alltoall"] for v in per_cluster.values())
    lines.append(f"totals: allgather={total_ag}, alltoall={total_a2a} "
                 f"(paper: >9000 records for both)")
    report("Table I — dataset overview", lines)

    assert len(per_cluster) == 18
    assert total_ag > 9000 and total_a2a > 9000
    for name, paper in PAPER_SAMPLES.items():
        ours = per_cluster[name]["allgather"]
        assert paper / 2 <= ours <= paper * 2, \
            f"{name}: {ours} vs paper {paper}"
