"""Fig. 11 — PML vs Open MPI 5.1.0a decision rules, Frontera PPN 56.

Paper: PML wins mainly at larger sizes (beyond 4 KiB): 49.1%/57.7% for
Alltoall and 54.0%/36.2% for Allgather; tiny messages can show a slight
slowdown attributed to network conditions.

Shape checks: for each collective, PML achieves >= 25% speedup at some
size >= 4096 B, and its total time is no worse than 2% above Open
MPI's.
"""

from repro.smpi import OpenMpiDefaultSelector

from sweep_utils import panel_lines, run_panels

PANELS = [("allgather", 16, 56), ("alltoall", 16, 56)]


def test_fig11_vs_openmpi(benchmark, heldout_selector, report):
    results = benchmark.pedantic(
        lambda: run_panels("Frontera", "ompi", OpenMpiDefaultSelector(),
                           heldout_selector, PANELS),
        rounds=1, iterations=1)

    lines = []
    for key, (res, summary) in results.items():
        lines.extend(panel_lines(key, res, "ompi", summary))
    lines.append("paper: 36-58% wins beyond 4 KiB; slight small-message "
                 "slowdowns attributed to network conditions")
    report("Fig. 11 — PML vs Open MPI 5.1.0a (Frontera, PPN 56)", lines)

    for key, (res, summary) in results.items():
        assert summary["total_time_speedup"] >= 0.98, \
            f"{key}: PML total worse than Open MPI"
        large = [pb.avg_time_s / pp.avg_time_s
                 for pb, pp in zip(res["ompi"].points,
                                   res["pml"].points)
                 if pb.msg_size >= 4096]
        assert max(large) >= 1.25, \
            f"{key}: no >=25% win at large sizes ({max(large):.2f})"
