"""Fig. 8 — proposed framework vs random algorithm selection,
TACC Frontera, 16 nodes x 56 PPN.

Paper: random selection causes large slowdowns — 15.48x and 9.39x at
large Allgather sizes, 8.32x and 3.73x at large Alltoall sizes.

Shape checks: PML never loses to random by more than the noise floor at
any size; at the largest sizes random is >= 2x slower; somewhere in the
sweep random is >= 5x slower.
"""

from repro.apps import compare_selectors, speedup_summary
from repro.hwmodel import get_cluster
from repro.smpi import RandomSelector

NODES, PPN = 16, 56


def test_fig08_vs_random(benchmark, heldout_selector, report):
    spec = get_cluster("Frontera")

    def run():
        out = {}
        for coll in ("allgather", "alltoall"):
            out[coll] = compare_selectors(
                spec, coll, NODES, PPN,
                {"pml": heldout_selector, "random": RandomSelector(0)})
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for coll, res in results.items():
        lines.append(f"-- {coll} (normalized runtime of random vs pml) --")
        for p_pml, p_rnd in zip(res["pml"].points, res["random"].points):
            ratio = p_rnd.avg_time_s / p_pml.avg_time_s
            lines.append(f"  m={p_pml.msg_size:>8} random/pml={ratio:7.2f}x"
                         f"  (pml={p_pml.algorithm}, "
                         f"random={p_rnd.algorithm})")
        summary = speedup_summary(res["random"], res["pml"])
        lines.append(f"  mean={summary['mean_speedup']:.2f}x "
                     f"max={summary['max_speedup']:.2f}x")
    lines.append("paper: up to 15.48x (allgather) and 8.32x (alltoall) "
                 "at large sizes")
    report("Fig. 8 — PML vs random selection (Frontera 16x56)", lines)

    for coll, res in results.items():
        ratios = res["random"].times() / res["pml"].times()
        # A single-size loss can happen when the model mispredicts and
        # random gets lucky (classification accuracy is ~85%, not 100%).
        assert ratios.min() > 0.6, f"{coll}: PML badly lost to random"
        assert ratios.mean() >= 2.0, \
            f"{coll}: random not clearly slower on average"
        # Somewhere in the large-size band random must pick one of the
        # log-step algorithms and blow up (paper: 15.5x/8.3x points).
        sizes = res["pml"].msg_sizes()
        large = ratios[sizes >= 16384]
        assert large.max() >= 2.0, \
            f"{coll}: random never >=2x slower at large sizes ({large})"
        assert ratios.max() >= 5.0, \
            f"{coll}: expected a >=5x blowup somewhere ({ratios.max()})"
