"""Section VII-C aggregates — average speedups and the oracle bound.

Paper: on MRI, average speedup over the default is 6.3% (Allgather) and
2.5% (Alltoall); vs random selection 2.96x and 2.76x.  Against
exhaustive offline micro-benchmarking (the oracle), the ML approach is
at most ~6% slower (0.6-5.8% across systems/collectives).

Shape checks: averaged over every evaluated configuration, PML beats
the default and random baselines, and its slowdown vs the oracle stays
under 8%.
"""

from repro.apps import run_sweep
from repro.hwmodel import get_cluster
from repro.smpi import (
    MvapichDefaultSelector,
    OracleSelector,
    RandomSelector,
)

#: Every evaluation configuration of Section VII-C.
CONFIGS = {
    "Frontera": [(n, ppn) for n in (1, 2, 4, 8, 16) for ppn in (28, 56)],
    "MRI": [(n, ppn) for n in (1, 2, 4, 8) for ppn in (64, 128)],
}


def test_summary_speedups(benchmark, heldout_selector, report):
    def run():
        out = {}
        selectors = {
            "pml": heldout_selector,
            "default": MvapichDefaultSelector(),
            "random": RandomSelector(0),
            "oracle": OracleSelector(),
        }
        for cluster, configs in CONFIGS.items():
            spec = get_cluster(cluster)
            for coll in ("allgather", "alltoall"):
                totals = {name: 0.0 for name in selectors}
                for nodes, ppn in configs:
                    if nodes * ppn < 2:
                        continue
                    for name, sel in selectors.items():
                        sweep = run_sweep(spec, coll, nodes, ppn, sel)
                        totals[name] += sweep.total_time()
                out[(cluster, coll)] = totals
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {
        ("MRI", "allgather"): (1.063, 2.96),
        ("MRI", "alltoall"): (1.025, 2.76),
    }
    lines = [f"{'system':<10} {'collective':<10} {'vs default':>11} "
             f"{'vs random':>10} {'vs oracle':>10}"]
    for (cluster, coll), totals in results.items():
        vs_def = totals["default"] / totals["pml"]
        vs_rnd = totals["random"] / totals["pml"]
        vs_orc = totals["oracle"] / totals["pml"]
        note = ""
        if (cluster, coll) in paper:
            pd, pr = paper[(cluster, coll)]
            note = f"  (paper: {pd:.3f}x / {pr:.2f}x)"
        lines.append(f"{cluster:<10} {coll:<10} {vs_def:>10.3f}x "
                     f"{vs_rnd:>9.2f}x {vs_orc:>9.3f}x{note}")
    lines.append("paper bound: ML at most ~6% slower than exhaustive "
                 "micro-benchmarking")
    report("Section VII-C — aggregate speedups", lines)

    for (cluster, coll), totals in results.items():
        vs_def = totals["default"] / totals["pml"]
        vs_rnd = totals["random"] / totals["pml"]
        vs_orc = totals["oracle"] / totals["pml"]
        assert vs_def >= 0.99, f"{cluster}/{coll}: lost to default"
        assert vs_rnd >= 1.10, f"{cluster}/{coll}: no win over random"
        assert vs_orc >= 0.92, \
            f"{cluster}/{coll}: >8% slower than oracle"
        assert vs_orc <= 1.001, \
            f"{cluster}/{coll}: oracle cannot lose ({vs_orc})"
