"""Fig. 12 — node-based generalization: train on small node counts,
evaluate on a larger one, vs MVAPICH defaults.

Paper: Frontera — trained on 1/2/4/8 nodes, evaluated at 16 nodes
(13.2% and 43.5% wins at 2048/4096 B Alltoall); MRI — trained on 1/2/4
nodes, evaluated at 8 (74.1% at 1024 B Allgather; 58.6%/49.6% at
16/32 KiB Alltoall).

Shape checks: on each system the scaled-up evaluation still matches or
beats the default in total, with a >= 15% per-size win somewhere.
"""

from repro.smpi import MvapichDefaultSelector

from sweep_utils import panel_lines, run_panels


def test_fig12_node_based(benchmark, frontera_node_selector,
                          mri_node_selector, report):
    def run():
        out = {}
        out["Frontera(16 nodes, trained<=8)"] = run_panels(
            "Frontera", "mvapich", MvapichDefaultSelector(),
            frontera_node_selector,
            [("allgather", 16, 56), ("alltoall", 16, 56)])
        out["MRI(8 nodes, trained<=4)"] = run_panels(
            "MRI", "mvapich", MvapichDefaultSelector(),
            mri_node_selector,
            [("allgather", 8, 128), ("alltoall", 8, 128)])
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = []
    for system, panels in results.items():
        lines.append(f"### {system}")
        for key, (res, summary) in panels.items():
            lines.extend(panel_lines(key, res, "mvapich", summary))
    lines.append("paper: 13-74% wins at selected sizes after scaling "
                 "past the training node counts")
    report("Fig. 12 — node-based benchmark results", lines)

    for system, panels in results.items():
        best = 0.0
        for key, (res, summary) in panels.items():
            assert summary["total_time_speedup"] >= 0.95, \
                f"{system}/{key}: scaled model worse than default"
            best = max(best, summary["max_speedup"])
        assert best >= 1.15, f"{system}: no >=15% win ({best:.2f})"
