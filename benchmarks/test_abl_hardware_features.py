"""Ablation — do hardware features earn their place? (DESIGN.md)

The paper's central design decision is feeding hardware features to the
model so it transfers to unseen clusters.  This ablation retrains the
RF under three feature sets — the paper's top-5, all 14, and the 3
MPI-specific features only — and evaluates on held-out clusters with
two metrics: classification accuracy and *mean runtime regret*
(selected algorithm's time / oracle time, averaged per configuration).

Accuracy alone under-values hardware features because near-tied
algorithms make label noise; regret is the deployment metric.  Shape
check: for MPI_Alltoall (the hardware-sensitive collective, cf. Fig. 6)
hardware-feature models must beat the MPI-only model on mean regret.
"""

import numpy as np

from repro.core.features import ALL_FEATURE_NAMES, MPI_FEATURE_NAMES
from repro.core.splits import split_dataset
from repro.core.training import train_model

FEATURE_SETS = {
    "top5": None,  # paper's importance-selected top 5
    "all14": ALL_FEATURE_NAMES,
    "mpi_only": MPI_FEATURE_NAMES,
}


def test_ablation_hardware_features(benchmark, dataset, report):
    def run():
        train, test = split_dataset(dataset, "cluster")
        out = {}
        for coll in ("allgather", "alltoall"):
            sub = test.filter(collective=coll)
            X = sub.feature_matrix()
            per_set = {}
            for set_name, names in FEATURE_SETS.items():
                model = train_model(train, coll, family="rf",
                                    feature_names=names)
                preds = model.predict(X)
                regret = float(np.mean(
                    [r.times[p] / r.best_time
                     for r, p in zip(sub.records, preds)]))
                per_set[set_name] = (model.accuracy(sub), regret)
            out[coll] = per_set
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'collective':<12} {'features':<10} {'accuracy':>9} "
             f"{'mean regret':>12}"]
    for coll, per_set in results.items():
        for set_name, (acc, regret) in per_set.items():
            lines.append(f"{coll:<12} {set_name:<10} {acc * 100:>8.1f}% "
                         f"{regret:>12.4f}")
    lines.append("claim: hardware features reduce regret on unseen "
                 "clusters (strongest for alltoall)")
    report("Ablation — hardware features on held-out clusters", lines)

    a2a = results["alltoall"]
    assert a2a["top5"][1] < a2a["mpi_only"][1], \
        "top-5 (with hardware) regret not below MPI-only"
    assert a2a["all14"][1] < a2a["mpi_only"][1], \
        "all-14 regret not below MPI-only"
    for coll, per_set in results.items():
        for set_name, (acc, regret) in per_set.items():
            assert regret < 1.5, f"{coll}/{set_name}: regret {regret}"
