"""Fig. 1 — startup core-hours of offline micro-benchmarking vs ACCLAiM.

Paper: on TACC Frontera (PPN 56, MPI_Allgather), offline
micro-benchmarking's core hours grow steeply with node count, and
ACCLAiM's online training (anchored at 5.62 min @ 128 nodes) also grows
linearly — both are orders of magnitude above anything constant.

Shape checks: both curves grow monotonically; micro-benchmarking
dominates ACCLAiM at large node counts.
"""

from repro.core.overhead import acclaim_core_hours, microbenchmark_core_hours
from repro.hwmodel import get_cluster

NODE_COUNTS = (2, 8, 32, 128, 512, 2048, 8192)
PPN = 56


def run_fig1():
    spec = get_cluster("Frontera")
    micro = [microbenchmark_core_hours(spec, "allgather", n, PPN)
             for n in NODE_COUNTS]
    acclaim = [acclaim_core_hours(n, PPN) for n in NODE_COUNTS]
    return micro, acclaim


def test_fig01_core_hours(benchmark, report):
    micro, acclaim = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    lines = [f"{'nodes':>6} {'microbench(core-h)':>20} "
             f"{'ACCLAiM(core-h)':>16}"]
    for n, m, a in zip(NODE_COUNTS, micro, acclaim):
        lines.append(f"{n:>6} {m:>20.3e} {a:>16.3e}")
    lines.append("paper: both grow with node count; ACCLAiM anchored at "
                 "5.62 min @ 128 nodes (= 671 core-h)")
    report("Fig. 1 — motivation: startup overhead", lines)

    # Shape assertions.
    assert all(b > a for a, b in zip(micro, micro[1:]))
    assert all(b > a for a, b in zip(acclaim, acclaim[1:]))
    # ACCLAiM anchor reproduced exactly.
    assert abs(acclaim_core_hours(128, 56) - 5.62 / 60 * 128 * 56) < 1e-9
    # Micro-benchmarking is the most expensive at scale.
    assert micro[-1] > acclaim[-1]
