"""Ablation — robustness to dynamic network conditions (Section III).

The paper trains on averaged measurements and argues that static
hardware features still improve selection despite dynamic noise.  This
ablation evaluates the cluster-held-out PML model on Frontera under an
idle fabric and under increasing background congestion, against the
per-condition oracle.

Shape checks: PML's regret vs the *congested* oracle grows with
congestion (its training never saw these conditions) but stays bounded
(< 40% mean regret even at 60% background load), and it still beats
random selection under every condition.
"""

import numpy as np

from repro.hwmodel import get_cluster
from repro.simcluster import Machine, NetworkConditions, \
    machine_with_conditions
from repro.smpi import RandomSelector, algorithm_names
from repro.smpi.tuning import measured_time

LOADS = (0.0, 0.3, 0.6)
MSGS = tuple(2**k for k in range(0, 21, 2))


def _sweep_regret(machine, degraded, selector_fn):
    """Mean regret of selector choices priced on the degraded fabric."""
    regrets = []
    for coll in ("allgather", "alltoall"):
        for msg in MSGS:
            times = {n: measured_time(degraded, coll, n, msg)
                     for n in algorithm_names(coll)}
            choice = selector_fn(coll, machine, msg)
            regrets.append(times[choice] / min(times.values()))
    return float(np.mean(regrets))


def test_ablation_network_conditions(benchmark, heldout_selector,
                                     report):
    spec = get_cluster("Frontera")
    machine = Machine(spec, 8, 56)

    def run():
        out = {}
        rnd = RandomSelector(0)
        for load in LOADS:
            degraded = machine_with_conditions(
                machine, NetworkConditions(background_load=load))
            out[load] = {
                "pml": _sweep_regret(machine, degraded,
                                     heldout_selector.select),
                "random": _sweep_regret(machine, degraded, rnd.select),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{'bg load':>8} {'pml regret':>11} {'random regret':>14}"]
    for load, regs in results.items():
        lines.append(f"{load:>8.1f} {regs['pml']:>11.3f} "
                     f"{regs['random']:>14.3f}")
    lines.append("regret = chosen time / best-under-condition time, "
                 "averaged over both collectives x sizes")
    report("Ablation — selection quality under congestion", lines)

    for load, regs in results.items():
        assert regs["pml"] < regs["random"], \
            f"load {load}: PML no better than random"
        assert regs["pml"] < 1.4, \
            f"load {load}: PML regret {regs['pml']:.3f} unbounded"
    assert results[0.6]["pml"] >= results[0.0]["pml"] - 1e-9, \
        "congestion should not make an uninformed model better"
