#!/usr/bin/env python3
"""CI gate for the columnar serving benchmark.

Reads the committed ``BENCH_results.json``, re-runs the benchmark
harness in ``--quick`` mode on this machine, and fails when the
``serve_batch_columnar`` entry regresses against the committed floor:

* ``identical_to_scalar`` must be ``true`` both in the committed file
  and in the fresh quick run — decision identity is machine-independent
  and holds at any batch size, so any ``false`` is a real bug, never
  noise.
* The committed speedup must itself clear ``--min-speedup`` (the
  acceptance floor of the columnar pipeline), so a regressed results
  file cannot be committed quietly.
* The quick run's speedup must clear ``derate * committed_speedup``.
  CI boxes are slower and noisier than the machine that produced the
  committed figure, and quick mode times a smaller batch, so the gate
  derates the floor rather than demanding the committed number; the
  default still fails hard when the columnar path silently degrades to
  scalar-equivalent cost (speedup ~1).

The ``flight_recorder_overhead`` entry is gated the same way: the
committed ``overhead_frac`` must stay under ``--max-overhead`` (the
< 5 % acceptance bar for recording on the hot serving path), and the
quick re-run must stay under a derated multiple of that bar — the
absolute overhead is a tiny per-block cost, so the noisy quick run
gets headroom rather than the committed figure's exact ceiling.

The ``active_collect`` entry is gated *without* any derating: both
the committed figures and the quick re-run must spend at most
``--max-active-ratio`` of the exhaustive sweep's simulated core-hours
while staying within ``--max-accuracy-gap`` of its test accuracy.
Campaigns are fully deterministic (simulated measurements, seeded
acquisition), so these are exact machine-independent facts — any
violation is a real regression in the acquisition loop, never noise.

Exit codes: 0 = gate passed, 1 = regression detected, 2 = missing or
invalid results file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.bench import run_benchmarks, validate_bench_file  # noqa: E402

ENTRY = "serve_batch_columnar"
RECORDER_ENTRY = "flight_recorder_overhead"
ACTIVE_ENTRY = "active_collect"


def _check_active(cfg: dict, source: str, max_ratio: float,
                  max_gap: float) -> list[str]:
    """Gate one ``active_collect`` config; returns failure strings."""
    failures = []
    ratio = cfg.get("core_hours_ratio")
    if not isinstance(ratio, (int, float)) or ratio > max_ratio:
        failures.append(
            f"{source} active_collect core_hours_ratio {ratio!r} "
            f"exceeds the {max_ratio:g} ceiling (active must cost "
            f"<= {max_ratio:.0%} of the exhaustive sweep)")
    gap = cfg.get("accuracy_gap")
    if not isinstance(gap, (int, float)) or gap > max_gap:
        failures.append(
            f"{source} active_collect accuracy_gap {gap!r} exceeds "
            f"the {max_gap:g} ceiling (active must stay within "
            f"{max_gap:.0%} of exhaustive test accuracy)")
    return failures


def _entry_config(results: dict, source: str,
                  entry_name: str = ENTRY) -> dict:
    entry = results.get(entry_name)
    if entry is None:
        print(f"bench-check: FAIL: {source} has no "
              f"{entry_name!r} entry")
        raise SystemExit(2)
    return entry["config"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="BENCH_results.json",
                        help="committed results file (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="floor the committed speedup must clear "
                             "(default: %(default)s)")
    parser.add_argument("--derate", type=float, default=0.33,
                        help="fraction of the committed speedup the "
                             "quick re-run must reach (default: "
                             "%(default)s)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="ceiling for the committed flight-recorder "
                             "overhead fraction (default: %(default)s)")
    parser.add_argument("--overhead-headroom", type=float, default=3.0,
                        help="multiple of --max-overhead the quick "
                             "re-run may reach before failing "
                             "(default: %(default)s)")
    parser.add_argument("--max-active-ratio", type=float, default=0.5,
                        help="ceiling for active-collection core-hours "
                             "as a fraction of the exhaustive sweep "
                             "(default: %(default)s)")
    parser.add_argument("--max-accuracy-gap", type=float, default=0.02,
                        help="ceiling for the active-vs-exhaustive "
                             "test-accuracy gap (default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the bench selector "
                             "fit (default: %(default)s)")
    args = parser.parse_args(argv)

    try:
        committed = validate_bench_file(args.results)
    except (OSError, ValueError) as exc:
        print(f"bench-check: FAIL: cannot load {args.results}: {exc}")
        return 2
    ccfg = _entry_config(committed, args.results)

    failures: list[str] = []
    if ccfg.get("identical_to_scalar") is not True:
        failures.append(
            f"committed identical_to_scalar is "
            f"{ccfg.get('identical_to_scalar')!r}, expected True")
    committed_speedup = ccfg.get("speedup_vs_serve_batch")
    if not isinstance(committed_speedup, (int, float)) \
            or committed_speedup < args.min_speedup:
        failures.append(
            f"committed speedup_vs_serve_batch {committed_speedup!r} "
            f"is below the {args.min_speedup:g}x acceptance floor")
    rcfg = _entry_config(committed, args.results, RECORDER_ENTRY)
    committed_overhead = rcfg.get("overhead_frac")
    if not isinstance(committed_overhead, (int, float)) \
            or committed_overhead >= args.max_overhead:
        failures.append(
            f"committed flight-recorder overhead_frac "
            f"{committed_overhead!r} is not under the "
            f"{args.max_overhead:.0%} ceiling")
    acfg = _entry_config(committed, args.results, ACTIVE_ENTRY)
    failures.extend(_check_active(acfg, "committed",
                                  args.max_active_ratio,
                                  args.max_accuracy_gap))
    if failures:
        for f in failures:
            print(f"bench-check: FAIL: {f}")
        return 1

    print(f"bench-check: committed {ENTRY}: "
          f"{committed_speedup:.2f}x, identical_to_scalar=true")
    print(f"bench-check: committed {RECORDER_ENTRY}: "
          f"{committed_overhead:+.2%}")
    print(f"bench-check: committed {ACTIVE_ENTRY}: "
          f"{acfg['core_hours_ratio']:.2%} of exhaustive core-hours, "
          f"accuracy gap {acfg['accuracy_gap']:+.4f}")
    print("bench-check: running quick benchmark ...")
    fresh = run_benchmarks(quick=True, jobs=args.jobs, progress=True)
    fcfg = _entry_config(fresh, "the quick bench run")
    fresh_speedup = fcfg["speedup_vs_serve_batch"]
    floor = args.derate * committed_speedup
    print(f"bench-check: quick run: {fresh_speedup:.2f}x "
          f"(floor {floor:.2f}x), identical_to_scalar="
          f"{str(fcfg['identical_to_scalar']).lower()}")

    if fcfg["identical_to_scalar"] is not True:
        failures.append("quick run decisions diverge from the scalar "
                        "ladder (identical_to_scalar=false)")
    if fresh_speedup < floor:
        failures.append(
            f"quick run speedup {fresh_speedup:.2f}x fell below "
            f"{floor:.2f}x ({args.derate:g} x committed "
            f"{committed_speedup:.2f}x)")
    fresh_overhead = _entry_config(
        fresh, "the quick bench run", RECORDER_ENTRY)["overhead_frac"]
    ceiling = args.overhead_headroom * args.max_overhead
    print(f"bench-check: quick run recorder overhead "
          f"{fresh_overhead:+.2%} (ceiling {ceiling:.0%})")
    if fresh_overhead >= ceiling:
        failures.append(
            f"quick run flight-recorder overhead {fresh_overhead:.2%} "
            f"reached the {ceiling:.0%} ceiling "
            f"({args.overhead_headroom:g} x {args.max_overhead:.0%})")
    facfg = _entry_config(fresh, "the quick bench run", ACTIVE_ENTRY)
    print(f"bench-check: quick run {ACTIVE_ENTRY}: "
          f"{facfg['core_hours_ratio']:.2%} of exhaustive core-hours, "
          f"accuracy gap {facfg['accuracy_gap']:+.4f}")
    failures.extend(_check_active(facfg, "quick run",
                                  args.max_active_ratio,
                                  args.max_accuracy_gap))
    if failures:
        for f in failures:
            print(f"bench-check: FAIL: {f}")
        return 1
    print("bench-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
