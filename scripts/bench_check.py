#!/usr/bin/env python3
"""CI gate for the columnar serving benchmark.

Reads the committed ``BENCH_results.json``, re-runs the benchmark
harness in ``--quick`` mode on this machine, and fails when the
``serve_batch_columnar`` entry regresses against the committed floor:

* ``identical_to_scalar`` must be ``true`` both in the committed file
  and in the fresh quick run — decision identity is machine-independent
  and holds at any batch size, so any ``false`` is a real bug, never
  noise.
* The committed speedup must itself clear ``--min-speedup`` (the
  acceptance floor of the columnar pipeline), so a regressed results
  file cannot be committed quietly.
* The quick run's speedup must clear ``derate * committed_speedup``.
  CI boxes are slower and noisier than the machine that produced the
  committed figure, and quick mode times a smaller batch, so the gate
  derates the floor rather than demanding the committed number; the
  default still fails hard when the columnar path silently degrades to
  scalar-equivalent cost (speedup ~1).

Exit codes: 0 = gate passed, 1 = regression detected, 2 = missing or
invalid results file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.bench import run_benchmarks, validate_bench_file  # noqa: E402

ENTRY = "serve_batch_columnar"


def _entry_config(results: dict, source: str) -> dict:
    entry = results.get(ENTRY)
    if entry is None:
        print(f"bench-check: FAIL: {source} has no {ENTRY!r} entry")
        raise SystemExit(2)
    return entry["config"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="BENCH_results.json",
                        help="committed results file (default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="floor the committed speedup must clear "
                             "(default: %(default)s)")
    parser.add_argument("--derate", type=float, default=0.33,
                        help="fraction of the committed speedup the "
                             "quick re-run must reach (default: "
                             "%(default)s)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes for the bench selector "
                             "fit (default: %(default)s)")
    args = parser.parse_args(argv)

    try:
        committed = validate_bench_file(args.results)
    except (OSError, ValueError) as exc:
        print(f"bench-check: FAIL: cannot load {args.results}: {exc}")
        return 2
    ccfg = _entry_config(committed, args.results)

    failures: list[str] = []
    if ccfg.get("identical_to_scalar") is not True:
        failures.append(
            f"committed identical_to_scalar is "
            f"{ccfg.get('identical_to_scalar')!r}, expected True")
    committed_speedup = ccfg.get("speedup_vs_serve_batch")
    if not isinstance(committed_speedup, (int, float)) \
            or committed_speedup < args.min_speedup:
        failures.append(
            f"committed speedup_vs_serve_batch {committed_speedup!r} "
            f"is below the {args.min_speedup:g}x acceptance floor")
    if failures:
        for f in failures:
            print(f"bench-check: FAIL: {f}")
        return 1

    print(f"bench-check: committed {ENTRY}: "
          f"{committed_speedup:.2f}x, identical_to_scalar=true")
    print("bench-check: running quick benchmark ...")
    fresh = run_benchmarks(quick=True, jobs=args.jobs, progress=True)
    fcfg = _entry_config(fresh, "the quick bench run")
    fresh_speedup = fcfg["speedup_vs_serve_batch"]
    floor = args.derate * committed_speedup
    print(f"bench-check: quick run: {fresh_speedup:.2f}x "
          f"(floor {floor:.2f}x), identical_to_scalar="
          f"{str(fcfg['identical_to_scalar']).lower()}")

    if fcfg["identical_to_scalar"] is not True:
        failures.append("quick run decisions diverge from the scalar "
                        "ladder (identical_to_scalar=false)")
    if fresh_speedup < floor:
        failures.append(
            f"quick run speedup {fresh_speedup:.2f}x fell below "
            f"{floor:.2f}x ({args.derate:g} x committed "
            f"{committed_speedup:.2f}x)")
    if failures:
        for f in failures:
            print(f"bench-check: FAIL: {f}")
        return 1
    print("bench-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
