#!/usr/bin/env bash
# Tier-2 smoke check: the full offline->online pipeline on two clusters
# WITH fault injection enabled, plus a doctor audit of the artifacts.
#
#   collect (20% transient failures, 5% rank stalls, retried)
#   -> collect --active (uncertainty-driven acquisition: seed ->
#              rank -> benchmark under a core-hour budget; same-seed
#              reruns must replay a byte-identical decision log)
#   -> train  (bundle written atomically, checksummed)
#   -> tune   (compile-time setup on both clusters, faults injected)
#   -> corrupt one table, re-tune (quarantine + regenerate rung)
#   -> doctor (must flag the quarantined file, pass everything else;
#              --bundle cross-check must pass on the healthy pair)
#   -> chaos  (seeded guard-layer soak: 10k adversarial queries, no
#              unguarded exceptions, breaker must cycle)
#   -> select-batch (JSONL queries through the batched service:
#              quantized memoization, invalid queries answered inline)
#   -> serve  (persistent daemon: boot from the bundle, socket
#              queries, hot-reload, counter partition, graceful drain;
#              the full lifecycle soak is scripts/daemon_smoke.sh)
#   -> adapt  (online adaptation on both clusters: drifted-fabric
#              feedback -> drift detected -> challenger promoted ->
#              probation confirmed -> mid-promotion crash rolled back;
#              the adversarial soak is scripts/adapt_smoke.sh)
#   -> telemetry (traced collect/train/tune/select accumulate one
#              trace; `pml-mpi report` renders every stage; a corrupted
#              trace must be rejected)
#
# Run from anywhere: scripts/smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
export PML_MPI_CACHE="$workdir/cache"

pml() { python -m repro.cli "$@"; }

echo "== collect (fault-injected) =="
pml collect --clusters RI Ray --collectives allgather alltoall \
    --fault-rate 0.2 --stall-rate 0.05 --retries 8 --quiet \
    --output "$workdir/dataset.jsonl.gz"

echo "== collect --active (uncertainty-driven, budgeted) =="
pml collect --active --clusters RI --collectives allgather \
    --batch-size 8 --quiet \
    --decision-log "$workdir/decisions_a.jsonl" \
    --output "$workdir/active.jsonl.gz" | tee "$workdir/active.out"
grep -q "active collection" "$workdir/active.out"
grep -Eq "stop: (plateau|budget|exhausted|max_rounds)" "$workdir/active.out"
# Same config again: served from cache, decision log byte-identical.
pml collect --active --clusters RI --collectives allgather \
    --batch-size 8 --quiet \
    --decision-log "$workdir/decisions_b.jsonl" \
    --output "$workdir/active2.jsonl.gz" | tee "$workdir/active_b.out"
grep -q "(cached)" "$workdir/active_b.out"
cmp "$workdir/decisions_a.jsonl" "$workdir/decisions_b.jsonl" \
    || { echo "active decision log not deterministic" >&2; exit 1; }

echo "== train =="
pml train "$workdir/bundle.json" --clusters RI Ray

echo "== tune (both clusters, fault-injected) =="
for cluster in RI Ray; do
    pml tune "$cluster" --bundle "$workdir/bundle.json" \
        --table-dir "$workdir/tables" --fault-rate 0.2 --retries 8
done

echo "== corrupt a cached table, re-tune =="
echo '{"cluster": "RI", "collectives": {}}' > "$workdir/tables/RI.tuning.json"
pml tune RI --bundle "$workdir/bundle.json" --table-dir "$workdir/tables" \
    --fault-rate 0.2 --retries 8 | tee "$workdir/retune.out"
grep -q "served via:  regenerated" "$workdir/retune.out"
grep -q "quarantined:" "$workdir/retune.out"

echo "== doctor =="
pml doctor "$workdir/tables" | tee "$workdir/doctor.out"
grep -q "quarantined" "$workdir/doctor.out"
pml doctor "$workdir" >/dev/null   # bundle + dataset also validate

echo "== doctor cross-check (bundle vs tables) =="
pml doctor "$workdir/tables" --bundle "$workdir/bundle.json" \
    | tee "$workdir/crosscheck.out"
grep -q "cross-check" "$workdir/crosscheck.out"
# A table filed under the wrong cluster must fail the cross-check.
cp "$workdir/tables/RI.tuning.json" "$workdir/RI.tuning.json.orig"
cp "$workdir/tables/Ray.tuning.json" "$workdir/tables/RI.tuning.json"
if pml doctor "$workdir/tables" --bundle "$workdir/bundle.json" \
    > "$workdir/crosscheck_bad.out" 2>&1; then
    echo "cross-check missed a mismatched table" >&2; exit 1
fi
grep -q "belongs to cluster" "$workdir/crosscheck_bad.out"
mv "$workdir/RI.tuning.json.orig" "$workdir/tables/RI.tuning.json"

echo "== chaos (seeded guard-layer soak) =="
pml chaos --queries 10000 --seed 0 --quiet | tee "$workdir/chaos.out"
grep -q "CHAOS OK" "$workdir/chaos.out"
grep -q "unguarded exceptions: 0" "$workdir/chaos.out"

echo "== bench (quick) =="
pml bench --quick --quiet --jobs 2 --output "$workdir/BENCH_results.json"
python - "$workdir/BENCH_results.json" <<'EOF'
import sys
from repro.core.bench import validate_bench_file

results = validate_bench_file(sys.argv[1])
required = {"forest_fit_serial", "forest_fit_parallel",
            "forest_predict_batch", "table_generation", "table_lookup",
            "serve_batch", "active_collect"}
missing = required - set(results)
assert not missing, f"bench results missing {sorted(missing)}"
assert results["forest_fit_parallel"]["config"][
    "bit_identical_to_serial"], "parallel fit diverged from serial"
assert results["serve_batch"]["config"][
    "identical_to_scalar"], "batched serving diverged from scalar guard"
active = results["active_collect"]["config"]
assert active["core_hours_ratio"] <= 0.5, \
    f"active collection spent {active['core_hours_ratio']:.2%} of exhaustive"
assert active["accuracy_gap"] <= 0.02, \
    f"active accuracy gap {active['accuracy_gap']:+.4f} exceeds 2%"

# The validator must actually *fail* on schema-invalid output.
try:
    validate_bench_results = __import__(
        "repro.core.bench", fromlist=["validate_bench_results"]
    ).validate_bench_results
    validate_bench_results({"broken": {"wall_s": -1, "config": {}}})
except ValueError:
    pass
else:
    raise AssertionError("schema validator accepted invalid output")
print("bench schema OK")
EOF

echo "== select-batch (JSONL in -> guarded decisions out) =="
cat > "$workdir/queries.jsonl" <<'JSONL'
{"collective":"allgather","nodes":2,"ppn":4,"msg_size":1000}
{"collective":"allgather","nodes":2,"ppn":4,"msg_size":1024}
{"collective":"alltoall","nodes":1,"ppn":8,"msg_size":65536}
{"collective":"nope","nodes":2,"ppn":4,"msg_size":64}
JSONL
pml select-batch RI --bundle "$workdir/bundle.json" \
    --input "$workdir/queries.jsonl" --output "$workdir/decisions.jsonl" \
    | tee "$workdir/select_batch.out"
grep -q "answered 4 queries" "$workdir/select_batch.out"
python - "$workdir/decisions.jsonl" <<'EOF'
import json
import sys

lines = open(sys.argv[1]).read().splitlines()
assert len(lines) == 4, f"expected 4 decisions, got {len(lines)}"
records = [json.loads(line) for line in lines]
# 1000 and 1024 share one quantized memo entry; the second is cached.
assert records[1]["cached"] is True
assert records[0]["algorithm"] == records[1]["algorithm"]
# The malformed query is answered, not dropped, and names no algorithm.
assert records[3]["action"] == "invalid"
assert records[3]["algorithm"] is None
assert all(r["algorithm"] for r in records[:3])
print("select-batch OK")
EOF

echo "== serve daemon (boot -> queries -> hot-reload -> drain) =="
pml serve RI --bundle "$workdir/bundle.json" \
    --state-dir "$workdir/serve_state" \
    --ready-file "$workdir/ready.json" --reload-poll-s 0.2 \
    > "$workdir/serve.out" 2>&1 &
serve_pid=$!
for _ in $(seq 1 300); do
    [ -f "$workdir/ready.json" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$workdir/serve.out" >&2; exit 1; }
    sleep 0.1
done
[ -f "$workdir/ready.json" ] || { echo "daemon never ready" >&2; exit 1; }
python - "$workdir/serve_state/daemon.sock" "$workdir/bundle.json" <<'EOF'
import sys
from repro.serve import PROTOCOL_VERSION, DaemonClient

socket_path, bundle = sys.argv[1], sys.argv[2]
with DaemonClient(socket_path) as client:
    assert client.ping()["protocol"] == PROTOCOL_VERSION
    response = client.select([
        {"collective": "allgather", "nodes": 2, "ppn": 8,
         "msg_size": 4096},
        {"collective": "allgather", "nodes": 2, "ppn": 8,
         "msg_size": -1},
    ], deadline_ms=5000)
    actions = [d["action"] for d in response["decisions"]]
    assert actions[0] != "invalid" and actions[1] == "invalid", actions
    # Touch the bundle (same bytes, fresh file): explicit reload swaps.
    assert client.reload()["status"] in ("reloaded", "unchanged")
    counters = client.stats()["counters"]
    assert counters["serve.daemon.internal"] == 0
    assert counters["serve.daemon.requests"] == (
        counters["serve.daemon.ok"]
        + counters["serve.daemon.deadline_floor"]
        + counters["serve.daemon.bad_request"]
        + counters["serve.daemon.overloaded"]
        + counters["serve.daemon.draining"]
        + counters["serve.daemon.internal"])
    client.shutdown()
print("daemon stage OK")
EOF
# Bound the drain: a daemon that never exits must fail the stage, not
# wedge the whole build on an unbounded `wait`.
( sleep 30; kill -9 "$serve_pid" 2>/dev/null ) &
drain_watchdog=$!
drain_rc=0
wait "$serve_pid" || drain_rc=$?
kill "$drain_watchdog" 2>/dev/null || true
[ "$drain_rc" -eq 0 ] || { echo "daemon did not drain cleanly (rc=$drain_rc)" >&2; exit 1; }
[ ! -S "$workdir/serve_state/daemon.sock" ] || { echo "socket left behind" >&2; exit 1; }
[ ! -f "$workdir/serve_state/daemon.lock" ] || { echo "lock left behind" >&2; exit 1; }
grep -q "drained" "$workdir/serve.out"

echo "== adapt (drift -> promote -> confirm -> crash rollback, both clusters) =="
# One feedback-synthesis helper: replay the serving selector on a
# badly degraded fabric so its choices are measurably wrong, and append
# the measurements to the pml-mpi/feedback log.  Prints the next tick.
# The degradation is harsher than the soak's DRIFT_CONDITIONS_KW: it
# must flip the argmin on a well-trained two-cluster bundle for BOTH
# clusters, not just RI.
synth_feedback() { # cluster bundle feedback_log tick0
    python - "$1" "$2" "$3" "$4" <<'EOF'
import sys
from pathlib import Path

from repro.adapt import FeedbackLog
from repro.core.bundle import load_selector
from repro.core.chaos import synthesize_feedback
from repro.hwmodel import get_cluster
from repro.simcluster.conditions import NetworkConditions

cluster, bundle, fb, tick0 = (sys.argv[1], sys.argv[2],
                              Path(sys.argv[3]), int(sys.argv[4]))
fb.parent.mkdir(parents=True, exist_ok=True)
records, next_tick = synthesize_feedback(
    get_cluster(cluster), load_selector(bundle),
    conditions=NetworkConditions(background_load=0.9, latency_jitter=4.0,
                                 link_width_factor=0.125),
    tick0=tick0, repeat=3)
FeedbackLog(fb).append(records)
print(next_tick)
EOF
}
for cluster in RI Ray; do
    adir="$workdir/adapt_$cluster"
    mkdir -p "$adir"
    cp "$workdir/bundle.json" "$adir/bundle.json"
    champion_crc="$(cksum "$adir/bundle.json")"

    # Drifted fabric -> the loop must detect drift, train a challenger,
    # and promote it behind the gate.
    tick="$(synth_feedback "$cluster" "$adir/bundle.json" "$adir/feedback.jsonl" 0)"
    pml adapt "$cluster" --bundle "$adir/bundle.json" \
        --feedback "$adir/feedback.jsonl" --state-dir "$adir/state" \
        --window 600 | tee "$adir/adapt1.out"
    grep -q "adapt: promoted" "$adir/adapt1.out"
    [ -f "$adir/state/champion.backup.json" ] \
        || { echo "no champion backup after promotion ($cluster)" >&2; exit 1; }
    [ "$(cksum "$adir/bundle.json")" != "$champion_crc" ] \
        || { echo "promotion left serving bundle unchanged ($cluster)" >&2; exit 1; }

    # Probation: the challenger was trained on this fabric, so fresh
    # feedback confirms it.
    synth_feedback "$cluster" "$adir/bundle.json" "$adir/feedback.jsonl" "$tick" > /dev/null
    pml adapt "$cluster" --bundle "$adir/bundle.json" \
        --feedback "$adir/feedback.jsonl" --state-dir "$adir/state" \
        --window 600 | tee "$adir/adapt2.out"
    grep -q "adapt: confirmed" "$adir/adapt2.out"

    # Crash mid-promotion: torn sentinel + half-written serving bundle.
    # The next pass must roll back to the backed-up champion.
    backup_crc="$(cksum "$adir/state/champion.backup.json" | cut -d' ' -f1-2)"
    echo '{ "torn": ' > "$adir/bundle.json"
    echo '{ "torn": ' > "$adir/state/promotion.json"
    pml adapt "$cluster" --bundle "$adir/bundle.json" \
        --feedback "$adir/feedback.jsonl" --state-dir "$adir/state" \
        --window 600 | tee "$adir/adapt3.out"
    grep -q "adapt: recovered" "$adir/adapt3.out"
    [ "$(cksum "$adir/bundle.json" | cut -d' ' -f1-2)" = "$backup_crc" ] \
        || { echo "rollback did not restore the champion ($cluster)" >&2; exit 1; }
    ls "$adir"/*.corrupt* >/dev/null 2>&1 \
        || { echo "crashed promotion not quarantined ($cluster)" >&2; exit 1; }
done

echo "== telemetry (traced run + report) =="
trace="$workdir/trace.jsonl"
pml collect --clusters RI --collectives allgather --quiet --trace "$trace"
pml train "$workdir/tele_bundle.json" --clusters RI \
    --collectives allgather --trace "$trace" > /dev/null
pml tune RI --bundle "$workdir/tele_bundle.json" \
    --table-dir "$workdir/tele_tables" --force --trace "$trace" > /dev/null
pml select RI allgather 2 8 4096 --bundle "$workdir/tele_bundle.json" \
    --trace "$trace" > /dev/null
pml report "$trace" | tee "$workdir/report.out"
for stage in collect train tune select; do
    grep -q "^$stage " "$workdir/report.out" \
        || { echo "report missing stage: $stage" >&2; exit 1; }
done
grep -q "tune.rung" "$workdir/report.out"
python - "$trace" <<'EOF'
import sys
from repro.obs.trace_io import load_trace

trace = load_trace(sys.argv[1])
stages = {s["name"] for s in trace.root_spans()}
assert {"collect", "train", "tune", "select"} <= stages, stages
assert trace.counters(), "trace exported no counters"
print(f"trace OK: {len(trace.spans)} spans, {len(trace.metrics)} metrics")
EOF
# A tampered trace must be rejected by the validator and the CLI.
sed 's/"collect"/"b0rked!"/' "$trace" > "$workdir/trace_bad.jsonl"
if pml report "$workdir/trace_bad.jsonl" > /dev/null 2>&1; then
    echo "report accepted a corrupted trace" >&2; exit 1
fi

echo "SMOKE OK"
