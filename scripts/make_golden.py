#!/usr/bin/env python
"""Regenerate the golden serving fixture under tests/golden/.

The fixture freezes three artifacts:

* ``mini_dataset.jsonl.gz`` — the RI+Ray tuning dataset (so the golden
  path never depends on collection-time determinism),
* ``queries.jsonl`` — a fixed query batch: grid points, off-grid sizes
  that exercise quantization, duplicates, and malformed lines,
* ``expected_decisions.jsonl`` — the service's byte-exact answers.

``tests/test_golden_serve.py`` replays the dataset through training and
serving and compares its JSONL output byte-for-byte.  Rerun this script
(``PYTHONPATH=src python scripts/make_golden.py``) only when an
intentional behaviour change moves the expected decisions, and review
the diff it prints.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.dataset import collect_dataset  # noqa: E402
from repro.core.framework import offline_train  # noqa: E402
from repro.hwmodel import get_cluster  # noqa: E402
from repro.serve import (  # noqa: E402
    SelectionQuery,
    SelectionService,
    decisions_to_jsonl,
)
from repro.smpi.guard import GuardedSelector  # noqa: E402

GOLDEN_DIR = REPO / "tests" / "golden"
GOLDEN_CLUSTERS = ("RI", "Ray")
GOLDEN_COLLECTIVES = ("allgather", "alltoall")
SERVE_CLUSTER = "Ray"


def golden_queries() -> list[SelectionQuery]:
    """The frozen query batch: valid grid points, off-grid sizes,
    duplicates, and malformed queries (which must be answered as
    ``invalid`` decisions, never dropped)."""
    queries = []
    for collective in GOLDEN_COLLECTIVES:
        for nodes in (1, 2):
            for ppn in (2, 8):
                for msg in (64, 1000, 1024, 1100, 1 << 18):
                    queries.append(SelectionQuery(
                        collective, nodes, ppn, msg))
    queries += [
        SelectionQuery("allgather", 2, 8, 64),      # exact duplicate
        SelectionQuery("bcast", 2, 4, 4096),        # no trained model
        SelectionQuery("nope", 2, 4, 64),           # unknown collective
        SelectionQuery("allgather", 0, 4, 64),      # bad shape
        SelectionQuery("allgather", 2, 4, -8),      # bad size
    ]
    return queries


def build_service() -> SelectionService:
    dataset_path = GOLDEN_DIR / "mini_dataset.jsonl.gz"
    if dataset_path.exists():
        from repro.core.dataset import TuningDataset
        dataset = TuningDataset.load(dataset_path)
    else:
        dataset = collect_dataset(
            clusters=[get_cluster(n) for n in GOLDEN_CLUSTERS],
            collectives=GOLDEN_COLLECTIVES, use_cache=False)
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        dataset.save(dataset_path)
    selector = offline_train(dataset, family="rf",
                             collectives=GOLDEN_COLLECTIVES)
    return SelectionService(GuardedSelector(selector),
                            get_cluster(SERVE_CLUSTER), cache_size=256)


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    queries = golden_queries()
    (GOLDEN_DIR / "queries.jsonl").write_text("".join(
        json.dumps({"collective": q.collective, "nodes": q.nodes,
                    "ppn": q.ppn, "msg_size": q.msg_size},
                   sort_keys=True, separators=(",", ":")) + "\n"
        for q in queries))
    service = build_service()
    payload = decisions_to_jsonl(service.select_batch(queries))
    expected_path = GOLDEN_DIR / "expected_decisions.jsonl"
    old = expected_path.read_text() if expected_path.exists() else None
    expected_path.write_text(payload)
    if old is not None and old != payload:
        print("expected_decisions.jsonl CHANGED — review this diff:")
        for i, (a, b) in enumerate(zip(old.splitlines(),
                                       payload.splitlines()), 1):
            if a != b:
                print(f"  line {i}:\n  - {a}\n  + {b}")
    print(f"golden fixture written under {GOLDEN_DIR} "
          f"({len(queries)} queries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
