#!/usr/bin/env bash
# Adaptation smoke stage: soak the online-adaptation loop end-to-end
# under a hard wall-clock timeout.
#
# The soak (core/chaos.py::run_adapt_chaos) covers the full loop:
#   feedback   -> poisoned rows quarantined, healthy log replayed
#   drift      -> degraded-fabric storm trips Page-Hinkley
#   promote    -> challenger shadow-evaluated behind the guard and
#                 promoted through the crash-safe gate transaction
#   probation  -> confirmed on matching feedback; a deliberately-worse
#                 challenger must be REJECTED by the sign test
#   crash      -> SIGKILL mid-promotion: sentinel recovery restores the
#                 champion and quarantines the half-promoted bundle
#   replay     -> the whole decision log must be byte-identical on a
#                 second fold from the same seed + feedback
#
# Invariants: the champion is always restorable, zero client-visible
# exceptions, and the adapt/gate/feedback counter partitions hold.
# Exit 1 on any violation.
#
# Run from anywhere: scripts/adapt_smoke.sh
# HARD_TIMEOUT_S (default 600) bounds the whole stage; a wedged loop
# (deadlocked lock, hung training) fails the build instead of stalling.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

HARD_TIMEOUT_S="${HARD_TIMEOUT_S:-600}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
export PML_MPI_CACHE="$workdir/cache"

echo "== adaptation chaos soak (hard timeout ${HARD_TIMEOUT_S}s) =="
timeout --kill-after=30 "$HARD_TIMEOUT_S" \
    python -m repro.cli chaos --adapt --seed 0 \
    | tee "$workdir/adapt_chaos.out"

grep -q "ADAPT CHAOS OK" "$workdir/adapt_chaos.out"
if grep -q "VIOLATION:" "$workdir/adapt_chaos.out"; then
    echo "adaptation soak recorded violations" >&2
    exit 1
fi

echo "ADAPT SMOKE OK"
