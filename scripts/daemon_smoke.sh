#!/usr/bin/env bash
# Daemon smoke stage: boot a real `pml-mpi serve` daemon and soak it
# end-to-end under a hard wall-clock timeout.
#
# The soak (core/chaos.py::run_daemon_chaos) covers the full lifecycle:
#   start      -> boot from a freshly trained bundle, ready-file wait
#   storm      -> concurrent client threads: pings, stats, malformed
#                 queries, sub-ms deadlines, valid batches
#   hot-reload -> mid-storm atomic bundle swap (snapshot version bump),
#                 then a corrupt swap that must be REJECTED while the
#                 old snapshot keeps serving
#   crash      -> SIGKILL + restart in the same state dir: stale lock
#                 recovered, killer bundle quarantined, floor serving
#   drain      -> graceful shutdown, exit 0, socket removed
#
# Invariants: zero raised client exceptions, internal == 0, and the
# daemon/serve/guard counter partitions hold.  Exit 1 on any violation.
# The soak also drives the live introspection plane: a mid-storm
# scrape loop (protocol-v2 `metrics`/`tail`/`health`) whose Prometheus
# partition must reconcile inside every scrape.
#
# A second stage then boots a daemon directly and exercises the
# observability surface the way an operator would: `pml-mpi top
# --once` against the live socket, plus a raw `metrics` scrape checked
# for the exposition-format markers CI dashboards depend on.
#
# Run from anywhere: scripts/daemon_smoke.sh
# HARD_TIMEOUT_S (default 600) bounds the whole stage; a hung daemon
# fails the build instead of wedging it.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

HARD_TIMEOUT_S="${HARD_TIMEOUT_S:-600}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
export PML_MPI_CACHE="$workdir/cache"

echo "== daemon chaos soak (hard timeout ${HARD_TIMEOUT_S}s) =="
timeout --kill-after=30 "$HARD_TIMEOUT_S" \
    python -m repro.cli chaos --daemon --seed 0 \
    --clients 3 --requests-per-client 25 \
    | tee "$workdir/daemon_chaos.out"

grep -q "DAEMON CHAOS OK" "$workdir/daemon_chaos.out"
if grep -q "VIOLATION:" "$workdir/daemon_chaos.out"; then
    echo "daemon soak recorded violations" >&2
    exit 1
fi
# The soak must have answered introspection scrapes mid-storm.
if grep -q "scrapes answered:   0" "$workdir/daemon_chaos.out"; then
    echo "daemon soak answered zero introspection scrapes" >&2
    exit 1
fi

echo "== observability stage: metrics scrape + top --once =="
bundle="$workdir/bundle.json"
socket="$workdir/daemon.sock"
python - "$bundle" <<'PY'
import sys
from repro.core.chaos import _train_chaos_bundle
_train_chaos_bundle(sys.argv[1], seed=0)
PY
timeout --kill-after=30 "$HARD_TIMEOUT_S" \
    python -m repro.cli serve RI \
    --bundle "$bundle" \
    --state-dir "$workdir/state" \
    --socket "$socket" \
    --ready-file "$workdir/ready.json" \
    >"$workdir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -f "$workdir/ready.json" ] && break
    sleep 0.2
done
[ -f "$workdir/ready.json" ] || {
    echo "daemon never became ready:" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

# One operator frame against the live socket (the CI-friendly mode).
python -m repro.cli top --socket "$socket" --once \
    | tee "$workdir/top.out"
grep -q "pml-mpi top — serving" "$workdir/top.out"
grep -q "health: " "$workdir/top.out"
grep -q "flight recorder: " "$workdir/top.out"

# A raw scrape must carry the exposition markers scrapers key on.
python - "$socket" <<'PY' | tee "$workdir/metrics.out"
import sys
from repro.serve.client import DaemonClient
with DaemonClient(sys.argv[1]) as client:
    body = client.metrics()["body"]
    health = client.health()
sys.stdout.write(body)
assert health["verdict"] in ("ok", "warn", "page"), health
PY
grep -q "# TYPE pml_serve_daemon_requests_total counter" \
    "$workdir/metrics.out"
grep -q 'le="+Inf"' "$workdir/metrics.out"

python - "$socket" <<'PY'
import sys
from repro.serve.client import DaemonClient
with DaemonClient(sys.argv[1]) as client:
    client.shutdown()
PY
wait "$serve_pid"

echo "DAEMON SMOKE OK"
