#!/usr/bin/env bash
# Daemon smoke stage: boot a real `pml-mpi serve` daemon and soak it
# end-to-end under a hard wall-clock timeout.
#
# The soak (core/chaos.py::run_daemon_chaos) covers the full lifecycle:
#   start      -> boot from a freshly trained bundle, ready-file wait
#   storm      -> concurrent client threads: pings, stats, malformed
#                 queries, sub-ms deadlines, valid batches
#   hot-reload -> mid-storm atomic bundle swap (snapshot version bump),
#                 then a corrupt swap that must be REJECTED while the
#                 old snapshot keeps serving
#   crash      -> SIGKILL + restart in the same state dir: stale lock
#                 recovered, killer bundle quarantined, floor serving
#   drain      -> graceful shutdown, exit 0, socket removed
#
# Invariants: zero raised client exceptions, internal == 0, and the
# daemon/serve/guard counter partitions hold.  Exit 1 on any violation.
#
# Run from anywhere: scripts/daemon_smoke.sh
# HARD_TIMEOUT_S (default 600) bounds the whole stage; a hung daemon
# fails the build instead of wedging it.

set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

HARD_TIMEOUT_S="${HARD_TIMEOUT_S:-600}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
export PML_MPI_CACHE="$workdir/cache"

echo "== daemon chaos soak (hard timeout ${HARD_TIMEOUT_S}s) =="
timeout --kill-after=30 "$HARD_TIMEOUT_S" \
    python -m repro.cli chaos --daemon --seed 0 \
    --clients 3 --requests-per-client 25 \
    | tee "$workdir/daemon_chaos.out"

grep -q "DAEMON CHAOS OK" "$workdir/daemon_chaos.out"
if grep -q "VIOLATION:" "$workdir/daemon_chaos.out"; then
    echo "daemon soak recorded violations" >&2
    exit 1
fi

echo "DAEMON SMOKE OK"
