#!/usr/bin/env python3
"""Standalone entry point for the benchmark harness.

Equivalent to ``pml-mpi bench``; usable straight from a checkout
without installing the package::

    python scripts/bench.py --quick --output BENCH_results.json
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
