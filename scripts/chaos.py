#!/usr/bin/env python3
"""Standalone entry point for the chaos/soak harness.

Equivalent to ``pml-mpi chaos``; usable straight from a checkout
without installing the package::

    python scripts/chaos.py --queries 10000 --seed 0
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["chaos", *sys.argv[1:]]))
