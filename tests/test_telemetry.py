"""Tests for the observability layer: tracer, metrics registry, JSONL
trace export/validation, and the report renderer."""

import json

import pytest

from repro.core.resilience import CorruptArtifactError, StaleArtifactError
from repro.obs.report import render_report, slowest_spans, stage_breakdown
from repro.obs.telemetry import (
    HIST_MAX_EXP,
    HIST_MIN_EXP,
    UNDERFLOW_EXP,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    log2_bucket,
    use_telemetry,
)
from repro.obs.trace_io import (
    TRACE_FORMAT,
    TRACE_VERSION,
    encode_trace,
    export_trace,
    load_trace,
    parse_trace,
)


def fake_clock():
    """Deterministic monotonic clock: 0.0, 1.0, 2.0, ..."""
    tick = [0.0]

    def clock():
        t = tick[0]
        tick[0] += 1.0
        return t

    return clock


def span_record(span_id, parent=None, name="s", start=0.0, end=1.0,
                attrs=None):
    return {"type": "span", "id": span_id, "parent": parent,
            "name": name, "start": start, "end": end,
            "attrs": attrs if attrs is not None else {}}


class TestTracer:
    def test_nested_spans_sequential_ids(self):
        tracer = Tracer(clock=fake_clock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.span_id == 1 and inner.span_id == 2
        assert inner.parent_id == 1 and outer.parent_id is None
        assert outer.start == 0.0 and inner.start == 1.0
        assert inner.end == 2.0 and outer.end == 3.0

    def test_disabled_tracer_yields_none_and_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            assert span is None
        assert tracer.export_spans() == []

    def test_open_spans_not_exported(self):
        tracer = Tracer(clock=fake_clock())
        tracer.start_span("open")
        assert tracer.export_spans() == []

    def test_non_scalar_attribute_rejected(self):
        tracer = Tracer(clock=fake_clock())
        with pytest.raises(TypeError, match="JSON scalar"):
            tracer.start_span("bad", payload=[1, 2])

    def test_current_span_tracks_stack(self):
        tracer = Tracer(clock=fake_clock())
        assert tracer.current_span is None
        with tracer.span("a") as a:
            assert tracer.current_span is a
        assert tracer.current_span is None

    def test_merge_rebases_ids_times_and_parents(self):
        parent = Tracer(clock=fake_clock())
        worker = Tracer(clock=fake_clock())
        with worker.span("w.outer"):
            with worker.span("w.inner"):
                pass
        with parent.span("p") as p:
            parent.merge(worker.export_spans())
        spans = {s.name: s for s in parent.spans}
        assert spans["w.outer"].parent_id == p.span_id
        assert spans["w.inner"].parent_id == spans["w.outer"].span_id
        # Durations preserved, offsets re-based onto the parent clock.
        assert spans["w.inner"].duration == 1.0
        assert spans["w.outer"].start >= p.start
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_rejects_non_finite(self):
        g = MetricsRegistry().gauge("g")
        g.set(2.5)
        assert g.value == 2.5
        with pytest.raises(ValueError, match="finite"):
            g.set(float("inf"))

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("dual")

    @pytest.mark.parametrize("value,expected", [
        (4.0, 2),       # exact power of two gets its own bucket
        (4.1, 3),       # just past it spills into the next
        (3.5, 2),
        (1.0, 0),
        (0.5, -1),
        (0.0, UNDERFLOW_EXP),
        (-7.0, UNDERFLOW_EXP),
        (float("nan"), UNDERFLOW_EXP),
        (float("inf"), HIST_MAX_EXP),
        (2.0 ** 100, HIST_MAX_EXP),
        (2.0 ** -100, HIST_MIN_EXP),
    ])
    def test_log2_bucket_boundaries(self, value, expected):
        assert log2_bucket(value) == expected

    def test_non_positive_observations_get_their_own_bucket(self):
        """Regression: zero and negative observations used to share
        the ``2**HIST_MIN_EXP`` bucket with genuinely tiny positive
        values, silently counting clock-skew artifacts as the fastest
        real measurements.  They now land in a dedicated underflow
        bucket outside the log2 range."""
        h = MetricsRegistry().histogram("h")
        h.observe(0.0)
        h.observe(-3.0)
        h.observe(2.0 ** -100)
        assert h.buckets == {UNDERFLOW_EXP: 2, HIST_MIN_EXP: 1}
        assert UNDERFLOW_EXP < HIST_MIN_EXP

    def test_underflow_bucket_survives_export_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").observe(-1.0)
        b.merge_records(a.export_metrics())
        assert b.histogram("h").buckets == {UNDERFLOW_EXP: 1}

    def test_histogram_counts_and_sum(self):
        h = MetricsRegistry().histogram("h")
        for v in (3.5, 4.0, 4.1):
            h.observe(v)
        assert h.count == 3
        assert h.buckets == {2: 2, 3: 1}
        assert h.total == pytest.approx(11.6)

    def test_merge_records_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.histogram("h").observe(4.0)
        b.counter("c").inc(3)
        b.gauge("g").set(9.0)
        b.histogram("h").observe(100.0)
        a.merge_records(b.export_metrics())
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 9.0
        assert a.histogram("h").count == 2

    def test_ambient_defaults_and_scoped_install(self):
        assert get_tracer().enabled is False
        outer_registry = get_registry()
        with use_telemetry() as (tracer, registry):
            assert get_tracer() is tracer and tracer.enabled
            assert get_registry() is registry
        assert get_tracer().enabled is False
        assert get_registry() is outer_registry


class TestTraceExport:
    def _run_once(self, tmp_path, name):
        path = tmp_path / name
        with use_telemetry(Tracer(clock=fake_clock())) as (tracer,
                                                           registry):
            registry.counter("queries").inc(3)
            registry.histogram("sizes").observe(6.0)
            with tracer.span("stage", cluster="RI"):
                with tracer.span("step"):
                    pass
            export_trace(path, tracer, registry, append=False)
        return path.read_bytes()

    def test_fake_clock_runs_byte_identical(self, tmp_path):
        assert self._run_once(tmp_path, "a.jsonl") \
            == self._run_once(tmp_path, "b.jsonl")

    def test_roundtrip(self, tmp_path):
        self._run_once(tmp_path, "t.jsonl")
        trace = load_trace(tmp_path / "t.jsonl")
        assert [s["name"] for s in trace.spans] == ["stage", "step"]
        assert trace.counters() == {"queries": 3}
        assert trace.root_spans()[0]["attrs"] == {"cluster": "RI"}

    def test_append_rebases_spans_and_merges_metrics(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            with use_telemetry(Tracer(clock=fake_clock())) \
                    as (tracer, registry):
                registry.counter("queries").inc(3)
                registry.histogram("sizes").observe(6.0)
                with tracer.span("stage"):
                    pass
                export_trace(path, tracer, registry)
        trace = load_trace(path)
        assert [s["id"] for s in trace.spans] == [1, 2]
        assert trace.counters() == {"queries": 6}
        assert trace.histograms()["sizes"]["count"] == 2

    def test_concurrent_append_from_two_processes(self, tmp_path):
        """Two real processes appending to the same ``--trace`` file
        concurrently must interleave cleanly: the export lock turns
        the load -> rebase -> merge -> write cycle into a critical
        section, so no span, counter increment, or append generation
        is ever lost and the result still validates."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro

        # The children run with tmp_path as cwd, so a relative
        # PYTHONPATH=src from the pytest invocation would not resolve.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        path = tmp_path / "t.jsonl"
        script = (
            "import sys\n"
            "from repro.obs.telemetry import MetricsRegistry, Tracer\n"
            "from repro.obs.trace_io import export_trace\n"
            "tracer = Tracer()\n"
            "registry = MetricsRegistry()\n"
            "registry.counter('queries').inc(1)\n"
            "with tracer.span('stage', worker=sys.argv[2]):\n"
            "    pass\n"
            "for _ in range(8):\n"
            "    export_trace(sys.argv[1], tracer, registry)\n"
        )
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, str(path), str(i)],
            cwd=tmp_path, env=env, stderr=subprocess.PIPE)
            for i in range(2)]
        for p in procs:
            _, err = p.communicate(timeout=120)
            assert p.returncode == 0, err.decode()
        trace = load_trace(path)  # validates checksum + record count
        assert len(trace.spans) == 16
        assert trace.counters() == {"queries": 16}
        ids = [s["id"] for s in trace.spans]
        assert sorted(ids) == list(range(1, 17))

    def test_append_onto_corrupt_trace_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("garbage\n")
        with use_telemetry(Tracer(clock=fake_clock())) as (tracer,
                                                           registry):
            with tracer.span("stage"):
                pass
            with pytest.raises(CorruptArtifactError):
                export_trace(path, tracer, registry)
        # The corrupt file was not clobbered.
        assert path.read_text() == "garbage\n"


class TestTraceValidation:
    """Schema-rejection matrix (mirrors the doctor corrupt-artifact
    tests): every corruption class raises a typed artifact error."""

    def test_empty_file(self):
        with pytest.raises(CorruptArtifactError, match="empty"):
            parse_trace("")

    def test_non_json_header(self):
        with pytest.raises(CorruptArtifactError, match="not JSON"):
            parse_trace("not json\n")

    def test_missing_meta_header(self):
        with pytest.raises(CorruptArtifactError, match="__meta__"):
            parse_trace('{"type": "counter"}\n')

    def test_wrong_format(self):
        text = json.dumps({"__meta__": {
            "format": "other/format", "version": TRACE_VERSION,
            "records": 0, "crc32": 0}}) + "\n"
        with pytest.raises(CorruptArtifactError, match="not a trace"):
            parse_trace(text)

    def test_version_mismatch_is_stale(self):
        text = json.dumps({"__meta__": {
            "format": TRACE_FORMAT, "version": TRACE_VERSION + 1,
            "records": 0, "crc32": 0}}) + "\n"
        with pytest.raises(StaleArtifactError, match="version"):
            parse_trace(text)

    def test_record_count_mismatch(self):
        text = encode_trace([span_record(1)], [])
        truncated = text.splitlines(keepends=True)[0]
        with pytest.raises(CorruptArtifactError, match="truncated"):
            parse_trace(truncated)

    def test_checksum_mismatch(self):
        text = encode_trace([span_record(1, name="honest")], [])
        tampered = text.replace("honest", "forged")
        with pytest.raises(CorruptArtifactError, match="checksum"):
            parse_trace(tampered)

    def test_unknown_record_type(self):
        text = encode_trace([{"type": "mystery"}], [])
        with pytest.raises(CorruptArtifactError, match="unknown record"):
            parse_trace(text)

    @pytest.mark.parametrize("bad,match", [
        (span_record(0), "positive integer"),
        (span_record(1, start=1.0, end=0.5), "ends before"),
        (span_record(1, parent=99), "unknown parent"),
        (span_record(1, start=float("nan")), "not finite"),
        (span_record(1, name=""), "non-empty"),
        (span_record(1, attrs="x"), "attrs"),
        ({**span_record(1), "extra": 1}, "schema"),
    ])
    def test_malformed_span(self, bad, match):
        with pytest.raises(CorruptArtifactError, match=match):
            parse_trace(encode_trace([bad], []))

    def test_duplicate_span_id(self):
        text = encode_trace([span_record(1), span_record(1)], [])
        with pytest.raises(CorruptArtifactError, match="duplicate"):
            parse_trace(text)

    @pytest.mark.parametrize("bad,match", [
        ({"type": "counter", "name": "c", "value": -1}, "non-negative"),
        ({"type": "counter", "name": "c", "value": 1.5}, "non-negative"),
        ({"type": "counter", "name": "", "value": 1}, "non-empty"),
        ({"type": "gauge", "name": "g", "value": "x"}, "not a number"),
        ({"type": "histogram", "name": "h", "count": 2, "sum": 1.0,
          "buckets": {"3": 1}}, "sum to"),
        ({"type": "histogram", "name": "h", "count": 1, "sum": 1.0,
          "buckets": {"x": 1}}, "integer exponent"),
        ({"type": "histogram", "name": "h", "count": 1, "sum": 1.0,
          "buckets": {"3": 0}}, "invalid"),
    ])
    def test_malformed_metric(self, bad, match):
        with pytest.raises(CorruptArtifactError, match=match):
            parse_trace(encode_trace([], [bad]))

    def test_duplicate_metric_name(self):
        metric = {"type": "counter", "name": "c", "value": 1}
        with pytest.raises(CorruptArtifactError, match="duplicate"):
            parse_trace(encode_trace([], [metric, dict(metric)]))

    def test_load_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.jsonl")


class TestReport:
    def _trace(self):
        text = encode_trace(
            [span_record(1, name="collect", start=0.0, end=4.0),
             span_record(2, parent=1, name="collect.chunk",
                         start=0.5, end=3.0),
             span_record(3, name="train", start=4.0, end=10.0)],
            [{"type": "counter", "name": "queries", "value": 7},
             {"type": "histogram", "name": "sizes", "count": 1,
              "sum": 6.0, "buckets": {"3": 1}}])
        return parse_trace(text)

    def test_stage_breakdown_groups_root_spans(self):
        rows = stage_breakdown(self._trace())
        assert [r["stage"] for r in rows] == ["train", "collect"]
        assert rows[0]["total_s"] == 6.0
        assert rows[0]["share"] == pytest.approx(0.6)

    def test_slowest_spans_paths(self):
        rows = slowest_spans(self._trace(), n=2)
        assert rows[0][1] == "train"
        assert rows[1][1] == "collect"
        assert slowest_spans(self._trace(), n=10)[2][1] \
            == "collect > collect.chunk"

    def test_render_report_sections(self):
        out = render_report(self._trace())
        assert "per-stage wall clock" in out
        assert "collect" in out and "train" in out
        assert "queries" in out and "7" in out
        assert "log2 buckets" in out
        assert "slowest spans" in out


class TestWorkerSpanMerging:
    def test_parallel_map_merges_worker_spans(self):
        from repro.ml.parallel import parallel_map

        with use_telemetry(Tracer(clock=fake_clock())) as (tracer,
                                                           registry):
            with tracer.span("parent"):
                results = parallel_map(_square_traced, [2, 3, 4], 2)
        assert results == [4, 9, 16]
        names = [s.name for s in tracer.spans]
        assert names.count("worker.square") == 3
        parent_id = tracer.spans[0].span_id
        workers = [s for s in tracer.spans if s.name == "worker.square"]
        assert all(s.parent_id == parent_id for s in workers)
        assert registry.counter("worker.calls").value == 3

    def test_serial_map_records_spans_directly(self):
        from repro.ml.parallel import parallel_map

        with use_telemetry(Tracer(clock=fake_clock())) as (tracer, _):
            parallel_map(_square_traced, [5], 1)
        assert [s.name for s in tracer.spans] == ["worker.square"]


def _square_traced(x):
    with get_tracer().span("worker.square", x=x):
        get_registry().counter("worker.calls").inc()
        return x * x
