"""Golden regression test for the serving layer.

Replays the frozen mini dataset through training and batched serving
and compares the emitted decision JSONL byte-for-byte against the
checked-in expectation.  Any drift in feature extraction, model
training, guard routing, quantization, memoization, or serialization
shows up here as a one-line diff.  Regenerate intentionally with
``PYTHONPATH=src python scripts/make_golden.py``.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.serve import SelectionQuery, decisions_to_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"

sys.path.insert(0, str(Path(__file__).parent.parent / "scripts"))
import make_golden  # noqa: E402


@pytest.fixture(scope="module")
def golden_service():
    assert (GOLDEN_DIR / "mini_dataset.jsonl.gz").exists(), \
        "golden fixture missing — run scripts/make_golden.py"
    return make_golden.build_service()


def _queries_from_fixture():
    queries = []
    for line in (GOLDEN_DIR / "queries.jsonl").read_text().splitlines():
        record = json.loads(line)
        queries.append(SelectionQuery(
            record["collective"], record["nodes"], record["ppn"],
            record["msg_size"]))
    return queries


def test_fixture_files_present():
    for name in ("mini_dataset.jsonl.gz", "queries.jsonl",
                 "expected_decisions.jsonl"):
        assert (GOLDEN_DIR / name).exists(), name


def test_fixture_queries_match_generator():
    """The checked-in query file is what the generator would emit —
    otherwise the byte comparison below tests stale inputs."""
    assert _queries_from_fixture() == make_golden.golden_queries()


def test_decisions_byte_identical(golden_service):
    queries = _queries_from_fixture()
    payload = decisions_to_jsonl(golden_service.select_batch(queries))
    expected = (GOLDEN_DIR / "expected_decisions.jsonl").read_text()
    assert payload == expected, (
        "serving output drifted from the golden fixture; if the change "
        "is intentional, rerun scripts/make_golden.py and review the "
        "diff")


def test_columnar_decisions_byte_identical():
    """The columnar block path must reproduce the golden bytes too.
    Uses a fresh service (the module fixture's memo is already warm,
    which would flip the ``cached`` flags)."""
    service = make_golden.build_service()
    queries = _queries_from_fixture()
    payload = decisions_to_jsonl(
        service.select_block(queries).to_decisions())
    expected = (GOLDEN_DIR / "expected_decisions.jsonl").read_text()
    assert payload == expected, (
        "columnar serving output drifted from the golden fixture")


def test_expected_decisions_internally_consistent():
    """Sanity on the checked-in expectation itself: one decision per
    query, invalid queries answered (not dropped), every line is
    compact sorted-key JSON."""
    lines = (GOLDEN_DIR /
             "expected_decisions.jsonl").read_text().splitlines()
    queries = _queries_from_fixture()
    assert len(lines) == len(queries)
    n_invalid = 0
    for line in lines:
        record = json.loads(line)
        assert json.dumps(record, sort_keys=True,
                          separators=(",", ":")) == line
        if record["action"] == "invalid":
            n_invalid += 1
            assert record["algorithm"] is None
    assert n_invalid == 3  # unknown collective, bad shape, bad size
