"""Chaos/soak harness: fault-injected selectors and guard invariants.

The short run executes on every test invocation; the full 10k-query
soak is opt-in via ``-m chaos`` (it is what ``scripts/smoke.sh`` and
``pml-mpi chaos`` run).
"""

import pytest

from repro.core.chaos import (
    CORRUPT_LABEL,
    AdaptChaosReport,
    ChaosReport,
    DaemonChaosReport,
    FlakySelector,
    run_adapt_chaos,
    run_chaos,
    run_daemon_chaos,
)
from repro.hwmodel import get_cluster
from repro.simcluster.conditions import FaultProfile
from repro.simcluster.machine import Machine
from repro.smpi.heuristics import MvapichDefaultSelector


class TestFlakySelector:
    def test_deterministic_per_seed(self):
        machine = Machine(get_cluster("RI"), 2, 8)

        def run(seed):
            flaky = FlakySelector(MvapichDefaultSelector(),
                                  FaultProfile(failure_rate=0.2,
                                               seed=seed),
                                  garbage_rate=0.2, seed=seed)
            out = []
            for _ in range(50):
                try:
                    out.append(flaky.select("allgather", machine, 1024))
                except Exception as exc:
                    out.append(type(exc).__name__)
            return out

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_force_fail_always_raises(self):
        flaky = FlakySelector(MvapichDefaultSelector(),
                              FaultProfile(failure_rate=0.0))
        machine = Machine(get_cluster("RI"), 2, 8)
        flaky.force_fail = True
        with pytest.raises(Exception):
            flaky.select("allgather", machine, 1024)

    def test_garbage_label_is_unknown_to_registry(self):
        from repro.smpi.collectives import base
        with pytest.raises(KeyError):
            base.get_algorithm("allgather", CORRUPT_LABEL)


class TestRunChaos:
    def test_short_soak_holds_invariants(self):
        report = run_chaos(queries=1200, seed=0, storm_length=25,
                           recovery_ticks=80)
        assert report.ok, "\n".join(report.violations)
        assert report.unguarded_exceptions == 0
        assert report.infeasible_served == 0
        assert report.breaker_cycles >= 1
        assert report.counters["queries"] == 1200
        assert report.invalid_rejected > 0
        assert report.counters["remapped"] > 0
        assert report.counters["ood_fallback"] > 0

    def test_deterministic_given_seed(self):
        a = run_chaos(queries=300, seed=3, storm_length=10,
                      recovery_ticks=40)
        b = run_chaos(queries=300, seed=3, storm_length=10,
                      recovery_ticks=40)
        assert a.counters == b.counters
        assert a.breaker_transitions == b.breaker_transitions

    def test_rejects_bad_query_count(self):
        with pytest.raises(ValueError):
            run_chaos(queries=0)

    def test_report_round_trips(self):
        report = ChaosReport(queries=10, seed=1)
        assert report.ok
        assert report.to_dict()["ok"] is True
        report.violations.append("boom")
        assert not report.ok
        assert "CHAOS FAILED" in report.describe()


class TestDaemonChaosReport:
    def test_report_round_trips_and_flags_violations(self):
        report = DaemonChaosReport(seed=1, clients=2,
                                   requests_per_client=4)
        assert report.ok
        assert "DAEMON CHAOS OK" in report.describe()
        report.violations.append("boom")
        assert not report.ok
        assert "DAEMON CHAOS FAILED" in report.describe()
        assert report.to_dict()["violations"] == ["boom"]


class TestAdaptChaosReport:
    def test_report_round_trips_and_flags_violations(self):
        report = AdaptChaosReport(seed=1)
        assert report.ok
        assert "ADAPT CHAOS OK" in report.describe()
        report.violations.append("boom")
        assert not report.ok
        assert "ADAPT CHAOS FAILED" in report.describe()
        assert report.to_dict()["violations"] == ["boom"]


@pytest.mark.chaos
@pytest.mark.drift
def test_adapt_soak_full_lifecycle():
    """The full online-adaptation soak: poisoned feedback quarantined,
    drift storm detected, a good challenger promoted behind the gate
    and confirmed through probation, a deliberately-worse challenger
    rejected, mid-promotion SIGKILL recovered, and the whole decision
    log byte-identical on replay."""
    report = run_adapt_chaos(seed=0)
    assert report.ok, "\n".join(report.violations)
    assert report.decision_log_identical
    assert report.reloads_observed >= 1
    for verdict in ("no_feedback", "promoted", "confirmed", "demoted",
                    "recovered"):
        assert verdict in report.verdicts, report.verdicts
    c = report.counters
    assert c["adapt.runs"] == sum(
        v for k, v in c.items() if k.startswith("adapt.verdict."))
    assert c["adapt.feedback.loads"] == (
        c["adapt.feedback.ok"] + c["adapt.feedback.quarantined"])
    assert c["adapt.gate.evaluations"] == (
        c["adapt.gate.accepted"] + c["adapt.gate.rejected"])


@pytest.mark.chaos
def test_daemon_soak_full_lifecycle():
    """A real daemon subprocess soaked through its whole lifecycle:
    storm, mid-storm hot-reload, corrupt-bundle rejection, SIGKILL +
    crash-safe restart, protocol garbage, graceful drain — with zero
    raised client exceptions and exact counter partitions."""
    report = run_daemon_chaos(seed=0, clients=2,
                              requests_per_client=10)
    assert report.ok, "\n".join(report.violations)
    assert report.requests_sent == 2 * 10
    assert report.counters["serve.daemon.internal"] == 0
    phases = " | ".join(report.phases)
    assert "client storm" in phases
    assert "mid-storm hot-reload" in phases
    assert "corrupt-bundle swap" in phases
    assert "crash-safe restart" in phases
    assert "graceful shutdown" in phases


@pytest.mark.chaos
def test_full_soak_ten_thousand_queries():
    """The acceptance-criteria run: >= 10k adversarial queries, zero
    unguarded exceptions, 100% feasible selections, breaker cycles."""
    report = run_chaos(queries=10_000, seed=0)
    assert report.ok, "\n".join(report.violations)
    assert report.unguarded_exceptions == 0
    assert report.infeasible_served == 0
    assert report.breaker_cycles >= 1
    c = report.counters
    assert c["queries"] == 10_000
    assert (c["invalid"] + c["served_model"] + c["remapped"]
            + c["ood_fallback"] + c["breaker_fallback"]
            + c["error_fallback"]) == 10_000
