"""Tests for the hardware-derived cost-model parameters."""

import numpy as np
import pytest

from repro.hwmodel import all_clusters, get_cluster
from repro.simcluster.netmodel import NetParams


@pytest.fixture(scope="module")
def frontera():
    return NetParams.from_spec(get_cluster("Frontera"))


@pytest.fixture(scope="module")
def ri():
    return NetParams.from_spec(get_cluster("RI"))


class TestParameterDerivation:
    def test_all_clusters_produce_valid_params(self):
        for spec in all_clusters():
            prm = NetParams.from_spec(spec)
            assert prm.alpha_inter_s > 0
            assert prm.alpha_intra_s > 0
            assert prm.beta_inter_Bps > 0
            assert prm.nic_gap_s > 0
            assert prm.l3_bytes > 0

    def test_newer_interconnect_is_faster(self, frontera, ri):
        # Frontera: EDR + PCIe3; RI: QDR + PCIe2.
        assert frontera.beta_inter_Bps > ri.beta_inter_Bps
        assert frontera.alpha_inter_s < ri.alpha_inter_s
        assert frontera.nic_gap_s < ri.nic_gap_s

    def test_pcie_can_cap_link_bandwidth(self):
        # RI: QDR x4 = 32 Gb/s data over PCIe 2.0 x8 (~4 GB/s) — the
        # PCIe link is the binding constraint.
        prm = NetParams.from_spec(get_cluster("RI"))
        link = get_cluster("RI").node.interconnect.bandwidth_bytes_per_s
        assert prm.beta_inter_Bps < link

    def test_faster_clock_lowers_cpu_overheads(self):
        fast = NetParams.from_spec(get_cluster("Frontera"))  # 4.0 GHz
        slow = NetParams.from_spec(get_cluster("TACC KNL"))  # 1.6 GHz
        assert fast.cpu_op_overhead_s < slow.cpu_op_overhead_s
        assert fast.alpha_intra_s < slow.alpha_intra_s


class TestCopyBandwidth:
    def test_cache_resident_copies_faster(self, frontera):
        small = frontera.copy_bandwidth(1024, active_ranks=1)
        huge = frontera.copy_bandwidth(512 * 1024 * 1024, active_ranks=1)
        assert small > huge

    def test_more_active_ranks_reduce_dram_share(self, frontera):
        big = 512 * 1024 * 1024
        one = frontera.copy_bandwidth(big, active_ranks=1)
        many = frontera.copy_bandwidth(big, active_ranks=56)
        assert many < one

    def test_vectorized_matches_scalar(self, frontera):
        sizes = np.array([64.0, 4096.0, 1 << 20, 1 << 28])
        vec = frontera.copy_bandwidth_vec(sizes, 8)
        for s, v in zip(sizes, vec):
            assert v == pytest.approx(frontera.copy_bandwidth(s, 8))

    def test_cache_knee_depends_on_l3(self):
        # MRI (512 MiB L3) keeps the boost for blocks that spill on
        # Frontera (77 MiB L3) at the same PPN.
        mri = NetParams.from_spec(get_cluster("MRI"))
        fro = NetParams.from_spec(get_cluster("Frontera"))
        size = 1 << 21  # 2 MiB
        assert (mri.copy_bandwidth(size, 56)
                > fro.copy_bandwidth(size, 56))


class TestProtocolAndCongestion:
    def test_rendezvous_adds_latency(self, frontera):
        small = frontera.inter_point_time(1024)
        just_under = frontera.inter_point_time(frontera.eager_inter_bytes)
        just_over = frontera.inter_point_time(
            frontera.eager_inter_bytes + 1)
        assert small < just_under
        assert just_over > just_under + frontera.alpha_inter_s

    def test_spread_penalty_monotone(self, frontera):
        betas = [frontera.effective_beta(s) for s in (1, 2, 8, 64)]
        assert betas == sorted(betas, reverse=True)
        assert betas[0] == pytest.approx(frontera.beta_inter_Bps)

    def test_flow_penalty_free_up_to_ppn(self, frontera):
        assert frontera.flow_penalty(56, ppn=56) == pytest.approx(1.0)
        assert frontera.flow_penalty(10, ppn=56) == pytest.approx(1.0)

    def test_flow_penalty_grows_logarithmically(self, frontera):
        p1 = frontera.flow_penalty(2 * 56, 56)
        p2 = frontera.flow_penalty(100 * 56, 56)
        assert 1.0 < p1 < p2 < 5.0

    def test_flow_penalty_vectorized(self, frontera):
        out = frontera.flow_penalty(np.array([1.0, 56.0, 5600.0]), 56)
        assert out.shape == (3,)
        assert out[0] == out[1] == pytest.approx(1.0)
        assert out[2] > 1.0
