"""Tests for Random Forest and Gradient Boosting."""

import numpy as np
import pytest

from repro.ml import (
    GradientBoostingClassifier,
    RandomForestClassifier,
)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(7)
    n = 600
    X = rng.normal(size=(n, 6))
    y = ((X[:, 0] > 0).astype(int)
         + 2 * ((X[:, 1] + 0.5 * X[:, 2]) > 0).astype(int))
    return X, y


class TestRandomForest:
    def test_beats_chance_and_single_stump(self, dataset):
        X, y = dataset
        rf = RandomForestClassifier(n_estimators=30, random_state=0)
        rf.fit(X[:400], y[:400])
        assert rf.score(X[400:], y[400:]) > 0.8

    def test_deterministic_given_seed(self, dataset):
        X, y = dataset
        a = RandomForestClassifier(n_estimators=10, random_state=42)
        b = RandomForestClassifier(n_estimators=10, random_state=42)
        pa = a.fit(X, y).predict(X)
        pb = b.fit(X, y).predict(X)
        assert np.array_equal(pa, pb)

    def test_different_seeds_differ(self, dataset):
        X, y = dataset
        a = RandomForestClassifier(n_estimators=5, random_state=0,
                                   max_depth=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=1,
                                   max_depth=3).fit(X, y)
        assert not np.array_equal(a.predict_proba(X), b.predict_proba(X))

    def test_predict_proba_valid(self, dataset):
        X, y = dataset
        rf = RandomForestClassifier(n_estimators=15, random_state=0)
        proba = rf.fit(X, y).predict_proba(X)
        assert proba.shape == (len(X), len(np.unique(y)))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)

    def test_feature_importances_normalized_and_informative(self, dataset):
        X, y = dataset
        rf = RandomForestClassifier(n_estimators=30, random_state=0)
        rf.fit(X, y)
        imp = rf.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        # Features 0-2 are informative; 3-5 pure noise.
        assert imp[:3].sum() > 0.7

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [0.1], [5.0], [5.1]])
        y = np.array(["ring", "ring", "bruck", "bruck"])
        rf = RandomForestClassifier(n_estimators=5, random_state=0)
        assert set(rf.fit(X, y).predict(X)) <= {"ring", "bruck"}

    def test_rare_class_present_in_proba_columns(self):
        """Bootstrap samples may miss a rare class; probability columns
        must still cover every class."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = np.zeros(200, dtype=int)
        y[:3] = 1  # very rare class
        rf = RandomForestClassifier(n_estimators=10, random_state=0)
        proba = rf.fit(X, y).predict_proba(X)
        assert proba.shape == (200, 2)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_get_params_roundtrip(self):
        rf = RandomForestClassifier(n_estimators=7, max_depth=3)
        clone = RandomForestClassifier(**rf.get_params())
        assert clone.n_estimators == 7 and clone.max_depth == 3


class TestGradientBoosting:
    def test_learns_nonlinear_boundary(self, dataset):
        X, y = dataset
        gb = GradientBoostingClassifier(n_estimators=40, random_state=0)
        gb.fit(X[:400], y[:400])
        assert gb.score(X[400:], y[400:]) > 0.8

    def test_more_estimators_reduce_training_error(self, dataset):
        X, y = dataset
        few = GradientBoostingClassifier(n_estimators=3, random_state=0)
        many = GradientBoostingClassifier(n_estimators=60, random_state=0)
        assert many.fit(X, y).score(X, y) >= few.fit(X, y).score(X, y)

    def test_predict_proba_valid(self, dataset):
        X, y = dataset
        gb = GradientBoostingClassifier(n_estimators=10, random_state=0)
        proba = gb.fit(X, y).predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(proba >= 0)

    def test_binary_problem(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)  # XOR-like
        gb = GradientBoostingClassifier(n_estimators=50, max_depth=3,
                                        random_state=0).fit(X, y)
        assert gb.score(X, y) > 0.9

    def test_subsample_still_learns(self, dataset):
        X, y = dataset
        gb = GradientBoostingClassifier(n_estimators=30, subsample=0.5,
                                        random_state=0).fit(X, y)
        assert gb.score(X, y) > 0.8

    def test_invalid_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=-0.1)

    def test_deterministic_given_seed(self, dataset):
        X, y = dataset
        a = GradientBoostingClassifier(n_estimators=8, random_state=5)
        b = GradientBoostingClassifier(n_estimators=8, random_state=5)
        assert np.array_equal(a.fit(X, y).predict(X),
                              b.fit(X, y).predict(X))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict(np.zeros((1, 2)))


class TestParallelFit:
    """``n_jobs`` must change wall-clock strategy only — every fitted
    artifact (predictions, probabilities, importances) is bit-identical
    to the serial run."""

    def test_forest_parallel_matches_serial(self, dataset):
        X, y = dataset
        serial = RandomForestClassifier(n_estimators=12, random_state=3,
                                        n_jobs=1).fit(X, y)
        parallel = RandomForestClassifier(n_estimators=12, random_state=3,
                                          n_jobs=3).fit(X, y)
        assert np.array_equal(serial.predict(X), parallel.predict(X))
        np.testing.assert_array_equal(serial.predict_proba(X),
                                      parallel.predict_proba(X))
        np.testing.assert_array_equal(serial.feature_importances_,
                                      parallel.feature_importances_)

    def test_forest_n_jobs_all_cores_and_none(self, dataset):
        X, y = dataset
        base = RandomForestClassifier(n_estimators=6, random_state=0)
        allcores = RandomForestClassifier(n_estimators=6, random_state=0,
                                          n_jobs=-1)
        assert np.array_equal(base.fit(X, y).predict(X),
                              allcores.fit(X, y).predict(X))

    def test_forest_more_jobs_than_trees(self, dataset):
        X, y = dataset
        serial = RandomForestClassifier(n_estimators=3, random_state=1,
                                        n_jobs=1).fit(X, y)
        wide = RandomForestClassifier(n_estimators=3, random_state=1,
                                      n_jobs=8).fit(X, y)
        np.testing.assert_array_equal(serial.predict_proba(X),
                                      wide.predict_proba(X))

    def test_forest_rare_class_remap_parallel(self):
        """Bootstraps missing a rare class exercise the column-remap
        path; it must survive the round-trip through worker processes."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = np.zeros(200, dtype=int)
        y[:3] = 1
        serial = RandomForestClassifier(n_estimators=10, random_state=0,
                                        n_jobs=1).fit(X, y)
        parallel = RandomForestClassifier(n_estimators=10, random_state=0,
                                          n_jobs=4).fit(X, y)
        assert serial.predict_proba(X).shape == (200, 2)
        np.testing.assert_array_equal(serial.predict_proba(X),
                                      parallel.predict_proba(X))

    def test_forest_invalid_n_jobs(self):
        for bad in (0, -2, 1.5, True):
            with pytest.raises((TypeError, ValueError)):
                RandomForestClassifier(n_jobs=bad)

    def test_boosting_parallel_matches_serial(self, dataset):
        X, y = dataset
        serial = GradientBoostingClassifier(n_estimators=8, random_state=5,
                                            n_jobs=1).fit(X, y)
        parallel = GradientBoostingClassifier(n_estimators=8,
                                              random_state=5,
                                              n_jobs=3).fit(X, y)
        assert np.array_equal(serial.predict(X), parallel.predict(X))
        np.testing.assert_array_equal(serial.predict_proba(X),
                                      parallel.predict_proba(X))

    def test_boosting_subsample_parallel_matches_serial(self, dataset):
        X, y = dataset
        serial = GradientBoostingClassifier(n_estimators=6, subsample=0.6,
                                            random_state=2,
                                            n_jobs=1).fit(X, y)
        parallel = GradientBoostingClassifier(n_estimators=6,
                                              subsample=0.6,
                                              random_state=2,
                                              n_jobs=2).fit(X, y)
        np.testing.assert_array_equal(serial.predict_proba(X),
                                      parallel.predict_proba(X))
