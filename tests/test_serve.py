"""Unit tests for the serving layer: LRU memo, quantization, the
batched SelectionService, JSONL I/O, and the guard/selector batch
paths it is built on."""

import numpy as np
import pytest

from repro.core.framework import offline_train
from repro.hwmodel import get_cluster
from repro.serve import (
    ACTION_INVALID,
    LRUCache,
    SelectionDecision,
    SelectionQuery,
    SelectionService,
    decisions_to_jsonl,
    queries_from_jsonl,
    quantize_msg_size,
)
from repro.simcluster.machine import Machine
from repro.smpi.guard import (
    ACTION_ERROR,
    ACTION_MODEL,
    GuardedSelector,
    InvalidQueryError,
)
from repro.smpi.heuristics import (
    AlgorithmSelector,
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
)


class TestLRUCache:
    def test_basic_get_put(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b", "missing") == "missing"
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # a becomes most recent
        cache.put("c", 3)       # evicts b
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_refresh_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, not insert
        assert len(cache) == 2 and cache.evictions == 0
        assert cache.get("a") == 10

    @pytest.mark.parametrize("bad", (0, -1, True, 2.5, "4"))
    def test_bad_capacity_rejected(self, bad):
        with pytest.raises(ValueError):
            LRUCache(bad)


class TestQuantize:
    @pytest.mark.parametrize("msg,expected", (
        (1, 1), (2, 2), (3, 4), (1000, 1024), (1024, 1024),
        (1536, 2048), (1100, 1024), (5, 4), (6, 8),
    ))
    def test_snaps_to_nearest_power_of_two(self, msg, expected):
        assert quantize_msg_size(msg) == expected

    @pytest.mark.parametrize("junk", (0, -8, True, False, 2.5, "64",
                                      None))
    def test_junk_passes_through(self, junk):
        assert quantize_msg_size(junk) is junk

    def test_numpy_integers_quantize_like_plain_ints(self):
        """Regression: np.integer message sizes used to fall through
        the junk-passthrough and bypass the memo-key quantization."""
        for msg in (3, 1000, 1536, 2**40 + 7):
            out = quantize_msg_size(np.int64(msg))
            assert out == quantize_msg_size(msg)
            assert type(out) is int

    @pytest.mark.parametrize("msg,expected", (
        # float log2(msg) is exactly *.5 for these, so a float
        # midpoint test (or banker's rounding) snaps them down; the
        # exact integer rule rounds half up.
        (398065729532861, 2**49),
        (199032864766430, 2**47),
        # true geometric midpoints: isqrt(2^(2e+1)) sits below the
        # midpoint, its successor at-or-above.
        (181, 128), (182, 256),
        (46340, 32768), (46341, 65536),
    ))
    def test_midpoints_round_half_up_exactly(self, msg, expected):
        assert quantize_msg_size(msg) == expected


@pytest.fixture(scope="module")
def ray_spec():
    return get_cluster("Ray")


@pytest.fixture()
def service(ray_spec):
    return SelectionService(MvapichDefaultSelector(), ray_spec,
                            cache_size=64)


class TestSelectionService:
    def test_decisions_match_direct_guard(self, ray_spec, service):
        queries = [SelectionQuery("allgather", 2, 4, 4096),
                   SelectionQuery("bcast", 2, 8, 65536),
                   SelectionQuery("alltoall", 1, 8, 128)]
        decisions = service.select_batch(queries)
        guard = GuardedSelector(MvapichDefaultSelector())
        for q, d in zip(queries, decisions):
            machine = Machine(ray_spec, q.nodes, q.ppn)
            expected = guard.select(q.collective, machine,
                                    quantize_msg_size(q.msg_size))
            assert d.algorithm == expected
            assert d.action == ACTION_MODEL
            assert (d.collective, d.nodes, d.ppn, d.msg_size) == \
                (q.collective, q.nodes, q.ppn, q.msg_size)

    def test_memo_hit_on_second_batch(self, service):
        q = SelectionQuery("allgather", 2, 4, 4096)
        first = service.select_batch([q])[0]
        second = service.select_batch([q])[0]
        assert not first.cached and second.cached
        assert second.algorithm == first.algorithm
        assert service.counters["cache_hits"] == 1

    def test_quantized_sizes_share_one_entry(self, service):
        a, b = service.select_batch(
            [SelectionQuery("allgather", 2, 4, 1000),
             SelectionQuery("allgather", 2, 4, 1100)])
        assert not a.cached and b.cached
        assert a.msg_size == 1000 and b.msg_size == 1100
        assert service.counters["deduped"] == 1

    def test_no_quantize_keeps_sizes_distinct(self, ray_spec):
        service = SelectionService(MvapichDefaultSelector(), ray_spec,
                                   quantize=False)
        service.select_batch([SelectionQuery("allgather", 2, 4, 1000),
                              SelectionQuery("allgather", 2, 4, 1100)])
        assert service.counters["cache_misses"] == 2
        assert service.counters["deduped"] == 0

    def test_invalid_queries_never_raise(self, service):
        decisions = service.select_batch(
            [SelectionQuery("nope", 2, 4, 64),
             SelectionQuery("bcast", 0, 4, 64),
             SelectionQuery("bcast", 10**9, 4, 64),
             SelectionQuery("bcast", 2, 4, -1),
             SelectionQuery("bcast", 2, 4, "big")])
        assert all(d.action == ACTION_INVALID for d in decisions)
        assert all(d.algorithm is None for d in decisions)
        assert service.counters["invalid"] == 5

    def test_empty_batch(self, service):
        assert service.select_batch([]) == []
        assert service.counters["queries"] == 0

    def test_eviction_counter_mirrors_cache(self, ray_spec):
        service = SelectionService(MvapichDefaultSelector(), ray_spec,
                                   cache_size=2, quantize=False)
        service.select_batch([SelectionQuery("allgather", 2, 4, m)
                              for m in (64, 128, 256, 512)])
        assert service.counters["evictions"] == 2
        assert service.counters["evictions"] == service.cache.evictions

    def test_single_query_wrapper(self, service):
        decision = service.select(SelectionQuery("bcast", 2, 4, 512))
        assert decision.action == ACTION_MODEL

    def test_wraps_plain_selector_in_guard(self, ray_spec):
        service = SelectionService(MvapichDefaultSelector(), ray_spec)
        assert isinstance(service.guard, GuardedSelector)
        guard = GuardedSelector(OpenMpiDefaultSelector())
        assert SelectionService(guard, ray_spec).guard is guard


class TestJsonl:
    def test_round_trip(self):
        text = ('{"collective":"bcast","nodes":2,"ppn":4,"msg_size":64}\n'
                "\n"
                '{"collective":"allgather","nodes":1,"ppn":8,'
                '"msg_size":1024}\n')
        queries = queries_from_jsonl(text)
        assert queries == [SelectionQuery("bcast", 2, 4, 64),
                           SelectionQuery("allgather", 1, 8, 1024)]

    @pytest.mark.parametrize("bad,excerpt", (
        ("not json", "not valid JSON"),
        ("[1,2]", "expected a JSON object"),
        ('{"collective":"bcast","nodes":2}', "missing key"),
    ))
    def test_broken_lines_raise_with_line_number(self, bad, excerpt):
        good = '{"collective":"bcast","nodes":2,"ppn":4,"msg_size":64}'
        with pytest.raises(ValueError, match=f"line 2.*{excerpt}"):
            queries_from_jsonl(f"{good}\n{bad}\n")

    def test_decisions_jsonl_deterministic(self):
        decisions = [SelectionDecision("bcast", 2, 4, 64, "binomial",
                                       ACTION_MODEL),
                     SelectionDecision("nope", 2, 4, 64, None,
                                       ACTION_INVALID, "unknown")]
        once = decisions_to_jsonl(decisions)
        assert once == decisions_to_jsonl(list(decisions))
        assert once.endswith("\n") and once.count("\n") == 2
        assert '"algorithm":null' in once


class _ExplodingBatchSelector(MvapichDefaultSelector):
    """Scalar path works; the batch path always raises — forces the
    guard's sequential replay."""

    def select_batch(self, queries):
        raise RuntimeError("vectorized path down")


class _CountingSelector(MvapichDefaultSelector):
    def __init__(self):
        self.batch_calls = 0
        self.scalar_calls = 0

    def select(self, collective, machine, msg_size):
        self.scalar_calls += 1
        return super().select(collective, machine, msg_size)

    def select_batch(self, queries):
        self.batch_calls += 1
        return [MvapichDefaultSelector.select(self, *q) for q in queries]


class TestGuardBatch:
    def _queries(self, spec, n=12):
        rng = np.random.default_rng(0)
        out = []
        for _ in range(n):
            nodes = int(rng.integers(1, 3))
            ppn = int(2 ** rng.integers(1, 4))
            msg = int(2 ** rng.integers(4, 20))
            out.append(("allgather", Machine(spec, nodes, ppn), msg))
        return out

    def test_batch_matches_scalar_loop(self, ray_spec):
        queries = self._queries(ray_spec)
        batch_decisions = GuardedSelector(
            MvapichDefaultSelector()).explain_batch(queries)
        scalar_guard = GuardedSelector(MvapichDefaultSelector())
        scalar_decisions = [scalar_guard.explain(*q) for q in queries]
        assert batch_decisions == scalar_decisions

    def test_one_inner_batch_call(self, ray_spec):
        inner = _CountingSelector()
        GuardedSelector(inner).explain_batch(self._queries(ray_spec))
        assert inner.batch_calls == 1 and inner.scalar_calls == 0

    def test_counter_partition_holds(self, ray_spec):
        guard = GuardedSelector(MvapichDefaultSelector())
        guard.explain_batch(self._queries(ray_spec))
        c = guard.counters
        assert c["queries"] == (c["invalid"] + c["served_model"]
                                + c["remapped"] + c["ood_fallback"]
                                + c["breaker_fallback"]
                                + c["error_fallback"])

    def test_failed_batch_replays_scalar(self, ray_spec):
        queries = self._queries(ray_spec)
        guard = GuardedSelector(_ExplodingBatchSelector())
        decisions = guard.explain_batch(queries)
        reference = [GuardedSelector(MvapichDefaultSelector()).explain(*q)
                     for q in queries]
        assert [d.algorithm for d in decisions] == \
            [d.algorithm for d in reference]
        assert all(d.action == ACTION_MODEL for d in decisions)

    def test_malformed_query_raises_like_scalar(self, ray_spec):
        machine = Machine(ray_spec, 2, 4)
        guard = GuardedSelector(MvapichDefaultSelector())
        with pytest.raises(InvalidQueryError):
            guard.explain_batch([("allgather", machine, 64),
                                 ("allgather", machine, -1)])
        # The valid query before the malformed one was still counted.
        assert guard.counters["queries"] == 2
        assert guard.counters["invalid"] == 1

    def test_wrong_length_batch_result_replays(self, ray_spec):
        class ShortBatch(MvapichDefaultSelector):
            def select_batch(self, queries):
                return ["ring"]  # wrong length

        queries = self._queries(ray_spec, n=4)
        decisions = GuardedSelector(ShortBatch()).explain_batch(queries)
        assert len(decisions) == 4
        assert all(d.action == ACTION_MODEL for d in decisions)

    def test_select_batch_returns_names(self, ray_spec):
        queries = self._queries(ray_spec, n=3)
        guard = GuardedSelector(MvapichDefaultSelector())
        assert guard.select_batch(queries) == \
            [d.algorithm for d in guard.explain_batch(queries)]


class TestSelectorBatchDefault:
    def test_base_class_loops_over_select(self, ray_spec):
        selector = OpenMpiDefaultSelector()
        machine = Machine(ray_spec, 2, 8)
        queries = [("bcast", machine, 2 ** e) for e in range(4, 24, 2)]
        assert selector.select_batch(queries) == \
            [selector.select(*q) for q in queries]


@pytest.fixture(scope="module")
def trained_guard(mini_dataset):
    selector = offline_train(mini_dataset, family="rf",
                             collectives=("allgather", "alltoall"))
    return GuardedSelector(selector), selector


class TestPretrainedBatch:
    def test_batch_matches_scalar(self, trained_guard):
        _, selector = trained_guard
        spec = get_cluster("Ray")
        rng = np.random.default_rng(1)
        queries = []
        for _ in range(20):
            machine = Machine(spec, int(rng.integers(1, 3)),
                              int(2 ** rng.integers(1, 4)))
            coll = ("allgather", "alltoall")[int(rng.integers(2))]
            queries.append((coll, machine,
                            int(2 ** rng.integers(4, 18))))
        assert selector.select_batch(queries) == \
            [selector.select(*q) for q in queries]

    def test_missing_model_raises(self, trained_guard):
        _, selector = trained_guard
        machine = Machine(get_cluster("Ray"), 2, 4)
        with pytest.raises(KeyError, match="bcast"):
            selector.select_batch([("bcast", machine, 64)])

    def test_service_over_trained_guard(self, trained_guard):
        guard, _ = trained_guard
        service = SelectionService(guard, get_cluster("Ray"))
        decisions = service.select_batch(
            [SelectionQuery("allgather", 2, 4, 4096),
             SelectionQuery("alltoall", 1, 8, 1 << 20)])
        assert all(d.algorithm is not None for d in decisions)

    def test_guard_error_fallback_still_feasible(self, ray_spec):
        class Exploding(AlgorithmSelector):
            def select(self, collective, machine, msg_size):
                raise RuntimeError("model file corrupt")

        service = SelectionService(Exploding(), ray_spec)
        decision = service.select(SelectionQuery("allgather", 2, 4, 64))
        assert decision.action == ACTION_ERROR
        assert decision.algorithm is not None
