"""Tests for the online-adaptation package: feedback log schema,
Page–Hinkley drift detection, challenger training lineage, the
champion/challenger gate's crash-safe transaction, and the
``pml-mpi adapt`` state machine."""

import json

import pytest

from repro.adapt import (
    FEEDBACK_FORMAT,
    FEEDBACK_VERSION,
    AdaptConfig,
    AdaptationLoop,
    ChampionChallengerGate,
    DriftMonitor,
    FeedbackLog,
    FeedbackRecord,
    PageHinkley,
    graft_champion_models,
    merge_feedback,
    record_from_decision,
    shadow_evaluate,
    sign_test_p,
    train_challenger,
)
from repro.adapt.drift import replay_regret
from repro.adapt.feedback import validate_record
from repro.core.dataset import CollectiveRecord, TuningDataset
from repro.core.resilience import (
    CorruptArtifactError,
    StaleArtifactError,
)
from repro.hwmodel import get_cluster
from repro.obs.telemetry import MetricsRegistry, Tracer, use_telemetry
from repro.simcluster.machine import Machine
from repro.smpi.collectives import base
from repro.smpi.heuristics import AlgorithmSelector


@pytest.fixture
def registry():
    """Fresh ambient telemetry per test, so counter assertions are
    exact rather than deltas against global state."""
    reg = MetricsRegistry()
    with use_telemetry(Tracer(), reg):
        yield reg


class StaticSelector(AlgorithmSelector):
    """Always answers the same algorithm name."""

    def __init__(self, name):
        self.name = name

    def select(self, collective, machine, msg_size):
        return self.name


def _allgather_pair():
    """Two real, non-power-of-two-restricted allgather algorithms."""
    names = [n for n, a in sorted(base.algorithms("allgather").items())
             if not a.requires_power_of_two]
    return names[0], names[1]


def _record(tick=0, *, fast=None, slow=None, executed=None,
            nodes=2, ppn=4, msg_size=1024, collective="allgather",
            cluster="RI", flip=False):
    """One feedback row where *slow* takes twice *fast*'s time (or the
    reverse with ``flip=True``); the slow algorithm was executed unless
    *executed* says otherwise."""
    a, b = _allgather_pair()
    fast = fast if fast is not None else a
    slow = slow if slow is not None else b
    t_fast, t_slow = (2e-5, 1e-5) if flip else (1e-5, 2e-5)
    return FeedbackRecord(
        cluster=cluster, collective=collective, nodes=nodes, ppn=ppn,
        msg_size=msg_size, algorithm=executed or slow,
        times={fast: t_fast, slow: t_slow}, tick=tick)


# ---------------------------------------------------------------------------
# Feedback record schema
# ---------------------------------------------------------------------------

class TestFeedbackRecord:
    def test_oracle_properties_and_regret(self):
        r = FeedbackRecord(cluster="RI", collective="allgather",
                           nodes=2, ppn=4, msg_size=64, algorithm="b",
                           times={"a": 1e-5, "b": 3e-5}, tick=7)
        assert r.best_algorithm == "a"
        assert r.best_time == pytest.approx(1e-5)
        assert r.executed_time == pytest.approx(3e-5)
        assert r.regret() == pytest.approx(2.0)

    def test_optimal_choice_has_zero_regret(self):
        r = FeedbackRecord(cluster="RI", collective="allgather",
                           nodes=2, ppn=4, msg_size=64, algorithm="a",
                           times={"a": 1e-5, "b": 3e-5})
        assert r.regret() == pytest.approx(0.0)

    def test_to_collective_record(self):
        r = _record(tick=3)
        cr = r.to_collective_record()
        assert isinstance(cr, CollectiveRecord)
        assert (cr.cluster, cr.collective, cr.nodes, cr.ppn,
                cr.msg_size) == ("RI", "allgather", 2, 4, 1024)
        assert cr.times == r.times

    def test_round_trips_through_validate(self):
        r = _record(tick=5)
        assert validate_record(r.to_dict()) == r


class TestValidateRecord:
    def _good(self):
        return {"cluster": "RI", "collective": "allgather", "nodes": 2,
                "ppn": 4, "msg_size": 64, "algorithm": "ring",
                "times": {"ring": 1e-5}, "tick": 0}

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(cluster=""),
        lambda d: d.update(collective=3),
        lambda d: d.update(algorithm=None),
        lambda d: d.update(nodes=0),
        lambda d: d.update(nodes=True),       # bools are not ints
        lambda d: d.update(ppn=-1),
        lambda d: d.update(msg_size="64"),
        lambda d: d.update(tick=-1),
        lambda d: d.update(tick=True),
        lambda d: d.update(times={}),
        lambda d: d.update(times=[1e-5]),
        lambda d: d.update(times={"ring": float("nan")}),
        lambda d: d.update(times={"ring": float("inf")}),
        lambda d: d.update(times={"ring": 0.0}),
        lambda d: d.update(times={"ring": -1e-5}),
        lambda d: d.update(times={"ring": True}),
        lambda d: d.update(times={"": 1e-5}),
        lambda d: d.update(algorithm="bruck"),  # executed unmeasured
        lambda d: d.update(surprise=1),         # unknown field
    ])
    def test_rejects_each_corruption(self, mutate):
        data = self._good()
        mutate(data)
        with pytest.raises(CorruptArtifactError):
            validate_record(data)

    def test_rejects_non_dict(self):
        with pytest.raises(CorruptArtifactError):
            validate_record([1, 2, 3])

    def test_tick_defaults_to_zero(self):
        data = self._good()
        del data["tick"]
        assert validate_record(data).tick == 0


class TestRecordFromDecision:
    def test_builds_from_decision_dict(self):
        decision = {"collective": "allgather", "nodes": 2, "ppn": 4,
                    "msg_size": 64, "algorithm": "ring",
                    "action": "served_model", "detail": "",
                    "cached": False}
        r = record_from_decision("RI", decision, {"ring": 2e-5},
                                 tick=9)
        assert r.cluster == "RI"
        assert r.algorithm == "ring"
        assert r.tick == 9

    def test_invalid_decision_rejected(self):
        with pytest.raises(CorruptArtifactError, match="invalid"):
            record_from_decision("RI", {"algorithm": None}, {})


# ---------------------------------------------------------------------------
# FeedbackLog artifact
# ---------------------------------------------------------------------------

class TestFeedbackLog:
    def test_missing_file_is_empty_log(self, tmp_path):
        assert FeedbackLog(tmp_path / "fb.jsonl").load() == []

    def test_append_load_round_trip(self, tmp_path, registry):
        log = FeedbackLog(tmp_path / "fb.jsonl")
        first = [_record(tick=i) for i in range(3)]
        log.append(first)
        log.append([_record(tick=3)])
        loaded = log.load()
        assert loaded == first + [_record(tick=3)]
        assert registry.counters()["adapt.feedback.appended"] == 4
        header = json.loads(
            (tmp_path / "fb.jsonl").read_text().splitlines()[0])
        meta = header["__meta__"]
        assert meta["format"] == FEEDBACK_FORMAT
        assert meta["version"] == FEEDBACK_VERSION
        assert meta["records"] == 4

    def test_window_returns_tail(self, tmp_path):
        log = FeedbackLog(tmp_path / "fb.jsonl")
        log.append([_record(tick=i) for i in range(5)])
        assert [r.tick for r in log.window(2)] == [3, 4]
        assert log.window(0) == []

    def test_garbage_file_is_corrupt(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text("{ not json at all\n")
        with pytest.raises(CorruptArtifactError):
            FeedbackLog(path).load()

    def test_tampered_record_fails_checksum(self, tmp_path):
        log = FeedbackLog(tmp_path / "fb.jsonl")
        log.append([_record(tick=0), _record(tick=1)])
        lines = log.path.read_text().splitlines(keepends=True)
        lines[1] = lines[1].replace('"tick":0', '"tick":7')
        log.path.write_text("".join(lines))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            log.load()

    def test_future_version_is_stale(self, tmp_path):
        log = FeedbackLog(tmp_path / "fb.jsonl")
        log.append([_record()])
        lines = log.path.read_text().splitlines(keepends=True)
        header = json.loads(lines[0])
        header["__meta__"]["version"] = FEEDBACK_VERSION + 1
        lines[0] = json.dumps(header, sort_keys=True,
                              separators=(",", ":")) + "\n"
        log.path.write_text("".join(lines))
        with pytest.raises(StaleArtifactError, match="version"):
            log.load()

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text(json.dumps(
            {"__meta__": {"format": "pml-mpi/trace", "version": 1,
                          "records": 0, "crc32": "crc32:00000000"}})
            + "\n")
        with pytest.raises(CorruptArtifactError, match="format"):
            FeedbackLog(path).load()

    def test_quarantine_on_corrupt_counts_partition(self, tmp_path,
                                                    registry):
        path = tmp_path / "fb.jsonl"
        path.write_text("][\n")
        log = FeedbackLog(path)
        records, moved = log.load_or_quarantine()
        assert records == []
        assert moved is not None and moved.name.endswith(".corrupt")
        assert not path.exists()
        # A healthy reload counts on the other side of the partition.
        log.append([_record()])
        records, moved = log.load_or_quarantine()
        assert len(records) == 1 and moved is None
        c = registry.counters()
        assert c["adapt.feedback.loads"] == 2
        assert c["adapt.feedback.loads"] == \
            c["adapt.feedback.ok"] + c["adapt.feedback.quarantined"]

    def test_append_to_corrupt_log_raises(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(CorruptArtifactError):
            FeedbackLog(path).append([_record()])

    def test_append_auto_stamps_default_ticks(self, tmp_path):
        # A producer that never manages ticks must still produce rows
        # the fence (tick > fence_tick) can see: every default-tick
        # record after the first gets a fresh monotonic tick.
        log = FeedbackLog(tmp_path / "fb.jsonl")
        log.append([_record(), _record(msg_size=2048)])
        assert [r.tick for r in log.load()] == [0, 1]
        log.append([_record(msg_size=4096)])
        assert [r.tick for r in log.load()] == [0, 1, 2]

    def test_append_keeps_explicit_ticks(self, tmp_path):
        log = FeedbackLog(tmp_path / "fb.jsonl")
        log.append([_record(tick=5)])
        log.append([_record(tick=9, msg_size=2048)])
        # ...but a default-tick record on a non-empty log is stamped
        # past the current high-water mark, never left at 0.
        log.append([_record(msg_size=4096)])
        assert [r.tick for r in log.load()] == [5, 9, 10]

    def test_append_blocks_on_held_lock(self, tmp_path):
        from repro.core.resilience import FileLock, LockTimeoutError

        log = FeedbackLog(tmp_path / "fb.jsonl", lock_timeout_s=0.05)
        with FileLock(log.lock_path):
            with pytest.raises(LockTimeoutError):
                log.append([_record()])
        log.append([_record()])  # released lock unblocks the producer
        assert len(log.load()) == 1


# ---------------------------------------------------------------------------
# Page–Hinkley
# ---------------------------------------------------------------------------

class TestPageHinkley:
    def test_stable_stream_never_alarms(self):
        ph = PageHinkley(delta=0.005, threshold=0.5, min_samples=10)
        assert not any(ph.update(0.01) for _ in range(500))

    def test_mean_shift_alarms_and_rearms(self):
        ph = PageHinkley(delta=0.005, threshold=0.5, min_samples=10)
        stream = [0.0] * 50 + [1.0] * 50
        alarms = [i for i, x in enumerate(stream) if ph.update(x)]
        assert alarms
        assert alarms[0] >= 50           # not before the shift
        assert ph.n < 100                # reset re-armed the detector

    def test_deterministic_fold(self):
        stream = [0.0] * 30 + [0.8] * 30 + [0.1] * 30

        def alarms():
            ph = PageHinkley(delta=0.01, threshold=0.3, min_samples=5)
            return [i for i, x in enumerate(stream) if ph.update(x)]

        assert alarms() == alarms()

    def test_min_samples_suppresses_early_alarms(self):
        ph = PageHinkley(delta=0.0, threshold=0.01, min_samples=50)
        assert not any(ph.update(x) for x in [0.0] * 10 + [5.0] * 30)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_samples=0)


# ---------------------------------------------------------------------------
# Regret replay + drift monitor
# ---------------------------------------------------------------------------

class TestReplayRegret:
    def test_measured_choice_scores_exactly(self):
        fast, slow = _allgather_pair()
        spec = get_cluster("RI")
        machines = {(2, 4): Machine(spec, 2, 4)}
        r = _record()
        assert replay_regret(StaticSelector(fast), machines, r) \
            == pytest.approx(0.0)
        assert replay_regret(StaticSelector(slow), machines, r) \
            == pytest.approx(1.0)

    def test_unmeasured_choice_uses_pessimistic_bound(self, registry):
        spec = get_cluster("RI")
        machines = {(2, 4): Machine(spec, 2, 4)}
        reg = replay_regret(StaticSelector("never_measured"),
                            machines, _record())
        assert reg == pytest.approx(1.0)  # worst measured time
        assert registry.counters()["adapt.regret.unmeasured"] == 1


class TestDriftMonitor:
    def test_optimal_champion_is_stable(self, registry):
        fast, _ = _allgather_pair()
        monitor = DriftMonitor(StaticSelector(fast),
                               get_cluster("RI"))
        state = monitor.observe([_record(tick=i) for i in range(40)])
        assert not state.drift
        assert state.regret_model == pytest.approx(0.0)
        c = registry.counters()
        assert c["adapt.drift.windows"] == 1
        assert "adapt.drift.events" not in c

    def test_regret_shift_fires_drift(self, registry):
        fast, _ = _allgather_pair()
        # The fabric flips mid-window: the once-fast algorithm becomes
        # the slow one, so the static champion's regret jumps 0 -> 1.
        rows = [_record(tick=i) for i in range(30)] + \
               [_record(tick=30 + i, flip=True) for i in range(30)]
        monitor = DriftMonitor(StaticSelector(fast),
                               get_cluster("RI"))
        state = monitor.observe(rows)
        assert state.drift
        assert state.drift_at is not None and state.drift_at >= 30
        assert registry.counters()["adapt.drift.events"] == 1
        assert registry.gauge("adapt.drift.state").value == 1.0

    def test_observe_is_deterministic(self):
        fast, _ = _allgather_pair()
        rows = [_record(tick=i, flip=i >= 20) for i in range(40)]

        def run():
            monitor = DriftMonitor(StaticSelector(fast),
                                   get_cluster("RI"))
            return monitor.observe(rows).to_dict()

        assert run() == run()


# ---------------------------------------------------------------------------
# Sign test + shadow evaluation
# ---------------------------------------------------------------------------

class TestSignTest:
    def test_exact_values(self):
        assert sign_test_p(0, 0) == 1.0
        assert sign_test_p(5, 0) == pytest.approx(1 / 32)
        assert sign_test_p(4, 1) == pytest.approx(6 / 32)
        assert sign_test_p(0, 5) == pytest.approx(1.0)
        assert sign_test_p(10, 10) == pytest.approx(
            sum(__import__("math").comb(20, k)
                for k in range(10, 21)) / 2 ** 20)

    def test_more_wins_is_stronger_evidence(self):
        assert sign_test_p(9, 1) < sign_test_p(6, 4)


class TestShadowEvaluate:
    def test_dominant_challenger_promotes(self, registry):
        fast, slow = _allgather_pair()
        rows = [_record(tick=i) for i in range(20)]
        report = shadow_evaluate(StaticSelector(slow),
                                 StaticSelector(fast), rows,
                                 get_cluster("RI"))
        assert report.promote
        assert report.wins == 20 and report.losses == 0
        assert report.champion_regret == pytest.approx(1.0)
        assert report.challenger_regret == pytest.approx(0.0)
        assert report.p_value < 1e-5
        c = registry.counters()
        assert c["adapt.gate.evaluations"] == 1
        assert c["adapt.gate.accepted"] == 1
        # Both replay streams ran behind their own guard namespace.
        assert c["guard.champion.queries"] == 20
        assert c["guard.challenger.queries"] == 20

    def test_identical_selectors_tie_and_reject(self, registry):
        fast, _ = _allgather_pair()
        rows = [_record(tick=i) for i in range(10)]
        report = shadow_evaluate(StaticSelector(fast),
                                 StaticSelector(fast), rows,
                                 get_cluster("RI"))
        assert not report.promote
        assert report.ties == 10
        assert report.p_value == 1.0
        assert registry.counters()["adapt.gate.rejected"] == 1

    def test_empty_holdout_rejects(self, registry):
        fast, slow = _allgather_pair()
        report = shadow_evaluate(StaticSelector(slow),
                                 StaticSelector(fast), [],
                                 get_cluster("RI"))
        assert not report.promote
        assert report.detail == "no held-out rows"

    def test_insufficient_evidence_rejects(self, registry):
        # Two wins is a real improvement but p = 0.25 > alpha.
        fast, slow = _allgather_pair()
        rows = [_record(tick=i) for i in range(2)]
        report = shadow_evaluate(StaticSelector(slow),
                                 StaticSelector(fast), rows,
                                 get_cluster("RI"))
        assert not report.promote
        assert "inconclusive" in report.detail


# ---------------------------------------------------------------------------
# Challenger training: merge + lineage
# ---------------------------------------------------------------------------

class TestMergeFeedback:
    def test_feedback_replaces_matching_cell(self):
        old = CollectiveRecord(cluster="RI", collective="allgather",
                               nodes=2, ppn=4, msg_size=1024,
                               times={"ring": 9e-5})
        base_ds = TuningDataset([old])
        merged = merge_feedback(base_ds, [_record(tick=1)])
        assert len(merged) == 1
        assert merged.records[0].times == _record(tick=1).times

    def test_novel_cells_extend_and_later_ticks_win(self):
        base_ds = TuningDataset([])
        early, late = _record(tick=1), _record(tick=2, flip=True)
        other = _record(tick=3, msg_size=4096)
        merged = merge_feedback(base_ds, [early, late, other])
        assert len(merged) == 2
        by_size = {r.msg_size: r for r in merged.records}
        assert by_size[1024].times == late.times


@pytest.mark.drift
class TestTrainChallenger:
    def test_lineage_metadata_and_feedback_scope(self):
        rows = [_record(tick=t, msg_size=1 << (6 + t)) for t in
                range(1, 6)]
        challenger = train_challenger(
            TuningDataset([]), rows, seed=3,
            params={"n_estimators": 4},
            parent_checksum="crc32:deadbeef")
        assert list(challenger.models) == ["allgather"]
        lineage = challenger.models["allgather"].metadata["lineage"]
        assert lineage["parent_checksum"] == "crc32:deadbeef"
        assert lineage["feedback_rows"] == 5
        assert lineage["base_rows"] == 0
        assert (lineage["tick_lo"], lineage["tick_hi"]) == (1, 5)
        assert lineage["seed"] == 3

    def test_no_feedback_collectives_raises(self):
        with pytest.raises(ValueError, match="no collectives"):
            train_challenger(TuningDataset([]), [])

    def test_graft_preserves_champion_coverage(self, registry):
        # Champion serves two collectives; drift feedback only covers
        # allgather.  The grafted challenger must keep serving bcast
        # with the champion's model, not drop it to the heuristic
        # floor via KeyError.
        bcast_names = sorted(base.algorithm_names("bcast"))
        bcast_rows = [FeedbackRecord(
            cluster="RI", collective="bcast", nodes=2, ppn=4,
            msg_size=1 << (6 + t), algorithm=bcast_names[0],
            times={bcast_names[0]: 1e-5, bcast_names[1]: 2e-5},
            tick=t) for t in range(1, 6)]
        ag_rows = [_record(tick=t, msg_size=1 << (6 + t))
                   for t in range(1, 6)]
        params = {"n_estimators": 4}
        champion = train_challenger(TuningDataset([]),
                                    ag_rows + bcast_rows, params=params)
        assert set(champion.models) == {"allgather", "bcast"}
        challenger = train_challenger(TuningDataset([]), ag_rows,
                                      params=params)
        assert set(challenger.models) == {"allgather"}
        grafted = graft_champion_models(challenger, champion)
        assert set(grafted.models) == {"allgather", "bcast"}
        assert grafted.models["allgather"] is challenger.models[
            "allgather"]
        assert grafted.models["bcast"] is champion.models["bcast"]
        assert registry.counters()["adapt.challengers.grafted"] == 1
        # Full coverage is a no-op (and no spurious counter).
        assert graft_champion_models(champion, challenger) is champion


# ---------------------------------------------------------------------------
# Champion/challenger gate transaction
# ---------------------------------------------------------------------------

class TestGateTransaction:
    def _gate(self, tmp_path, registry):
        serving = tmp_path / "bundle.json"
        serving.write_text("CHAMPION")
        gate = ChampionChallengerGate(serving, tmp_path / "state",
                                      registry=registry)
        return serving, gate

    def test_promote_swaps_and_backs_up(self, tmp_path, registry):
        serving, gate = self._gate(tmp_path, registry)
        staged = tmp_path / "challenger.json"
        staged.write_text("CHALLENGER")
        gate.promote(staged, tick=5)
        assert serving.read_text() == "CHALLENGER"
        assert gate.backup_path.read_text() == "CHAMPION"
        assert not gate.sentinel_path.exists()
        assert not staged.exists()
        assert registry.counters()["adapt.gate.promoted"] == 1

    def test_recover_noop_without_sentinel(self, tmp_path, registry):
        _, gate = self._gate(tmp_path, registry)
        assert gate.recover() is None
        assert "adapt.gate.recovered" not in registry.counters()

    def test_recover_pre_swap_just_clears_sentinel(self, tmp_path,
                                                   registry):
        serving, gate = self._gate(tmp_path, registry)
        gate.state_dir.mkdir(parents=True, exist_ok=True)
        # Sentinel written, but the rename never happened: the serving
        # checksum still differs from the recorded challenger's.
        gate.sentinel_path.write_text(json.dumps(
            {"challenger_checksum": "crc32:eeeeeeee",
             "champion_checksum": "crc32:11111111", "tick": 1}))
        detail = gate.recover()
        assert "pre-swap" in detail
        assert serving.read_text() == "CHAMPION"  # untouched
        assert not gate.sentinel_path.exists()
        assert registry.counters()["adapt.gate.recovered"] == 1

    def test_recover_post_swap_restores_champion(self, tmp_path,
                                                 registry):
        from repro.serve.reload import file_crc32

        serving, gate = self._gate(tmp_path, registry)
        gate.state_dir.mkdir(parents=True, exist_ok=True)
        gate.backup_path.write_text("CHAMPION")
        serving.write_text("CHALLENGER")  # the swap happened...
        gate.sentinel_path.write_text(json.dumps(
            {"challenger_checksum": file_crc32(serving),
             "champion_checksum": "crc32:11111111", "tick": 1}))
        detail = gate.recover()              # ...then the process died
        assert "restored champion" in detail
        assert serving.read_text() == "CHAMPION"
        quarantined = [p for p in tmp_path.iterdir()
                       if ".corrupt" in p.name]
        assert len(quarantined) == 1
        assert quarantined[0].read_text() == "CHALLENGER"
        c = registry.counters()
        assert c["adapt.gate.recovered"] == 1
        assert c["adapt.gate.quarantined"] == 1

    def test_recover_unreadable_sentinel_is_conservative(self,
                                                         tmp_path,
                                                         registry):
        serving, gate = self._gate(tmp_path, registry)
        gate.state_dir.mkdir(parents=True, exist_ok=True)
        gate.backup_path.write_text("CHAMPION")
        serving.write_text("HALF-PROMOTED")
        gate.sentinel_path.write_text("{ torn write")
        gate.recover()
        # Serving differed from backup: quarantine + restore.
        assert serving.read_text() == "CHAMPION"
        assert registry.counters()["adapt.gate.quarantined"] == 1

    def test_demote_quarantines_and_restores(self, tmp_path, registry):
        serving, gate = self._gate(tmp_path, registry)
        gate.state_dir.mkdir(parents=True, exist_ok=True)
        gate.backup_path.write_text("CHAMPION")
        serving.write_text("REGRESSED")
        moved = gate.demote("probation regression")
        assert serving.read_text() == "CHAMPION"
        assert moved.read_text() == "REGRESSED"
        c = registry.counters()
        assert c["adapt.gate.demoted"] == 1
        assert c["adapt.gate.quarantined"] == 1

    def test_demote_without_backup_refuses(self, tmp_path, registry):
        serving, gate = self._gate(tmp_path, registry)
        with pytest.raises(FileNotFoundError, match="no champion"):
            gate.demote("nothing to restore")
        assert serving.read_text() == "CHAMPION"

    def test_promote_falls_back_on_cross_device_rename(
            self, tmp_path, registry, monkeypatch):
        import errno
        import os as os_mod

        serving, gate = self._gate(tmp_path, registry)
        staged = tmp_path / "challenger.json"
        staged.write_text("CHALLENGER")
        real_replace = os_mod.replace

        def exdev_on_swap(src, dst, *a, **kw):
            if str(src) == str(staged) and str(dst) == str(serving):
                raise OSError(errno.EXDEV,
                              "Invalid cross-device link", str(src))
            return real_replace(src, dst, *a, **kw)

        monkeypatch.setattr(os_mod, "replace", exdev_on_swap)
        gate.promote(staged, tick=3)
        assert serving.read_text() == "CHALLENGER"
        assert gate.backup_path.read_text() == "CHAMPION"
        assert not gate.sentinel_path.exists()
        assert not staged.exists()
        assert registry.counters()["adapt.gate.promoted"] == 1


# ---------------------------------------------------------------------------
# AdaptationLoop state machine (no training needed)
# ---------------------------------------------------------------------------

def _loop(tmp_path, **overrides):
    kwargs = dict(cluster="RI", bundle_path=tmp_path / "bundle.json",
                  feedback_path=tmp_path / "fb.jsonl",
                  state_dir=tmp_path / "state")
    kwargs.update(overrides)
    return AdaptationLoop(AdaptConfig(**kwargs))


class TestAdaptConfig:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            AdaptConfig(cluster="RI", bundle_path="b", feedback_path="f",
                        state_dir="s", window=0)
        with pytest.raises(ValueError):
            AdaptConfig(cluster="RI", bundle_path="b", feedback_path="f",
                        state_dir="s", heldout_fraction=1.0)
        with pytest.raises(ValueError):
            AdaptConfig(cluster="RI", bundle_path="b", feedback_path="f",
                        state_dir="s", probation_rows=0)


class TestAdaptationLoopVerdicts:
    def test_no_feedback(self, tmp_path, registry):
        loop = _loop(tmp_path)
        report = loop.run_once()
        assert report.verdict == "no_feedback"
        assert loop.state_path.exists()
        assert loop.decision_log.exists()
        c = registry.counters()
        assert c["adapt.runs"] == 1
        assert c["adapt.verdict.no_feedback"] == 1

    def test_corrupt_feedback_quarantined_loop_survives(self, tmp_path,
                                                        registry):
        loop = _loop(tmp_path)
        loop.feedback.path.write_text("{ not json at all\n")
        report = loop.run_once()
        assert report.verdict == "no_feedback"
        assert report.quarantined is not None
        assert not loop.feedback.path.exists()
        assert registry.counters()["adapt.feedback.quarantined"] == 1

    def test_unreadable_champion_stays_stable(self, tmp_path,
                                              registry):
        loop = _loop(tmp_path)
        (tmp_path / "bundle.json").write_text("{ not a bundle")
        FeedbackLog(loop.feedback.path).append(
            [_record(tick=i) for i in range(5)])
        report = loop.run_once()
        assert report.verdict == "stable"
        assert "unreadable" in report.detail

    def test_probation_waits_for_enough_rows(self, tmp_path, registry):
        loop = _loop(tmp_path, probation_rows=10)
        loop.state_dir.mkdir(parents=True)
        loop.state_path.write_text(json.dumps(
            {"phase": "probation", "fence_tick": -1,
             "baseline_regret": 0.0}))
        FeedbackLog(loop.feedback.path).append(
            [_record(tick=i) for i in range(3)])
        report = loop.run_once()
        assert report.verdict == "probation_wait"
        assert report.phase == "probation"
        # The fence must NOT advance: these rows are still unjudged.
        assert report.fence_tick == -1

    def test_probation_unreadable_bundle_demotes(self, tmp_path,
                                                 registry):
        loop = _loop(tmp_path, probation_rows=2)
        loop.state_dir.mkdir(parents=True)
        loop.state_path.write_text(json.dumps(
            {"phase": "probation", "fence_tick": -1,
             "baseline_regret": 0.0}))
        (tmp_path / "bundle.json").write_text("{ regressed garbage")
        loop.gate.backup_path.write_text("CHAMPION")
        FeedbackLog(loop.feedback.path).append(
            [_record(tick=i) for i in range(3)])
        report = loop.run_once()
        assert report.verdict == "demoted"
        assert report.phase == "stable"
        assert (tmp_path / "bundle.json").read_text() == "CHAMPION"
        assert registry.counters()["adapt.verdict.demoted"] == 1

    def test_probation_missing_backup_resets_without_crashing(
            self, tmp_path, registry):
        # phase=probation but champion.backup.json is gone (quarantined
        # or hand-edited state): run_once must emit a verdict, not let
        # gate.demote's FileNotFoundError kill the --watch sidecar.
        loop = _loop(tmp_path, probation_rows=2)
        loop.state_dir.mkdir(parents=True)
        loop.state_path.write_text(json.dumps(
            {"phase": "probation", "fence_tick": -1,
             "baseline_regret": 0.0}))
        (tmp_path / "bundle.json").write_text("{ regressed garbage")
        FeedbackLog(loop.feedback.path).append(
            [_record(tick=i) for i in range(3)])
        report = loop.run_once()
        assert report.verdict == "demoted"
        assert report.phase == "stable"
        assert report.demoted is None
        assert "backup missing" in report.detail
        # Serving bundle kept: there was nothing to restore from.
        assert (tmp_path / "bundle.json").read_text() \
            == "{ regressed garbage"
        c = registry.counters()
        assert c["adapt.gate.demote_unrestorable"] == 1

    def test_recovery_runs_before_everything_else(self, tmp_path,
                                                  registry):
        loop = _loop(tmp_path)
        (tmp_path / "bundle.json").write_text("HALF-PROMOTED")
        loop.state_dir.mkdir(parents=True)
        loop.gate.backup_path.write_text("CHAMPION")
        loop.gate.sentinel_path.write_text("{ torn")
        report = loop.run_once()
        assert report.verdict == "recovered"
        assert (tmp_path / "bundle.json").read_text() == "CHAMPION"
        assert registry.counters()["adapt.verdict.recovered"] == 1

    def test_runs_partition_over_verdicts(self, tmp_path, registry):
        loop = _loop(tmp_path)
        for _ in range(3):
            loop.run_once()
        c = registry.counters()
        from repro.adapt import VERDICTS
        assert c["adapt.runs"] == 3
        assert sum(c.get(f"adapt.verdict.{v}", 0)
                   for v in VERDICTS) == 3


# ---------------------------------------------------------------------------
# End-to-end: drift -> challenger -> promote -> confirm, deterministic
# ---------------------------------------------------------------------------

@pytest.mark.drift
class TestAdaptationLoopEndToEnd:
    def test_drift_promotes_then_confirms_deterministically(
            self, tmp_path, registry):
        import shutil

        from repro.core.bundle import load_selector
        from repro.core.chaos import (
            DRIFT_CONDITIONS_KW,
            _train_chaos_bundle,
            synthesize_feedback,
        )
        from repro.simcluster.conditions import NetworkConditions

        bundle = tmp_path / "bundle.json"
        _train_chaos_bundle(bundle, seed=0)
        champion_bytes = bundle.read_bytes()
        spec = get_cluster("RI")
        drifted = NetworkConditions(**DRIFT_CONDITIONS_KW)
        records, tick = synthesize_feedback(
            spec, load_selector(bundle), conditions=drifted,
            tick0=0, repeat=3)
        feedback_path = tmp_path / "fb.jsonl"
        FeedbackLog(feedback_path).append(records)
        fb_stage1 = feedback_path.read_bytes()

        def make_loop(root, fb=feedback_path):
            return AdaptationLoop(AdaptConfig(
                cluster="RI", bundle_path=root / "bundle.json",
                feedback_path=fb,
                state_dir=root / "state", window=600,
                model_params={"n_estimators": 8}, seed=0,
                probation_rows=20))

        loop = make_loop(tmp_path)
        promoted = loop.run_once()
        assert promoted.verdict == "promoted", promoted.detail
        assert promoted.phase == "probation"
        assert bundle.read_bytes() != champion_bytes
        assert loop.gate.backup_path.read_bytes() == champion_bytes
        lineage = load_selector(bundle).models[
            records[0].collective].metadata["lineage"]
        assert lineage["parent_checksum"] is not None

        # Probation: feedback measured under the same drifted fabric
        # confirms the challenger (it was trained on exactly that).
        more, _ = synthesize_feedback(
            spec, load_selector(bundle), conditions=drifted,
            tick0=tick, repeat=1)
        FeedbackLog(feedback_path).append(more)
        confirmed = loop.run_once()
        assert confirmed.verdict == "confirmed", confirmed.detail
        assert confirmed.phase == "stable"

        # Determinism: a fresh fold over the same feedback states from
        # the same champion produces a byte-identical decision log and
        # bundle.
        replica = tmp_path / "replica"
        replica.mkdir()
        (replica / "bundle.json").write_bytes(champion_bytes)
        (replica / "fb.jsonl").write_bytes(fb_stage1)
        rloop = make_loop(replica, fb=replica / "fb.jsonl")
        rloop.run_once()
        (replica / "fb.jsonl").write_bytes(feedback_path.read_bytes())
        rloop.run_once()
        assert (replica / "state" / "adapt_decisions.jsonl") \
            .read_bytes() == loop.decision_log.read_bytes()
        assert (replica / "bundle.json").read_bytes() == \
            bundle.read_bytes()
        shutil.rmtree(replica)
