"""Tests for the future-work collectives: MPI_Allreduce and MPI_Bcast.

Same three-layer discipline as the paper's two collectives: exact data
correctness over a shape grid (including property-based sweeps),
schedule/trace consistency, and structural cost expectations.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import (
    ALLREDUCE,
    BCAST,
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    algorithm_names,
    algorithms,
    execute,
)
from repro.smpi.collectives.allreduce import allreduce_expected
from repro.smpi.collectives.base import is_power_of_two
from repro.smpi.collectives.bcast import bcast_expected

SHAPES = [(1, 1), (1, 2), (2, 4), (3, 5), (2, 7), (1, 8), (4, 2),
          (2, 16)]


def _machine(nodes, ppn):
    return Machine(get_cluster("Frontera"), nodes, ppn)


# ---------------------------------------------------------------------
# Correctness
# ---------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(algorithms(ALLREDUCE)))
@pytest.mark.parametrize("nodes,ppn", SHAPES)
def test_allreduce_correct(name, nodes, ppn):
    machine = _machine(nodes, ppn)
    algo = algorithms(ALLREDUCE)[name]
    result = execute(algo, machine, msg_size=256)
    expected = allreduce_expected(machine.p)
    for rank, buf in enumerate(result.buffers):
        assert buf == expected, f"rank {rank} of {name} @ {nodes}x{ppn}"


@pytest.mark.parametrize("name", sorted(algorithms(BCAST)))
@pytest.mark.parametrize("nodes,ppn", SHAPES)
def test_bcast_correct(name, nodes, ppn):
    machine = _machine(nodes, ppn)
    algo = algorithms(BCAST)[name]
    result = execute(algo, machine, msg_size=256)
    expected = bcast_expected(machine.p)
    for rank, buf in enumerate(result.buffers):
        assert buf == expected, f"rank {rank} of {name} @ {nodes}x{ppn}"


@given(nodes=st.integers(1, 4), ppn=st.integers(1, 8),
       msg_log=st.integers(0, 16))
@settings(max_examples=25, deadline=None)
def test_allreduce_property(nodes, ppn, msg_log):
    machine = _machine(nodes, ppn)
    expected = allreduce_expected(machine.p)
    for algo in algorithms(ALLREDUCE).values():
        result = execute(algo, machine, msg_size=2 ** msg_log)
        assert all(buf == expected for buf in result.buffers), algo.name


@given(nodes=st.integers(1, 4), ppn=st.integers(1, 8),
       msg_log=st.integers(0, 16))
@settings(max_examples=25, deadline=None)
def test_bcast_property(nodes, ppn, msg_log):
    machine = _machine(nodes, ppn)
    expected = bcast_expected(machine.p)
    for algo in algorithms(BCAST).values():
        result = execute(algo, machine, msg_size=2 ** msg_log)
        assert all(buf == expected for buf in result.buffers), algo.name


# ---------------------------------------------------------------------
# Schedule consistency
# ---------------------------------------------------------------------

def _trace_counter(trace):
    return Counter((t.src, t.dst, round(t.nbytes)) for t in trace)


def _schedule_counter(schedule):
    counter = Counter()
    for rnd in schedule:
        for s, d, z in zip(rnd.src, rnd.dst, rnd.size):
            counter[(int(s), int(d), round(float(z)))] += rnd.repeat
    return counter


@pytest.mark.parametrize("collective", [ALLREDUCE, BCAST])
@pytest.mark.parametrize("nodes,ppn", [(2, 4), (3, 3), (1, 6), (2, 8)])
@pytest.mark.parametrize("msg", [64, 4096])
def test_schedule_matches_trace(collective, nodes, ppn, msg):
    machine = _machine(nodes, ppn)
    for algo in algorithms(collective).values():
        result = execute(algo, machine, msg, record_trace=True)
        assert _schedule_counter(algo.schedule(machine, msg)) == \
            _trace_counter(result.trace), algo.name


# ---------------------------------------------------------------------
# Structural expectations
# ---------------------------------------------------------------------

def test_label_spaces():
    assert algorithm_names(ALLREDUCE) == (
        "rabenseifner", "recursive_doubling", "reduce_bcast",
        "ring_rsag")
    assert algorithm_names(BCAST) == (
        "binomial", "ring_pipelined", "scatter_allgather")


def test_ring_rsag_volume_bandwidth_optimal():
    machine = _machine(2, 8)
    m = 16 * 1024
    sched = algorithms(ALLREDUCE)["ring_rsag"].schedule(machine, m)
    total = sum(r.total_bytes for r in sched)
    p = machine.p
    # 2*(p-1)*m/p per rank, p ranks.
    assert total == pytest.approx(2 * (p - 1) * m, rel=0.01)


def test_rd_allreduce_volume_exceeds_ring_at_large_m():
    machine = _machine(2, 8)
    m = 64 * 1024
    vol = lambda n: sum(r.total_bytes for r in
                        algorithms(ALLREDUCE)[n].schedule(machine, m))
    assert vol("recursive_doubling") > vol("ring_rsag")


def test_allreduce_crossover_rd_small_ring_large():
    machine = _machine(4, 8)
    rd = algorithms(ALLREDUCE)["recursive_doubling"]
    ring = algorithms(ALLREDUCE)["ring_rsag"]
    assert rd.estimate(machine, 8) < ring.estimate(machine, 8)
    assert ring.estimate(machine, 1 << 20) < rd.estimate(machine, 1 << 20)


def test_bcast_crossover_binomial_small_pipeline_large():
    machine = _machine(4, 8)
    binom = algorithms(BCAST)["binomial"]
    sag = algorithms(BCAST)["scatter_allgather"]
    assert binom.estimate(machine, 8) < sag.estimate(machine, 8)
    assert sag.estimate(machine, 1 << 20) < binom.estimate(machine, 1 << 20)


def test_rabenseifner_non_pow2_falls_back():
    machine = _machine(3, 3)
    assert not is_power_of_two(machine.p)
    rab = algorithms(ALLREDUCE)["rabenseifner"]
    ring = algorithms(ALLREDUCE)["ring_rsag"]
    assert rab.estimate(machine, 4096) == ring.estimate(machine, 4096)


def test_heuristics_cover_new_collectives():
    machine = _machine(2, 8)
    for sel in (MvapichDefaultSelector(), OpenMpiDefaultSelector()):
        for coll in (ALLREDUCE, BCAST):
            for msg in (8, 4096, 1 << 20):
                assert sel.select(coll, machine, msg) in \
                    algorithm_names(coll)

def test_mvapich_allreduce_regimes():
    machine = _machine(2, 8)
    sel = MvapichDefaultSelector()
    assert sel.select(ALLREDUCE, machine, 64) == "recursive_doubling"
    assert sel.select(ALLREDUCE, machine, 1 << 20) == "rabenseifner"
    odd = _machine(3, 5)
    assert sel.select(ALLREDUCE, odd, 1 << 20) == "ring_rsag"
