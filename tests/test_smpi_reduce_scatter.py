"""Tests for the MPI_Reduce_scatter_block extension."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import (
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    algorithm_names,
    algorithms,
    execute,
)
from repro.smpi.collectives.base import REDUCE_SCATTER, is_power_of_two
from repro.smpi.collectives.reduce_scatter import reduce_scatter_expected


def _machine(nodes, ppn):
    return Machine(get_cluster("Frontera"), nodes, ppn)


@pytest.mark.parametrize("name", sorted(algorithms(REDUCE_SCATTER)))
@pytest.mark.parametrize("nodes,ppn", [(1, 1), (2, 4), (3, 3), (1, 8),
                                       (2, 7), (4, 2)])
def test_correct(name, nodes, ppn):
    machine = _machine(nodes, ppn)
    algo = algorithms(REDUCE_SCATTER)[name]
    result = execute(algo, machine, 128)
    for rank in range(machine.p):
        assert result.buffers[rank] == \
            reduce_scatter_expected(rank, machine.p), \
            f"{name} @ {nodes}x{ppn} rank {rank}"


@given(nodes=st.integers(1, 4), ppn=st.integers(1, 8),
       msg_log=st.integers(0, 14))
@settings(max_examples=20, deadline=None)
def test_property_all_algorithms(nodes, ppn, msg_log):
    machine = _machine(nodes, ppn)
    for algo in algorithms(REDUCE_SCATTER).values():
        result = execute(algo, machine, 2 ** msg_log)
        assert all(result.buffers[r] ==
                   reduce_scatter_expected(r, machine.p)
                   for r in range(machine.p)), algo.name


@pytest.mark.parametrize("nodes,ppn", [(2, 4), (3, 3), (2, 8)])
@pytest.mark.parametrize("msg", [64, 8192])
def test_schedule_matches_trace(nodes, ppn, msg):
    machine = _machine(nodes, ppn)
    for algo in algorithms(REDUCE_SCATTER).values():
        result = execute(algo, machine, msg, record_trace=True)
        trace = Counter((t.src, t.dst, round(t.nbytes))
                        for t in result.trace)
        sched = Counter()
        for rnd in algo.schedule(machine, msg):
            for s, d, z in zip(rnd.src, rnd.dst, rnd.size):
                sched[(int(s), int(d), round(float(z)))] += rnd.repeat
        assert sched == trace, algo.name


def test_label_space():
    assert algorithm_names(REDUCE_SCATTER) == (
        "pairwise", "recursive_halving", "reduce_scatterv")


def test_recursive_halving_volume_beats_reduce_scatterv():
    """Halving moves ~m(p-1) total; reduce+scatter moves ~2pm."""
    machine = _machine(2, 8)
    msg = 8192
    vol = lambda n: sum(
        r.total_bytes for r in
        algorithms(REDUCE_SCATTER)[n].schedule(machine, msg))
    assert vol("recursive_halving") < vol("reduce_scatterv")


def test_halving_falls_back_non_pow2():
    machine = _machine(3, 5)
    assert not is_power_of_two(machine.p)
    rh = algorithms(REDUCE_SCATTER)["recursive_halving"]
    pw = algorithms(REDUCE_SCATTER)["pairwise"]
    assert rh.estimate(machine, 1024) == pw.estimate(machine, 1024)


def test_heuristics_cover_reduce_scatter():
    machine = _machine(2, 8)
    for sel in (MvapichDefaultSelector(), OpenMpiDefaultSelector()):
        for msg in (4, 4096, 1 << 20):
            assert sel.select(REDUCE_SCATTER, machine, msg) in \
                algorithm_names(REDUCE_SCATTER)


def test_crossover_scatterv_small_halving_large():
    machine = _machine(4, 8)
    rsv = algorithms(REDUCE_SCATTER)["reduce_scatterv"]
    rh = algorithms(REDUCE_SCATTER)["recursive_halving"]
    assert rh.estimate(machine, 1 << 18) < rsv.estimate(machine, 1 << 18)
