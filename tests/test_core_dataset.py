"""Tests for dataset collection, records, and (de)serialization."""

import numpy as np
import pytest

from repro.core.dataset import (
    CollectiveRecord,
    TuningDataset,
    benchmark_config,
    collect_dataset,
    feasible_configs,
)
from repro.hwmodel import get_cluster
from repro.smpi import algorithm_names


class TestRecord:
    def test_label_is_fastest(self):
        r = CollectiveRecord("X", "allgather", 2, 4, 64,
                             {"ring": 2.0, "bruck": 1.0,
                              "recursive_doubling": 3.0})
        assert r.label == "bruck"
        assert r.best_time == 1.0

    def test_benchmark_config_covers_all_algorithms(self):
        spec = get_cluster("RI")
        rec = benchmark_config(spec, "alltoall", 2, 4, 256)
        assert set(rec.times) == set(algorithm_names("alltoall"))
        assert all(t > 0 for t in rec.times.values())
        assert rec.label in rec.times

    def test_measurements_deterministic(self):
        spec = get_cluster("RI")
        a = benchmark_config(spec, "allgather", 2, 4, 1024)
        b = benchmark_config(spec, "allgather", 2, 4, 1024)
        assert a.times == b.times


class TestFeasibleConfigs:
    def test_excludes_single_rank(self):
        spec = get_cluster("RI2")  # node_counts include 1, ppn include 1
        configs = feasible_configs(spec, "allgather")
        assert all(n * p >= 2 for n, p, _ in configs)

    def test_memory_filter_drops_huge_alltoall(self):
        # Catalyst has 32 GiB nodes and 48 PPN; large alltoalls at high
        # rank counts cannot fit.
        spec = get_cluster("Catalyst")
        full_grid = sum(1 for n in spec.node_counts
                        for p in spec.ppn_values
                        for _ in spec.msg_sizes if n * p >= 2)
        configs = feasible_configs(spec, "alltoall")
        assert len(configs) < full_grid

    def test_ri_grid_count(self):
        # RI: 1 node setting x 2 ppn x 21 sizes, nothing filtered.
        assert len(feasible_configs(get_cluster("RI"), "allgather")) == 42


class TestTuningDataset:
    def test_mini_contents(self, mini_dataset):
        assert len(mini_dataset) > 500
        assert set(mini_dataset.clusters()) == {"RI", "Ray",
                                                "Frontera RTX"}
        counts = mini_dataset.counts_by_cluster()
        assert counts["RI"] == 84  # 42 per collective

    def test_filter_by_collective(self, mini_dataset):
        ag = mini_dataset.filter(collective="allgather")
        assert len(ag) > 0
        assert all(r.collective == "allgather" for r in ag.records)

    def test_filter_by_cluster(self, mini_dataset):
        sub = mini_dataset.filter(clusters={"RI"})
        assert sub.clusters() == ("RI",)

    def test_filter_by_nodes(self, mini_dataset):
        sub = mini_dataset.filter(min_nodes=2, max_nodes=4)
        nodes = {r.nodes for r in sub.records}
        assert nodes <= {2, 4} and nodes

    def test_feature_matrix_shape_and_labels(self, mini_dataset):
        X = mini_dataset.feature_matrix()
        y = mini_dataset.labels()
        assert X.shape == (len(mini_dataset), 14)
        assert len(y) == len(mini_dataset)
        assert np.all(X[:, 2] >= 1)  # msg sizes

    def test_label_distribution_sums(self, mini_dataset):
        dist = mini_dataset.label_distribution()
        assert sum(dist.values()) == len(mini_dataset)

    def test_save_load_roundtrip(self, mini_dataset, tmp_path):
        path = mini_dataset.save(tmp_path / "ds.jsonl.gz")
        loaded = TuningDataset.load(path)
        assert len(loaded) == len(mini_dataset)
        assert loaded.records[0] == mini_dataset.records[0]
        assert loaded.records[-1].times == mini_dataset.records[-1].times

    def test_cache_hit(self, tmp_path):
        clusters = [get_cluster("RI")]
        a = collect_dataset(clusters=clusters, cache_dir=tmp_path)
        files = list(tmp_path.glob("*.jsonl.gz"))
        assert len(files) == 1
        b = collect_dataset(clusters=clusters, cache_dir=tmp_path)
        assert [r.times for r in a.records] == \
            [r.times for r in b.records]

    def test_parallel_collection_matches_serial(self, tmp_path):
        clusters = [get_cluster("RI"), get_cluster("Ray")]
        serial = collect_dataset(clusters=clusters, use_cache=False)
        parallel = collect_dataset(clusters=clusters, use_cache=False,
                                   workers=2)
        assert len(serial) == len(parallel)
        assert [r.times for r in serial.records] == \
            [r.times for r in parallel.records]

    def test_hardware_features_constant_within_cluster(self, mini_dataset):
        X = mini_dataset.feature_matrix()
        for cname in mini_dataset.clusters():
            rows = [i for i, r in enumerate(mini_dataset.records)
                    if r.cluster == cname]
            hw = X[rows, 3:]
            assert np.allclose(hw, hw[0])
