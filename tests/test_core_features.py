"""Tests for feature assembly and top-k selection."""

import numpy as np
import pytest

from repro.core.features import (
    ALL_FEATURE_NAMES,
    MPI_FEATURE_NAMES,
    feature_indices,
    feature_matrix,
    feature_vector,
    select_top_k,
)
from repro.hwmodel import get_cluster


class TestFeatureVector:
    def test_fourteen_features(self):
        assert len(ALL_FEATURE_NAMES) == 14
        assert ALL_FEATURE_NAMES[:3] == MPI_FEATURE_NAMES

    def test_vector_contents(self):
        spec = get_cluster("Frontera")
        v = feature_vector(spec, nodes=4, ppn=28, msg_size=1024)
        assert v.shape == (14,)
        assert v[0] == 4 and v[1] == 28 and v[2] == 1024
        idx = ALL_FEATURE_NAMES.index("cpu_max_clock_ghz")
        assert v[idx] == pytest.approx(4.0)

    def test_matrix_matches_vectors(self):
        rows = [(get_cluster("RI"), 2, 4, 64),
                (get_cluster("Sierra"), 8, 16, 4096)]
        mat = feature_matrix(rows)
        assert mat.shape == (2, 14)
        for i, (spec, n, p, m) in enumerate(rows):
            np.testing.assert_allclose(mat[i], feature_vector(spec, n, p, m))

    def test_feature_indices(self):
        idx = feature_indices(("msg_size", "l3_cache_mib"))
        assert ALL_FEATURE_NAMES[idx[0]] == "msg_size"
        assert ALL_FEATURE_NAMES[idx[1]] == "l3_cache_mib"

    def test_unknown_feature_raises(self):
        with pytest.raises(KeyError, match="unknown feature"):
            feature_indices(("bogus",))

    def test_cache_keys_on_spec_identity_not_name(self):
        """Regression: the hardware-row cache was keyed on spec.name,
        so two specs sharing a name aliased each other's hardware
        features.  Identity keying must keep them apart."""
        import dataclasses

        ri = get_cluster("RI")
        impostor = dataclasses.replace(get_cluster("Sierra"), name="RI")
        # Warm the cache with the real RI first, then ask for the
        # impostor under the same name.
        mat = feature_matrix([(ri, 2, 4, 64), (impostor, 2, 4, 64)])
        np.testing.assert_allclose(mat[0], feature_vector(ri, 2, 4, 64))
        np.testing.assert_allclose(
            mat[1], feature_vector(impostor, 2, 4, 64))
        # The two rows genuinely differ in their hardware features.
        assert not np.allclose(mat[0], mat[1])

    def test_feature_block_matches_matrix(self):
        from repro.core.features import feature_block

        spec = get_cluster("RI")
        nodes = np.array([1, 2, 2], dtype=np.int64)
        ppn = np.array([4, 8, 16], dtype=np.int64)
        msg = np.array([64, 1024, 2**20], dtype=np.int64)
        blk = feature_block(spec, nodes, ppn, msg)
        rows = [(spec, int(n), int(p), int(m))
                for n, p, m in zip(nodes, ppn, msg)]
        np.testing.assert_allclose(blk, feature_matrix(rows))


class TestTopK:
    def test_selects_highest(self):
        imp = np.zeros(14)
        imp[2] = 0.5   # msg_size
        imp[4] = 0.3   # l3 (index 4 = cpu_max_clock? order check below)
        imp[0] = 0.2
        top = select_top_k(imp, k=3)
        assert top[0] == ALL_FEATURE_NAMES[2]
        assert top[1] == ALL_FEATURE_NAMES[4]
        assert top[2] == ALL_FEATURE_NAMES[0]

    def test_tie_break_is_canonical_order(self):
        imp = np.ones(14)
        top = select_top_k(imp, k=5)
        assert top == ALL_FEATURE_NAMES[:5]

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            select_top_k(np.ones(14), k=0)
        with pytest.raises(ValueError):
            select_top_k(np.ones(14), k=15)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            select_top_k(np.ones(5))
