"""Tests for the three train/test split methodologies."""

import numpy as np
import pytest

from repro.core.splits import (
    cluster_split,
    node_split,
    random_split,
    split_dataset,
)


class TestRandomSplit:
    def test_disjoint_and_complete(self, mini_dataset):
        train, test = random_split(mini_dataset, 0.3, seed=0)
        assert len(set(train) & set(test)) == 0
        assert len(train) + len(test) == len(mini_dataset)

    def test_ratio_approximate(self, mini_dataset):
        train, test = random_split(mini_dataset, 0.3, seed=0)
        assert len(test) / len(mini_dataset) == pytest.approx(0.3,
                                                              abs=0.05)

    def test_stratified_by_label(self, mini_dataset):
        _, test = random_split(mini_dataset, 0.3, seed=0)
        labels = mini_dataset.labels()
        full = {k: v / len(labels) for k, v in
                zip(*np.unique(labels, return_counts=True))}
        test_labels = labels[test]
        for label, frac in full.items():
            if frac * len(mini_dataset) < 10:
                continue  # tiny classes can deviate
            got = np.mean(test_labels == label)
            assert got == pytest.approx(frac, abs=0.07)

    def test_seed_determinism(self, mini_dataset):
        a = random_split(mini_dataset, 0.3, seed=5)
        b = random_split(mini_dataset, 0.3, seed=5)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_invalid_test_size(self, mini_dataset):
        with pytest.raises(ValueError):
            random_split(mini_dataset, 0.0)


class TestClusterSplit:
    def test_no_test_cluster_in_train(self, mini_dataset):
        train, test = cluster_split(mini_dataset, test_clusters=("RI",))
        train_clusters = {mini_dataset.records[i].cluster for i in train}
        test_clusters = {mini_dataset.records[i].cluster for i in test}
        assert "RI" not in train_clusters
        assert test_clusters == {"RI"}

    def test_unknown_cluster_raises(self, mini_dataset):
        with pytest.raises(ValueError, match="absent"):
            cluster_split(mini_dataset, test_clusters=("Sierra",))

    def test_all_clusters_held_out_raises(self, mini_dataset):
        with pytest.raises(ValueError, match="empty"):
            cluster_split(mini_dataset,
                          test_clusters=("RI", "Ray", "Frontera RTX"))


class TestNodeSplit:
    def test_threshold_respected(self, mini_dataset):
        train, test = node_split(mini_dataset, max_train_nodes=4)
        assert all(mini_dataset.records[i].nodes <= 4 for i in train)
        assert all(mini_dataset.records[i].nodes > 4 for i in test)

    def test_empty_side_raises(self, mini_dataset):
        with pytest.raises(ValueError, match="empty"):
            node_split(mini_dataset, max_train_nodes=1000)


class TestSplitDataset:
    def test_returns_datasets(self, mini_dataset):
        train, test = split_dataset(mini_dataset, "random", seed=1)
        assert len(train) + len(test) == len(mini_dataset)

    def test_unknown_method(self, mini_dataset):
        with pytest.raises(ValueError, match="unknown split"):
            split_dataset(mini_dataset, "bogus")


class TestRandomSplitNonEmptyGuarantee:
    """Regression: per-class ``round(n * test_size)`` could collapse to
    0 (or n) for every class, returning an empty side."""

    @staticmethod
    def _tiny(n):
        from repro.core.dataset import CollectiveRecord, TuningDataset

        records = [
            CollectiveRecord("RI", "allgather", 2, 4, 2 ** i,
                             {"ring": 1.0, "bruck": 2.0})
            for i in range(n)
        ]
        return TuningDataset(records)

    def test_tiny_test_size_keeps_test_nonempty(self):
        ds = self._tiny(3)
        train, test = random_split(ds, test_size=0.05, seed=0)
        assert len(test) >= 1 and len(train) >= 1
        assert sorted([*train.tolist(), *test.tolist()]) == [0, 1, 2]

    def test_huge_test_size_keeps_train_nonempty(self):
        ds = self._tiny(2)
        train, test = random_split(ds, test_size=0.95, seed=0)
        assert len(train) == 1 and len(test) == 1

    def test_single_record_raises(self):
        ds = self._tiny(1)
        with pytest.raises(ValueError, match="non-empty"):
            random_split(ds, test_size=0.3)
