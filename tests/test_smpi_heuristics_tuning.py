"""Tests for default heuristics, tuning tables, and selectors."""

import json

import numpy as np
import pytest

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import (
    FixedSelector,
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    OracleSelector,
    RandomSelector,
    TableSelector,
    TuningTable,
    algorithm_names,
    build_oracle_table,
    measured_time,
)


@pytest.fixture(scope="module")
def machine():
    return Machine(get_cluster("Frontera"), 2, 8)


@pytest.fixture(scope="module")
def machine_odd():
    return Machine(get_cluster("Frontera"), 3, 5)


class TestMvapichDefaults:
    def test_allgather_thresholds(self, machine):
        sel = MvapichDefaultSelector()
        # p=16 (power of two), total < 512K -> recursive doubling.
        assert sel.select("allgather", machine, 1024) == \
            "recursive_doubling"
        # Large total -> ring.
        assert sel.select("allgather", machine, 1 << 20) == "ring"

    def test_allgather_non_pow2_short_uses_bruck(self, machine_odd):
        sel = MvapichDefaultSelector()
        assert sel.select("allgather", machine_odd, 64) == "bruck"

    def test_alltoall_three_regimes(self, machine):
        sel = MvapichDefaultSelector()
        assert sel.select("alltoall", machine, 64) == "bruck"
        assert sel.select("alltoall", machine, 4096) == "scatter_dest"
        assert sel.select("alltoall", machine, 1 << 20) == "pairwise"

    def test_alltoall_small_comm_skips_bruck(self):
        m = Machine(get_cluster("Frontera"), 2, 2)  # p=4 < 8
        assert MvapichDefaultSelector().select("alltoall", m, 64) == \
            "scatter_dest"

    def test_unknown_collective(self, machine):
        with pytest.raises(ValueError):
            MvapichDefaultSelector().select("gatherv", machine, 8)

    def test_hardware_oblivious(self, machine):
        """Defaults must pick the same algorithm on any cluster with the
        same job shape — the failure mode the paper exploits."""
        sel = MvapichDefaultSelector()
        other = Machine(get_cluster("MRI"), 2, 8)
        for msg in (16, 4096, 1 << 19):
            for coll in ("allgather", "alltoall"):
                assert sel.select(coll, machine, msg) == \
                    sel.select(coll, other, msg)


class TestOpenMpiDefaults:
    def test_differs_from_mvapich_somewhere(self, machine):
        mv, om = MvapichDefaultSelector(), OpenMpiDefaultSelector()
        diffs = 0
        for coll in ("allgather", "alltoall"):
            for msg in (1, 64, 512, 4096, 1 << 15, 1 << 20):
                if mv.select(coll, machine, msg) != \
                        om.select(coll, machine, msg):
                    diffs += 1
        assert diffs > 0

    def test_valid_names(self, machine):
        sel = OpenMpiDefaultSelector()
        for coll in ("allgather", "alltoall"):
            for msg in (1, 100, 10_000, 1 << 20):
                assert sel.select(coll, machine, msg) in \
                    algorithm_names(coll)


class TestRandomAndFixed:
    def test_random_deterministic_per_config(self, machine):
        a = RandomSelector(0).select("alltoall", machine, 64)
        b = RandomSelector(0).select("alltoall", machine, 64)
        assert a == b

    def test_random_varies_across_configs(self, machine):
        sel = RandomSelector(0)
        picks = {sel.select("alltoall", machine, 2**k)
                 for k in range(12)}
        assert len(picks) > 1

    def test_random_seed_changes_choices(self, machine):
        p1 = [RandomSelector(1).select("allgather", machine, 2**k)
              for k in range(10)]
        p2 = [RandomSelector(2).select("allgather", machine, 2**k)
              for k in range(10)]
        assert p1 != p2

    def test_fixed_selector(self, machine):
        sel = FixedSelector("allgather", "ring")
        assert sel.select("allgather", machine, 5) == "ring"
        with pytest.raises(ValueError):
            sel.select("alltoall", machine, 5)

    def test_fixed_validates_name(self):
        with pytest.raises(KeyError):
            FixedSelector("allgather", "nope")


class TestOracle:
    def test_oracle_is_argmin(self, machine):
        sel = OracleSelector()
        for msg in (16, 16384):
            pick = sel.select("alltoall", machine, msg)
            times = {n: measured_time(machine, "alltoall", n, msg)
                     for n in algorithm_names("alltoall")}
            assert pick == min(times, key=times.__getitem__)

    def test_measured_time_noise_properties(self, machine):
        base = measured_time(machine, "allgather", "ring", 1024,
                             noise=False)
        noisy = measured_time(machine, "allgather", "ring", 1024)
        assert noisy != base
        assert abs(noisy / base - 1.0) < 0.1
        # Determinism.
        assert noisy == measured_time(machine, "allgather", "ring", 1024)


class TestTuningTable:
    def test_breakpoint_lookup(self):
        table = TuningTable(cluster="X")
        table.add("allgather", 2, 8, 1024, "recursive_doubling")
        table.add("allgather", 2, 8, 1 << 20, "ring")
        assert table.lookup("allgather", 2, 8, 100) == \
            "recursive_doubling"
        assert table.lookup("allgather", 2, 8, 4096) == "ring"
        # Beyond the last breakpoint -> last entry.
        assert table.lookup("allgather", 2, 8, 1 << 22) == "ring"

    def test_nearest_config_fallback(self):
        table = TuningTable(cluster="X")
        table.add("alltoall", 2, 8, 1 << 20, "pairwise")
        table.add("alltoall", 16, 64, 1 << 20, "bruck")
        assert table.lookup("alltoall", 2, 4, 10) == "pairwise"
        assert table.lookup("alltoall", 8, 64, 10) == "bruck"

    def test_missing_collective_raises(self):
        table = TuningTable(cluster="X")
        with pytest.raises(KeyError):
            table.lookup("allgather", 2, 8, 10)

    def test_invalid_algorithm_rejected(self):
        table = TuningTable(cluster="X")
        with pytest.raises(KeyError):
            table.add("allgather", 2, 8, 10, "quantum")

    def test_json_roundtrip(self, tmp_path):
        table = TuningTable(cluster="Y")
        table.add("allgather", 4, 16, 512, "bruck")
        table.add("alltoall", 4, 16, 512, "pairwise")
        path = table.save(tmp_path / "t.json")
        loaded = TuningTable.load(path)
        assert loaded.cluster == "Y"
        assert loaded.lookup("allgather", 4, 16, 100) == "bruck"
        payload = json.loads(path.read_text())
        assert "collectives" in payload

    def test_table_selector_cluster_check(self):
        table = TuningTable(cluster="Frontera")
        table.add("allgather", 2, 8, 1 << 21, "ring")
        sel = TableSelector(table)
        wrong = Machine(get_cluster("MRI"), 2, 8)
        with pytest.raises(ValueError, match="built for"):
            sel.select("allgather", wrong, 64)

    def test_build_oracle_table(self):
        spec = get_cluster("RI")
        table = build_oracle_table("RI", "allgather",
                                   node_counts=(2,), ppn_values=(4,),
                                   msg_sizes=(16, 1 << 18))
        machine = Machine(spec, 2, 4)
        oracle = OracleSelector()
        assert table.lookup("allgather", 2, 4, 16) == \
            oracle.select("allgather", machine, 16)


class TestTuningTableHotPath:
    """The O(1)-lookup rewrite: dedup, tie-breaks, invalidation."""

    def test_duplicate_add_replaces_last_write_wins(self):
        table = TuningTable(cluster="X")
        table.add("allgather", 2, 8, 1024, "ring")
        table.add("allgather", 2, 8, 1024, "bruck")
        assert table.lookup("allgather", 2, 8, 100) == "bruck"
        # The stored list holds exactly one breakpoint at that size.
        assert table.entries["allgather"][(2, 8)] == [(1024, "bruck")]
        table.validate()  # replacement leaves no conflicting twin

    def test_duplicate_replace_after_lookup(self):
        """Replacement must invalidate the frozen index."""
        table = TuningTable(cluster="X")
        table.add("allgather", 2, 8, 1024, "ring")
        assert table.lookup("allgather", 2, 8, 100) == "ring"
        table.add("allgather", 2, 8, 1024, "bruck")
        assert table.lookup("allgather", 2, 8, 100) == "bruck"

    def test_external_entries_mutation_invalidates(self):
        table = TuningTable(cluster="X")
        table.add("allgather", 2, 8, 1024, "ring")
        assert table.lookup("allgather", 2, 8, 100) == "ring"
        table.entries["allgather"][(2, 8)] = [(1024, "bruck")]
        assert table.lookup("allgather", 2, 8, 100) == "bruck"

    def test_validate_rejects_conflicting_duplicates(self):
        from repro.core.resilience import CorruptArtifactError

        table = TuningTable(cluster="X")
        table.entries["allgather"] = {
            (2, 8): [(1024, "ring"), (1024, "bruck")]}
        with pytest.raises(CorruptArtifactError,
                           match="conflicting duplicate"):
            table.validate()

    def test_from_json_rejects_conflicting_duplicates(self):
        from repro.core.resilience import CorruptArtifactError

        payload = {
            "cluster": "X",
            "collectives": {
                "allgather": {
                    "2x8": [[1024, "ring"], [1024, "bruck"]],
                },
            },
        }
        with pytest.raises(CorruptArtifactError,
                           match="conflicting duplicate"):
            TuningTable.from_json(json.dumps(payload))

    def test_from_json_accepts_agreeing_duplicates(self):
        payload = {
            "cluster": "X",
            "collectives": {
                "allgather": {
                    "2x8": [[1024, "ring"], [1024, "ring"]],
                },
            },
        }
        table = TuningTable.from_json(json.dumps(payload))
        assert table.lookup("allgather", 2, 8, 100) == "ring"

    def test_nearest_config_tie_break_is_smallest(self):
        """(4, 4) is log-equidistant from (2, 8) and (8, 2); the
        smallest (nodes, ppn) must win regardless of insert order."""
        for order in [((2, 8, "ring"), (8, 2, "bruck")),
                      ((8, 2, "bruck"), (2, 8, "ring"))]:
            table = TuningTable(cluster="X")
            for nodes, ppn, algo in order:
                table.add("allgather", nodes, ppn, 1 << 20, algo)
            assert table.lookup("allgather", 4, 4, 10) == "ring"

    def test_to_json_sorted_and_deduped(self):
        table = TuningTable(cluster="X")
        table.add("allgather", 2, 8, 1 << 20, "ring")
        table.add("allgather", 2, 8, 64, "bruck")
        table.add("allgather", 2, 8, 64, "recursive_doubling")
        payload = json.loads(table.to_json())
        bps = payload["collectives"]["allgather"]["2x8"]
        assert bps == [[64, "recursive_doubling"], [1 << 20, "ring"]]

    def test_lookup_matches_reference_scan(self):
        """Bisect lookup agrees with a brute-force first->=size scan
        over a table with unsorted insertion order."""
        rng = np.random.default_rng(7)
        algos = sorted(algorithm_names("allgather"))
        sizes = rng.permutation([2**k for k in range(1, 17)])
        table = TuningTable(cluster="X")
        expect = {}
        for size in sizes:
            algo = algos[int(size) % len(algos)]
            table.add("allgather", 2, 8, int(size), algo)
            expect[int(size)] = algo
        ordered = sorted(expect)
        for query in [1, 3, 16, 100, 4097, 1 << 16, 1 << 20]:
            matching = [s for s in ordered if s >= query]
            want = expect[matching[0]] if matching else expect[ordered[-1]]
            assert table.lookup("allgather", 2, 8, query) == want


class TestMeasurementCache:
    def test_cache_hit_is_identical(self, machine):
        from repro.smpi import clear_measurement_cache

        clear_measurement_cache()
        first = measured_time(machine, "allgather", "ring", 4096)
        again = measured_time(machine, "allgather", "ring", 4096)
        assert first == again
        clear_measurement_cache()
        recomputed = measured_time(machine, "allgather", "ring", 4096)
        assert first == recomputed  # memo never changes the value

    def test_degraded_machine_not_conflated(self, machine):
        """Same spec/nodes/ppn but different NetParams must not share
        cache entries (regression: conditions were invisible to the
        memo key)."""
        from repro.simcluster.conditions import (
            NetworkConditions,
            machine_with_conditions,
        )

        clean = measured_time(machine, "alltoall", "pairwise", 1 << 20)
        worse = machine_with_conditions(
            machine, NetworkConditions(background_load=0.9))
        degraded = measured_time(worse, "alltoall", "pairwise", 1 << 20)
        assert degraded > clean


class TestSelectorQualityOrdering:
    def test_oracle_beats_random_overall(self):
        """Summed over a sweep, oracle <= heuristic <= random is the
        expected quality ordering (random can fluke single sizes)."""
        machine = Machine(get_cluster("Frontera"), 2, 16)
        sizes = [2**k for k in range(0, 21, 2)]
        sels = {"oracle": OracleSelector(),
                "mvapich": MvapichDefaultSelector(),
                "random": RandomSelector(0)}
        totals = {}
        for name, sel in sels.items():
            t = 0.0
            for msg in sizes:
                algo = sel.select("alltoall", machine, msg)
                t += measured_time(machine, "alltoall", algo, msg)
            totals[name] = t
        assert totals["oracle"] <= totals["mvapich"] <= totals["random"]
