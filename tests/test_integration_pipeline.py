"""End-to-end integration: the complete PML-MPI story on one thread.

Mirrors the paper's deployment narrative in a single test module:
vendor collects + trains + ships a bundle; a user compiles MPI on a new
cluster (tuning table generated once, reused after); applications run
under the table selector and are no slower than random selection, and
the tuning artifacts are mutually consistent.
"""

import pytest

from repro.apps import GromacsProxy, run_sweep
from repro.core import (
    PmlMpiFramework,
    load_selector,
    offline_train,
    save_selector,
)
from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import RandomSelector, TuningTable, algorithm_names


@pytest.fixture(scope="module")
def pipeline(mini_dataset, tmp_path_factory):
    """Vendor side: train on the mini dataset and ship a bundle."""
    root = tmp_path_factory.mktemp("pipeline")
    selector = offline_train(mini_dataset)
    bundle_path = save_selector(selector, root / "pml.bundle.json")
    return root, bundle_path


class TestDeploymentFlow:
    def test_user_compiles_on_new_cluster(self, pipeline):
        root, bundle_path = pipeline
        selector = load_selector(bundle_path)  # arrives with the library
        framework = PmlMpiFramework(selector, root / "tables")

        spec = get_cluster("Haswell")  # never in the mini dataset
        runtime1 = framework.setup_cluster(spec)
        assert framework.has_table("Haswell")

        # Second compile reuses the artifact byte-for-byte.
        before = framework.table_path("Haswell").read_bytes()
        runtime2 = framework.setup_cluster(spec)
        assert framework.table_path("Haswell").read_bytes() == before

        machine = Machine(spec, 2, 8)
        for coll in ("allgather", "alltoall"):
            a = runtime1.select(coll, machine, 4096)
            b = runtime2.select(coll, machine, 4096)
            assert a == b
            assert a in algorithm_names(coll)

    def test_table_artifact_is_loadable_json(self, pipeline):
        root, bundle_path = pipeline
        framework = PmlMpiFramework(load_selector(bundle_path),
                                    root / "tables2")
        framework.setup_cluster(get_cluster("Haswell"))
        table = TuningTable.load(
            framework.table_path("Haswell"))
        assert table.cluster == "Haswell"
        algo = table.lookup("alltoall", 2, 8, 123)
        assert algo in algorithm_names("alltoall")

    def test_runtime_no_worse_than_random(self, pipeline):
        root, bundle_path = pipeline
        framework = PmlMpiFramework(load_selector(bundle_path),
                                    root / "tables3")
        spec = get_cluster("Haswell")
        runtime = framework.setup_cluster(spec)
        for coll in ("allgather", "alltoall"):
            ours = run_sweep(spec, coll, 2, 8, runtime).total_time()
            rand = run_sweep(spec, coll, 2, 8,
                             RandomSelector(0)).total_time()
            assert ours <= rand * 1.05, coll

    def test_application_runs_under_table_selector(self, pipeline):
        root, bundle_path = pipeline
        framework = PmlMpiFramework(load_selector(bundle_path),
                                    root / "tables4")
        spec = get_cluster("Haswell")
        runtime = framework.setup_cluster(spec)
        result = GromacsProxy().run(spec, 2, 8, runtime, steps=5)
        assert result.total_s > 0
        assert result.collective_s > 0
        for key, algo in result.collective_calls.items():
            coll = key.split("@")[0]
            assert algo in algorithm_names(coll)
