"""Tests for KNN and SVM classifiers."""

import numpy as np
import pytest

from repro.ml import SVC, KNeighborsClassifier, StandardScaler


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated Gaussian blobs."""
    rng = np.random.default_rng(11)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    X = np.vstack([rng.normal(c, 0.5, size=(60, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 60)
    return X, y


class TestKNN:
    def test_separable_blobs(self, blobs):
        X, y = blobs
        knn = KNeighborsClassifier(5).fit(X, y)
        assert knn.score(X, y) > 0.97

    def test_k1_memorizes(self, blobs):
        X, y = blobs
        knn = KNeighborsClassifier(1).fit(X, y)
        assert knn.score(X, y) == 1.0

    def test_distance_weights(self, blobs):
        X, y = blobs
        knn = KNeighborsClassifier(7, weights="distance").fit(X, y)
        assert knn.score(X, y) == 1.0  # own point dominates

    def test_manhattan_metric(self, blobs):
        X, y = blobs
        knn = KNeighborsClassifier(3, metric="manhattan").fit(X, y)
        assert knn.score(X, y) > 0.95

    def test_chunked_prediction_matches_unchunked(self, blobs):
        X, y = blobs
        a = KNeighborsClassifier(5, chunk_size=7).fit(X, y)
        b = KNeighborsClassifier(5, chunk_size=10_000).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_proba_shape_and_normalization(self, blobs):
        X, y = blobs
        proba = KNeighborsClassifier(5).fit(X, y).predict_proba(X[:10])
        assert proba.shape == (10, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_k_exceeding_training_size_raises(self):
        with pytest.raises(ValueError, match="exceeds"):
            KNeighborsClassifier(10).fit(np.zeros((3, 1)),
                                         np.array([0, 1, 0]))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="bogus")
        with pytest.raises(ValueError):
            KNeighborsClassifier(metric="cosine")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict(np.zeros((1, 2)))


class TestSVC:
    def test_rbf_separable_blobs(self, blobs):
        X, y = blobs
        Xs = StandardScaler().fit_transform(X)
        svc = SVC(C=1.0, kernel="rbf", random_state=0).fit(Xs, y)
        assert svc.score(Xs, y) > 0.95

    def test_linear_kernel_on_linear_problem(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        svc = SVC(C=1.0, kernel="linear", random_state=0).fit(X, y)
        assert svc.score(X, y) > 0.9

    def test_rbf_beats_linear_on_circular_problem(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(300, 2))
        y = (np.hypot(X[:, 0], X[:, 1]) < 1.0).astype(int)
        rbf = SVC(kernel="rbf", C=5.0, random_state=0).fit(X, y)
        lin = SVC(kernel="linear", C=5.0, random_state=0).fit(X, y)
        assert rbf.score(X, y) > lin.score(X, y)

    def test_decision_function_shape(self, blobs):
        X, y = blobs
        svc = SVC(random_state=0).fit(X, y)
        assert svc.decision_function(X[:7]).shape == (7, 3)

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        proba = SVC(random_state=0).fit(X, y).predict_proba(X[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_subsampling_cap_applied(self, blobs):
        X, y = blobs
        svc = SVC(max_samples=30, random_state=0).fit(X, y)
        # Each binary SVM trained on <= 30+slack points.
        for b in svc._binaries:
            assert len(b.support_vectors_) <= 33

    def test_gamma_options(self, blobs):
        X, y = blobs
        for gamma in ("scale", "auto", 0.5):
            svc = SVC(gamma=gamma, random_state=0).fit(X, y)
            assert svc.score(X, y) > 0.8

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVC(kernel="poly")
        with pytest.raises(ValueError):
            SVC(C=0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SVC().decision_function(np.zeros((1, 2)))

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        a = SVC(random_state=3).fit(X, y).predict(X)
        b = SVC(random_state=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)
