"""Documentation consistency checks — keep the docs honest as the code
evolves."""

from pathlib import Path

import pytest

from repro.smpi import ALL_COLLECTIVES, algorithm_names

ROOT = Path(__file__).parent.parent


@pytest.fixture(scope="module")
def docs_text():
    parts = []
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        parts.append((ROOT / name).read_text())
    for path in (ROOT / "docs").glob("*.md"):
        parts.append(path.read_text())
    return "\n".join(parts)


class TestDocsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md",
        "docs/architecture.md", "docs/cost_model.md",
        "docs/collectives.md", "docs/ml.md", "docs/api.md",
        "docs/reproduction_guide.md",
    ])
    def test_file_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 500, f"{name} is a stub"


class TestDocsCoverCode:
    def test_every_algorithm_documented(self, docs_text):
        for collective in ALL_COLLECTIVES:
            for name in algorithm_names(collective):
                assert name in docs_text, \
                    f"{collective}/{name} not mentioned in any doc"

    def test_every_collective_documented(self, docs_text):
        for collective in ALL_COLLECTIVES:
            assert collective in docs_text

    def test_design_references_existing_benchmarks(self):
        design = (ROOT / "DESIGN.md").read_text()
        for line in design.splitlines():
            if "benchmarks/test_" not in line:
                continue
            for token in line.split("`"):
                if token.startswith("benchmarks/test_"):
                    assert (ROOT / token).exists(), token

    def test_experiments_references_existing_reports(self):
        """Report files named in EXPERIMENTS.md must exist after a
        benchmark run (skip cleanly before the first run)."""
        reports = ROOT / "benchmarks" / "reports"
        if not reports.exists():
            pytest.skip("benchmarks not yet run")
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for token in text.split("`"):
            if token.startswith("test_") and token.endswith(".txt") \
                    and "*" not in token and "/" not in token:
                assert (reports / token).exists(), token

    def test_readme_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for token in readme.split():
            if token.startswith("examples/") and token.endswith(".py"):
                assert (ROOT / token).exists(), token
