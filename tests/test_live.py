"""Tests for the live introspection plane: flight recorder ring,
streaming quantiles, Prometheus exposition, and SLO burn-rate
evaluation."""

import math

import pytest

from repro.obs.expo import (
    parse_prometheus,
    prometheus_name,
    render_prometheus,
)
from repro.obs.live import (
    EVENT_KINDS,
    FlightRecorder,
    bucket_bounds,
    get_recorder,
    quantiles,
    quantiles_from_buckets,
    use_recorder,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    BurnWindow,
    SloSpec,
    SloTracker,
    evaluate_compliance,
    load_slos,
    worst_verdict,
)
from repro.obs.telemetry import (
    HIST_MIN_EXP,
    UNDERFLOW_EXP,
    MetricsRegistry,
)


def fake_clock(start=0.0):
    """Deterministic monotonic clock: start, start+1, ..."""
    tick = [start]

    def clock():
        t = tick[0]
        tick[0] += 1.0
        return t

    return clock


class TestFlightRecorder:
    def test_deterministic_under_fake_clock(self):
        def run():
            recorder = FlightRecorder(capacity=4, clock=fake_clock())
            recorder.record("request", op="select", status="ok")
            recorder.record("reload", status="swapped", version=2)
            return recorder.tail()

        assert run() == run()
        tail = run()
        assert [e["tick"] for e in tail] == [1, 2]
        assert [e["t"] for e in tail] == [0.0, 1.0]
        assert tail[0] == {"kind": "request", "tick": 1, "t": 0.0,
                           "op": "select", "status": "ok"}

    def test_ring_evicts_but_tick_survives(self):
        recorder = FlightRecorder(capacity=3, clock=fake_clock())
        for i in range(5):
            recorder.record("request", i=i)
        assert len(recorder) == 3
        assert recorder.total == 5
        assert recorder.dropped == 2
        tail = recorder.tail()
        assert [e["tick"] for e in tail] == [3, 4, 5]
        assert [e["i"] for e in tail] == [2, 3, 4]

    def test_tail_n_bounds(self):
        recorder = FlightRecorder(capacity=8, clock=fake_clock())
        for i in range(4):
            recorder.record("request", i=i)
        assert [e["i"] for e in recorder.tail(2)] == [2, 3]
        assert recorder.tail(0) == []
        assert len(recorder.tail(100)) == 4
        with pytest.raises(ValueError, match=">= 0"):
            recorder.tail(-1)

    def test_unknown_kind_and_non_scalar_field_rejected(self):
        recorder = FlightRecorder(capacity=2, clock=fake_clock())
        with pytest.raises(ValueError, match="unknown event kind"):
            recorder.record("surprise")
        with pytest.raises(TypeError, match="JSON scalar"):
            recorder.record("request", payload=[1, 2])
        assert recorder.total == 0

    def test_disabled_recorder_records_nothing(self):
        recorder = FlightRecorder(capacity=2, clock=fake_clock(),
                                  enabled=False)
        assert recorder.record("request") is None
        assert recorder.tail() == [] and recorder.total == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_ambient_default_disabled_and_scoped_install(self):
        ambient = get_recorder()
        assert ambient.enabled is False
        with use_recorder() as recorder:
            assert get_recorder() is recorder and recorder.enabled
            recorder.record("lifecycle", what="test")
        assert get_recorder() is ambient
        assert ambient.total == 0

    def test_event_kinds_closed_set(self):
        recorder = FlightRecorder(capacity=8, clock=fake_clock())
        for kind in EVENT_KINDS:
            assert recorder.record(kind) is not None


class TestBucketBounds:
    def test_underflow_collapses_to_zero(self):
        assert bucket_bounds(UNDERFLOW_EXP) == (0.0, 0.0)

    def test_bottom_in_range_bucket_starts_at_zero(self):
        lower, upper = bucket_bounds(HIST_MIN_EXP)
        assert lower == 0.0 and upper == 2.0 ** HIST_MIN_EXP

    def test_regular_bucket(self):
        assert bucket_bounds(3) == (4.0, 8.0)
        assert bucket_bounds(-2) == (0.125, 0.25)


class TestQuantiles:
    def test_empty_histogram_estimates_zero(self):
        assert quantiles_from_buckets({}) == {0.5: 0.0, 0.95: 0.0,
                                              0.99: 0.0}

    def test_linear_interpolation_within_bucket(self):
        # Four observations in bucket 0 = (0.5, 1.0]: the median rank
        # (2 of 4) sits halfway through the bucket.
        estimates = quantiles_from_buckets({0: 4}, qs=(0.5, 1.0))
        assert estimates[0.5] == pytest.approx(0.75)
        assert estimates[1.0] == pytest.approx(1.0)

    def test_rank_crosses_buckets(self):
        estimates = quantiles_from_buckets({0: 1, 1: 1}, qs=(0.5, 1.0))
        assert estimates[0.5] == pytest.approx(1.0)
        assert estimates[1.0] == pytest.approx(2.0)

    def test_quantiles_are_monotone_in_q(self):
        buckets = {-3: 7, -1: 2, 4: 1, 9: 3}
        estimates = quantiles_from_buckets(
            buckets, qs=(0.1, 0.5, 0.9, 0.99, 1.0))
        values = [estimates[q] for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            quantiles_from_buckets({0: 1}, qs=(0.0,))
        with pytest.raises(ValueError, match="quantile"):
            quantiles_from_buckets({0: 1}, qs=(1.5,))

    def test_live_histogram_wrapper(self):
        h = MetricsRegistry().histogram("h")
        for v in (0.6, 0.7, 0.8, 0.9):
            h.observe(v)
        assert quantiles(h, qs=(0.5,))[0.5] == pytest.approx(0.75)

    def test_underflow_observations_estimate_zero(self):
        estimates = quantiles_from_buckets({UNDERFLOW_EXP: 10},
                                           qs=(0.5, 0.99))
        assert estimates == {0.5: 0.0, 0.99: 0.0}


class TestExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.daemon.requests").inc(7)
        registry.gauge("adapt.phase").set(1.5)
        h = registry.histogram("serve.daemon.request_s")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        h.observe(0.0)  # underflow bucket
        return registry

    def test_render_is_deterministic(self):
        assert render_prometheus(self._registry()) \
            == render_prometheus(self._registry())

    def test_counter_gauge_histogram_series(self):
        text = render_prometheus(self._registry())
        assert "# TYPE pml_serve_daemon_requests_total counter" in text
        assert "pml_serve_daemon_requests_total 7" in text
        assert "# TYPE pml_adapt_phase gauge" in text
        assert "pml_adapt_phase 1.5" in text
        assert "# TYPE pml_serve_daemon_request_s histogram" in text
        assert 'pml_serve_daemon_request_s_bucket{le="+Inf"} 4' in text
        # The underflow bucket exports as the le="0" bound.
        assert 'pml_serve_daemon_request_s_bucket{le="0"} 1' in text
        assert "pml_serve_daemon_request_s_count 4" in text

    def test_histogram_buckets_are_cumulative_and_monotone(self):
        text = render_prometheus(self._registry())
        counts = []
        for line in text.splitlines():
            if line.startswith("pml_serve_daemon_request_s_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf equals count

    def test_parse_round_trip(self):
        registry = self._registry()
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["pml_serve_daemon_requests_total"] == 7
        assert samples["pml_adapt_phase"] == 1.5
        assert samples[
            'pml_serve_daemon_request_s_bucket{le="+Inf"}'] == 4
        assert samples["pml_serve_daemon_request_s_sum"] \
            == pytest.approx(0.6)

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_parse_rejects_malformed_and_duplicate_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is { not a sample\n")
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus("pml_x 1\npml_x 2\n")

    def test_name_sanitization(self):
        assert prometheus_name("serve.daemon.ok") \
            == "pml_serve_daemon_ok"
        assert prometheus_name("weird-name!x") == "pml_weird_name_x"


class TestSloSpec:
    def test_validation_matrix(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", kind="throughput", objective=0.9)
        with pytest.raises(ValueError, match="objective"):
            SloSpec(name="x", kind="error_rate", objective=1.0,
                    total="t", bad=("b",))
        with pytest.raises(ValueError, match="threshold_s"):
            SloSpec(name="x", kind="latency", objective=0.9,
                    histogram="h")
        with pytest.raises(ValueError, match="bad"):
            SloSpec(name="x", kind="error_rate", objective=0.9,
                    total="t")

    def test_latency_counting_is_conservative_on_boundaries(self):
        # Threshold 0.25 = 2**-2 is exactly a bucket upper bound, so
        # counting is exact: 0.25 lands in the (0.125, 0.25] bucket
        # (good); 0.3 lands in (0.25, 0.5] (bad).
        spec = SloSpec(name="lat", kind="latency", objective=0.99,
                       histogram="h", threshold_s=0.25)
        h = MetricsRegistry().histogram("h")
        for v in (0.1, 0.25, 0.3):
            h.observe(v)
        good, total = spec.sample({}, {"h": dict(h.buckets)})
        assert (good, total) == (2, 3)

    def test_error_rate_sample(self):
        spec = SloSpec(name="avail", kind="error_rate", objective=0.95,
                       total="req", bad=("shed", "internal"))
        good, total = spec.sample(
            {"req": 100, "shed": 3, "internal": 1}, {})
        assert (good, total) == (96, 100)

    def test_evaluate_compliance(self):
        spec = SloSpec(name="avail", kind="error_rate", objective=0.9,
                       total="req", bad=("shed",))
        row = evaluate_compliance(spec, {"req": 100, "shed": 20}, {})
        assert row["met"] is False
        assert row["compliance"] == pytest.approx(0.8)
        assert row["budget_remaining"] == pytest.approx(-1.0)
        empty = evaluate_compliance(spec, {}, {})
        assert empty["met"] is True and empty["total"] == 0

    def test_default_slos_reference_daemon_instruments(self):
        names = {spec.name for spec in DEFAULT_SLOS}
        assert names == {"daemon-request-latency",
                         "daemon-availability"}
        latency = next(s for s in DEFAULT_SLOS if s.kind == "latency")
        # A power-of-two threshold keeps boundary counting exact.
        assert math.log2(latency.threshold_s).is_integer()


class TestBurnWindow:
    def test_validation(self):
        with pytest.raises(ValueError, match="severity"):
            BurnWindow(60.0, 5.0, 2.0, "fatal")
        with pytest.raises(ValueError, match="short_s"):
            BurnWindow(5.0, 60.0, 2.0, "warn")
        with pytest.raises(ValueError, match="factor"):
            BurnWindow(60.0, 5.0, 0.0, "warn")

    def test_worst_verdict(self):
        assert worst_verdict([]) == "ok"
        assert worst_verdict(["ok", "warn", "ok"]) == "warn"
        assert worst_verdict(["warn", "page"]) == "page"
        with pytest.raises(ValueError, match="unknown verdict"):
            worst_verdict(["fine"])


class TestSloTracker:
    def _drive(self, registry, tracker, now, seconds, good, bad):
        req = registry.counter("req")
        shed = registry.counter("shed")
        for _ in range(seconds):
            now[0] += 1.0
            req.inc(good + bad)
            if bad:
                shed.inc(bad)
            tracker.tick()

    def _tracker(self, registry, now, windows):
        spec = SloSpec(name="avail", kind="error_rate", objective=0.9,
                       total="req", bad=("shed",))
        return SloTracker((spec,), registry=registry,
                          clock=lambda: now[0], windows=windows)

    def test_healthy_traffic_is_ok(self):
        registry, now = MetricsRegistry(), [0.0]
        tracker = self._tracker(
            registry, now,
            (BurnWindow(60.0, 5.0, 4.0, "page"),))
        self._drive(registry, tracker, now, seconds=20, good=10, bad=0)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == "ok"
        slo = verdict["slos"][0]
        assert slo["compliance"] == 1.0
        assert all(w["burn_long"] == 0.0 for w in slo["windows"])

    def test_burst_fires_page_and_warn(self):
        registry, now = MetricsRegistry(), [0.0]
        tracker = self._tracker(
            registry, now,
            (BurnWindow(60.0, 5.0, 4.0, "page"),
             BurnWindow(60.0, 30.0, 2.0, "warn")))
        # 10 s of clean traffic, then 10 s of 100% shed.  The short
        # window (last 5 s, all shed) burns at 1.0/0.1 = 10x; the long
        # window clamps to the oldest *sample*, so its delta spans
        # ticks 2..20 — 100 bad of 190 total.
        self._drive(registry, tracker, now, seconds=10, good=10, bad=0)
        self._drive(registry, tracker, now, seconds=10, good=0, bad=10)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == "page"
        slo = verdict["slos"][0]
        page, warn = slo["windows"]
        assert page["firing"] and warn["firing"]
        assert page["burn_long"] == pytest.approx((100 / 190) / 0.1)
        assert page["burn_short"] == pytest.approx(10.0)

    def test_long_window_guards_against_stale_burst(self):
        # A burst that *ended* long ago still shows in the clamped
        # long window but not the short one — no page, because both
        # windows must fire.
        registry, now = MetricsRegistry(), [0.0]
        tracker = self._tracker(
            registry, now,
            (BurnWindow(60.0, 5.0, 4.0, "page"),))
        self._drive(registry, tracker, now, seconds=5, good=0, bad=10)
        self._drive(registry, tracker, now, seconds=50, good=10, bad=0)
        verdict = tracker.evaluate()
        assert verdict["verdict"] == "ok"
        window = verdict["slos"][0]["windows"][0]
        assert window["burn_short"] == 0.0
        assert not window["firing"]

    def test_empty_history_is_ok(self):
        registry, now = MetricsRegistry(), [0.0]
        tracker = self._tracker(
            registry, now, (BurnWindow(60.0, 5.0, 4.0, "page"),))
        verdict = tracker.evaluate()
        assert verdict["verdict"] == "ok"
        assert verdict["slos"][0]["total"] == 0

    def test_tracker_without_registry_raises_on_tick(self):
        tracker = SloTracker((DEFAULT_SLOS[0],), registry=None,
                             clock=fake_clock())
        with pytest.raises(RuntimeError, match="no registry"):
            tracker.tick()


class TestLoadSlos:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            '[{"name": "lat", "kind": "latency", "objective": 0.99,'
            ' "histogram": "h", "threshold_s": 0.25},'
            ' {"name": "avail", "kind": "error_rate",'
            ' "objective": 0.95, "total": "req", "bad": ["shed"]}]')
        specs = load_slos(path)
        assert [s.name for s in specs] == ["lat", "avail"]
        assert specs[1].bad == ("shed",)

    @pytest.mark.parametrize("payload,match", [
        ("{}", "non-empty JSON list"),
        ("[]", "non-empty JSON list"),
        ("not json", "cannot read"),
        ('[{"name": "x", "kind": "latency", "objective": 0.9,'
         ' "histogram": "h", "threshold_s": 0.1, "extra": 1}]',
         "unknown"),
        ('[{"name": "x", "kind": "error_rate", "objective": 0.9,'
         ' "total": "t", "bad": "shed"}]', "list of counter names"),
        ('[{"name": "x", "kind": "latency", "objective": 0.9}]',
         "entry 0"),
        ('[{"name": "x", "kind": "error_rate", "objective": 0.9,'
         ' "total": "t", "bad": ["b"]},'
         ' {"name": "x", "kind": "error_rate", "objective": 0.9,'
         ' "total": "t", "bad": ["b"]}]', "duplicate names"),
    ])
    def test_rejection_matrix(self, tmp_path, payload, match):
        path = tmp_path / "slo.json"
        path.write_text(payload)
        with pytest.raises(ValueError, match=match):
            load_slos(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_slos(tmp_path / "absent.json")
