"""Tests for two-level collectives and sub-communicators."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import get_cluster
from repro.simcluster import Machine, Process
from repro.smpi import Communicator, algorithms, execute
from repro.smpi.collectives.allreduce import allreduce_expected
from repro.smpi.collectives.bcast import bcast_expected
from repro.smpi.collectives.twolevel import (
    TwoLevelAllgather,
    TwoLevelAllreduce,
    TwoLevelAlltoall,
    TwoLevelBcast,
    two_level_variants,
)
from repro.smpi.datatypes import allgather_expected, alltoall_expected
from repro.smpi.subcomm import RemappedComm


def _machine(nodes, ppn):
    return Machine(get_cluster("Frontera"), nodes, ppn)


class TestRemappedComm:
    def test_rank_translation(self):
        comm = Communicator(_machine(2, 4))
        sub = RemappedComm(comm, [0, 4])
        assert sub.size == 2
        assert sub.local_rank(4) == 1
        with pytest.raises(ValueError, match="not in this subgroup"):
            sub.local_rank(3)

    def test_invalid_members(self):
        comm = Communicator(_machine(2, 4))
        with pytest.raises(ValueError, match="duplicate"):
            RemappedComm(comm, [0, 0])
        with pytest.raises(ValueError, match="outside"):
            RemappedComm(comm, [0, 99])

    def test_messages_flow_between_members(self):
        comm = Communicator(_machine(2, 4))
        sub = RemappedComm(comm, [1, 5])
        got = []

        def sender(sub):
            yield from sub.send(0, 1, 3, "payload", 64)

        def receiver(sub):
            msg = yield from sub.recv(1, 0, 3)
            got.append(msg)

        Process(comm.sim, sender(sub))
        Process(comm.sim, receiver(sub))
        comm.sim.run()
        assert got == ["payload"]

    def test_flat_algorithm_runs_on_subgroup(self):
        """A flat allgather over the leader subgroup must produce the
        dense local ranks."""
        machine = _machine(3, 4)
        comm = Communicator(machine)
        leaders = [0, 4, 8]
        sub = RemappedComm(comm, leaders)
        ring = algorithms("allgather")["ring"]
        procs = [Process(comm.sim, ring.rank_process(sub, i, 64))
                 for i in range(3)]
        comm.sim.run()
        assert all(p.value == [0, 1, 2] for p in procs)


EXPECTED = {
    "allgather": lambda r, m: allgather_expected(m.p),
    "alltoall": lambda r, m: alltoall_expected(r, m.p),
    "allreduce": lambda r, m: allreduce_expected(m.p),
    "bcast": lambda r, m: bcast_expected(m.p),
}


class TestTwoLevelCorrectness:
    @pytest.mark.parametrize("nodes,ppn", [(2, 4), (3, 3), (1, 6),
                                           (4, 1), (2, 8)])
    def test_all_variants_correct(self, nodes, ppn):
        machine = _machine(nodes, ppn)
        for coll, variants in two_level_variants().items():
            for algo in variants:
                result = execute(algo, machine, 256)
                for rank in range(machine.p):
                    assert result.buffers[rank] == \
                        EXPECTED[coll](rank, machine), \
                        f"{coll}/{algo.name} @ {nodes}x{ppn} rank {rank}"

    @given(nodes=st.integers(1, 3), ppn=st.integers(1, 6),
           msg_log=st.integers(0, 14))
    @settings(max_examples=15, deadline=None)
    def test_two_level_allgather_property(self, nodes, ppn, msg_log):
        machine = _machine(nodes, ppn)
        algo = TwoLevelAllgather("bruck")
        result = execute(algo, machine, 2 ** msg_log)
        expected = allgather_expected(machine.p)
        assert all(buf == expected for buf in result.buffers)


class TestTwoLevelSchedules:
    def _counters(self, algo, machine, msg):
        result = execute(algo, machine, msg, record_trace=True)
        trace = Counter((t.src, t.dst, round(t.nbytes))
                        for t in result.trace)
        sched = Counter()
        for rnd in algo.schedule(machine, msg):
            for s, d, z in zip(rnd.src, rnd.dst, rnd.size):
                sched[(int(s), int(d), round(float(z)))] += rnd.repeat
        return trace, sched

    @pytest.mark.parametrize("algo", [
        TwoLevelAllgather("ring"), TwoLevelAlltoall("pairwise"),
        TwoLevelAllreduce("recursive_doubling"), TwoLevelBcast("binomial"),
    ], ids=lambda a: f"{a.collective}/{a.name}")
    def test_schedule_matches_trace(self, algo):
        machine = _machine(2, 4)
        trace, sched = self._counters(algo, machine, 128)
        assert trace == sched

    def test_single_rank_empty(self):
        machine = _machine(1, 1)
        for variants in two_level_variants().values():
            for algo in variants:
                assert algo.schedule(machine, 1024) == []


class TestTwoLevelPerformance:
    def test_two_level_allreduce_wins_small_messages_high_ppn(self):
        """Hierarchy collapses the latency term from log(p) inter-node
        hops to log(nodes): at 16x56 and tiny vectors it must beat the
        flat recursive doubling."""
        machine = _machine(16, 56)
        flat = algorithms("allreduce")["recursive_doubling"]
        two = TwoLevelAllreduce("recursive_doubling")
        assert two.estimate(machine, 8) < flat.estimate(machine, 8)

    def test_two_level_bcast_minimizes_inter_node_messages(self):
        """Flat binomial under block placement is already fairly
        hierarchy-friendly, so two-level bcast need not win on time —
        but it must never cross nodes more than nodes-1 times, and must
        stay competitive."""
        machine = _machine(16, 56)
        flat = algorithms("bcast")["binomial"]
        two = TwoLevelBcast("binomial")

        def inter_msgs(algo):
            count = 0
            for rnd in algo.schedule(machine, 8):
                src_node = rnd.src // machine.ppn
                dst_node = rnd.dst // machine.ppn
                count += int((src_node != dst_node).sum()) * rnd.repeat
            return count

        assert inter_msgs(two) == machine.nodes - 1
        assert inter_msgs(two) <= inter_msgs(flat)
        assert two.estimate(machine, 8) < 2.5 * flat.estimate(machine, 8)

    def test_flat_alltoall_wins_large_messages(self):
        """Two-level alltoall funnels all traffic through leaders — at
        large sizes the flat pairwise must win."""
        machine = _machine(4, 16)
        flat = algorithms("alltoall")["pairwise"]
        two = TwoLevelAlltoall("pairwise")
        assert flat.estimate(machine, 1 << 16) < \
            two.estimate(machine, 1 << 16)

    def test_inter_algorithm_choice_matters(self):
        machine = _machine(8, 32)
        small = TwoLevelAllgather("recursive_doubling").estimate(
            machine, 16)
        ring = TwoLevelAllgather("ring").estimate(machine, 16)
        assert small != ring
