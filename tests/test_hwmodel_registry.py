"""Tests for the 18-cluster Table I registry."""

import pytest

from repro.hwmodel import (
    CLUSTER_NAMES,
    all_clusters,
    get_cluster,
    training_clusters,
)
from repro.hwmodel.specs import InterconnectFamily


class TestRegistryContents:
    def test_eighteen_clusters(self):
        assert len(all_clusters()) == 18
        assert len(CLUSTER_NAMES) == 18

    def test_table1_names_present(self):
        for name in ["RI2", "RI", "Haswell", "Catalyst", "Spock", "Rome",
                     "Frontera", "LLNL", "Frontera RTX", "Hartree",
                     "Mayer", "Ray", "Sierra", "Bridges", "Bebop",
                     "TACC KNL", "TACC Skylake", "MRI"]:
            assert get_cluster(name).name == name

    def test_lookup_case_insensitive(self):
        assert get_cluster("frontera").name == "Frontera"

    def test_unknown_cluster_raises(self):
        with pytest.raises(KeyError, match="unknown cluster"):
            get_cluster("NoSuchCluster")

    def test_omnipath_clusters(self):
        opa = {c.name for c in all_clusters()
               if c.node.interconnect.family is InterconnectFamily.OMNIPATH}
        assert opa == {"Bridges", "Bebop", "TACC KNL", "TACC Skylake"}

    def test_mri_has_16_msg_sizes_others_21(self):
        for spec in all_clusters():
            expected = 16 if spec.name == "MRI" else 21
            assert len(spec.msg_sizes) == expected, spec.name

    def test_msg_sizes_are_powers_of_two_from_one(self):
        for spec in all_clusters():
            assert spec.msg_sizes[0] == 1
            for a, b in zip(spec.msg_sizes, spec.msg_sizes[1:]):
                assert b == 2 * a

    def test_table1_setting_counts(self):
        """#nodes / #ppn columns of Table I."""
        expected = {
            "RI2": (5, 6), "RI": (1, 2), "Haswell": (3, 6),
            "Catalyst": (4, 6), "Spock": (5, 8), "Rome": (4, 10),
            "Frontera": (5, 8), "LLNL": (5, 6), "Frontera RTX": (5, 5),
            "Hartree": (3, 5), "Mayer": (4, 7), "Ray": (4, 3),
            "Sierra": (5, 8), "Bridges": (5, 6), "Bebop": (6, 5),
            "TACC KNL": (6, 6), "TACC Skylake": (5, 8), "MRI": (4, 8),
        }
        for spec in all_clusters():
            nodes, ppn = expected[spec.name]
            assert len(spec.node_counts) == nodes, spec.name
            assert len(spec.ppn_values) == ppn, spec.name

    def test_frontera_supports_paper_eval_configs(self):
        spec = get_cluster("Frontera")
        assert 16 in spec.node_counts
        assert 56 in spec.ppn_values and 28 in spec.ppn_values

    def test_mri_supports_paper_eval_configs(self):
        spec = get_cluster("MRI")
        assert 8 in spec.node_counts
        assert 128 in spec.ppn_values and 64 in spec.ppn_values

    def test_ppn_within_hardware_threads(self):
        for spec in all_clusters():
            assert max(spec.ppn_values) <= spec.node.cpu.threads_per_node


class TestTrainingClusters:
    def test_exclusion(self):
        rest = training_clusters(exclude=("Frontera", "MRI"))
        names = {c.name for c in rest}
        assert len(rest) == 16
        assert "Frontera" not in names and "MRI" not in names

    def test_exclusion_case_insensitive(self):
        rest = training_clusters(exclude=("frontera",))
        assert all(c.name != "Frontera" for c in rest)

    def test_no_exclusion_returns_all(self):
        assert len(training_clusters()) == 18
