"""Tests for the pml-mpi command-line interface (driven in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    """A small trained bundle (RI-only training for speed)."""
    path = tmp_path_factory.mktemp("bundle") / "pml.json"
    rc = main(["train", str(path), "--clusters", "RI", "Ray"])
    assert rc == 0
    return path


class TestInfo:
    def test_lists_all_clusters(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Frontera" in out and "MRI" in out
        assert out.count("\n") >= 18

    def test_single_cluster_features(self, capsys):
        assert main(["info", "Sierra"]) == 0
        out = capsys.readouterr().out
        assert "link_speed_gbps" in out
        assert "IBM POWER9" in out


class TestCollect:
    def test_collect_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "ds.jsonl.gz"
        rc = main(["collect", "--clusters", "RI", "--quiet",
                   "--output", str(out_path)])
        assert rc == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "collected 84 records" in out

    def test_collect_extension_collectives(self, capsys):
        rc = main(["collect", "--clusters", "RI", "--quiet",
                   "--collectives", "bcast"])
        assert rc == 0
        assert "binomial" in capsys.readouterr().out


class TestTrainSelectTune:
    def test_bundle_written(self, bundle):
        assert bundle.exists()

    def test_select_prints_algorithm(self, bundle, capsys):
        rc = main(["select", "Frontera", "allgather", "2", "8", "1024",
                   "--bundle", str(bundle)])
        assert rc == 0
        out = capsys.readouterr().out.strip()
        assert out in ("recursive_doubling", "ring", "bruck",
                       "rd_communication")

    def test_tune_writes_table(self, bundle, tmp_path, capsys):
        rc = main(["tune", "RI", "--bundle", str(bundle),
                   "--table-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "RI.tuning.json").exists()
        assert "generated" in capsys.readouterr().out

    def test_tune_reuses_table(self, bundle, tmp_path, capsys):
        main(["tune", "RI", "--bundle", str(bundle),
              "--table-dir", str(tmp_path)])
        capsys.readouterr()
        main(["tune", "RI", "--bundle", str(bundle),
              "--table-dir", str(tmp_path)])
        assert "reused" in capsys.readouterr().out


class TestSelectBatch:
    QUERY = '{"collective":"allgather","nodes":2,"ppn":4,"msg_size":%d}'

    def _query_file(self, tmp_path, msgs=(64, 1024, 1024, 4096)):
        path = tmp_path / "queries.jsonl"
        path.write_text("".join(self.QUERY % m + "\n" for m in msgs))
        return path

    def test_writes_decisions_jsonl(self, bundle, tmp_path, capsys):
        import json

        queries = self._query_file(tmp_path)
        out_path = tmp_path / "decisions.jsonl"
        rc = main(["select-batch", "RI", "--bundle", str(bundle),
                   "--input", str(queries), "--output", str(out_path)])
        assert rc == 0
        assert "answered 4 queries" in capsys.readouterr().out
        lines = out_path.read_text().splitlines()
        assert len(lines) == 4
        records = [json.loads(line) for line in lines]
        assert all(r["algorithm"] for r in records)
        # Exact duplicate within the batch is answered from dedup.
        assert records[2]["cached"] is True

    def test_stdout_without_output_flag(self, bundle, tmp_path, capsys):
        queries = self._query_file(tmp_path, msgs=(64,))
        rc = main(["select-batch", "RI", "--bundle", str(bundle),
                   "--input", str(queries)])
        assert rc == 0
        out = capsys.readouterr().out
        assert '"collective":"allgather"' in out

    def test_agrees_with_single_select(self, bundle, tmp_path, capsys):
        import json

        queries = self._query_file(tmp_path, msgs=(1024,))
        main(["select-batch", "RI", "--bundle", str(bundle),
              "--input", str(queries), "--no-quantize"])
        batch_algo = json.loads(
            capsys.readouterr().out.splitlines()[0])["algorithm"]
        main(["select", "RI", "allgather", "2", "4", "1024",
              "--bundle", str(bundle)])
        assert batch_algo == capsys.readouterr().out.strip()

    def test_invalid_query_becomes_invalid_decision(self, bundle,
                                                    tmp_path, capsys):
        import json

        path = tmp_path / "queries.jsonl"
        path.write_text(
            '{"collective":"nope","nodes":2,"ppn":4,"msg_size":64}\n')
        rc = main(["select-batch", "RI", "--bundle", str(bundle),
                   "--input", str(path)])
        assert rc == 0
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["action"] == "invalid"
        assert record["algorithm"] is None

    def test_broken_file_is_an_error(self, bundle, tmp_path, capsys):
        path = tmp_path / "queries.jsonl"
        path.write_text("this is not json\n")
        rc = main(["select-batch", "RI", "--bundle", str(bundle),
                   "--input", str(path)])
        assert rc == 2
        assert "line 1" in capsys.readouterr().err

    def test_missing_input_file(self, bundle, tmp_path, capsys):
        rc = main(["select-batch", "RI", "--bundle", str(bundle),
                   "--input", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err


class TestSweep:
    def test_oracle_sweep(self, capsys):
        rc = main(["sweep", "RI", "alltoall", "2", "4",
                   "--selector", "oracle"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg_time_us" in out
        assert out.count("\n") > 20  # 21 sizes + header

    def test_pml_sweep_requires_bundle(self, capsys):
        rc = main(["sweep", "RI", "alltoall", "2", "4",
                   "--selector", "pml"])
        assert rc == 2
        assert "--bundle is required" in capsys.readouterr().err

    def test_pml_sweep_with_bundle(self, bundle, capsys):
        rc = main(["sweep", "RI", "allgather", "2", "4",
                   "--selector", "pml", "--bundle", str(bundle)])
        assert rc == 0


class TestDoctor:
    def test_clean_directory(self, bundle, tmp_path, capsys):
        main(["tune", "RI", "--bundle", str(bundle),
              "--table-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["doctor", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ok" in out and "0 problem(s)" in out

    def test_flags_corrupt_and_quarantined(self, tmp_path, capsys):
        (tmp_path / "bad.tuning.json").write_text("{nope")
        (tmp_path / "old.tuning.json.corrupt").write_text("x")
        rc = main(["doctor", str(tmp_path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "corrupt" in out
        assert "quarantined" in out

    def test_empty_directory(self, tmp_path, capsys):
        rc = main(["doctor", str(tmp_path)])
        assert rc == 0
        assert "no artifacts" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        rc = main(["doctor", str(tmp_path / "nope")])
        assert rc == 2
        assert "not a directory" in capsys.readouterr().err


class TestDoctorCrossCheck:
    def test_bundle_cross_check_clean(self, bundle, tmp_path, capsys):
        main(["tune", "RI", "--bundle", str(bundle),
              "--table-dir", str(tmp_path)])
        capsys.readouterr()
        rc = main(["doctor", str(tmp_path), "--bundle", str(bundle)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cross-check" in out

    def test_bundle_cross_check_misfiled_table(self, bundle, tmp_path,
                                               capsys):
        main(["tune", "RI", "--bundle", str(bundle),
              "--table-dir", str(tmp_path)])
        capsys.readouterr()
        misfiled = tmp_path / "Haswell.tuning.json"
        misfiled.write_text((tmp_path / "RI.tuning.json").read_text())
        rc = main(["doctor", str(tmp_path), "--bundle", str(bundle)])
        assert rc == 1
        assert "belongs to cluster" in capsys.readouterr().out


class TestChaos:
    def test_short_run_passes(self, capsys):
        rc = main(["chaos", "--queries", "600", "--seed", "0",
                   "--storm-length", "20", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CHAOS OK" in out
        assert "unguarded exceptions: 0" in out


class TestFaultInjectionFlags:
    def test_tune_with_faults_still_succeeds(self, bundle, tmp_path,
                                             capsys):
        rc = main(["tune", "RI", "--bundle", str(bundle),
                   "--table-dir", str(tmp_path),
                   "--fault-rate", "0.2", "--retries", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served via:" in out
        assert (tmp_path / "RI.tuning.json").exists()

    def test_collect_with_faults(self, tmp_path, capsys,
                                 monkeypatch):
        monkeypatch.setenv("PML_MPI_CACHE", str(tmp_path))
        rc = main(["collect", "--clusters", "RI", "--quiet",
                   "--collectives", "allgather",
                   "--fault-rate", "0.2", "--retries", "8"])
        assert rc == 0
        assert "collected 42 records" in capsys.readouterr().out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_cluster_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "Atlantis"])


class TestTraceAndReport:
    def test_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.obs.trace_io import load_trace

        trace_path = tmp_path / "t.jsonl"
        assert main(["info", "RI", "--trace", str(trace_path)]) == 0
        assert "trace written" in capsys.readouterr().err
        trace = load_trace(trace_path)
        assert trace.root_spans()[0]["name"] == "info"

    def test_traced_tune_then_report_shows_stages(self, bundle,
                                                  tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        rc = main(["tune", "RI", "--bundle", str(bundle),
                   "--table-dir", str(tmp_path / "tables"),
                   "--trace", str(trace_path)])
        assert rc == 0
        capsys.readouterr()
        assert main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-stage wall clock" in out
        assert "tune" in out
        assert "tune.rung.regenerated" in out

    def test_trace_accumulates_across_commands(self, tmp_path, capsys):
        from repro.obs.trace_io import load_trace

        trace_path = tmp_path / "t.jsonl"
        assert main(["info", "RI", "--trace", str(trace_path)]) == 0
        assert main(["info", "Ray", "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        roots = load_trace(trace_path).root_spans()
        assert [s["name"] for s in roots] == ["info", "info"]

    def test_report_missing_file_rc_2(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no such trace" in capsys.readouterr().err

    def test_report_corrupt_file_rc_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        assert main(["report", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_onto_corrupt_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("garbage\n")
        rc = main(["info", "RI", "--trace", str(bad)])
        assert rc == 2
        assert "cannot extend trace" in capsys.readouterr().err
        assert bad.read_text() == "garbage\n"

    def test_verbose_flag_accepted_after_subcommand(self, capsys):
        assert main(["info", "RI", "-vv"]) == 0

    def test_report_metrics_only_trace_says_no_spans(self, tmp_path,
                                                     capsys):
        # Regression: a trace holding metrics but zero spans (e.g. a
        # traced command whose spans were all filtered) must render a
        # clean report, not crash or print an empty stage table.
        from repro.obs.telemetry import MetricsRegistry, Tracer
        from repro.obs.trace_io import export_trace

        path = tmp_path / "metrics_only.jsonl"
        registry = MetricsRegistry()
        registry.counter("serve.queries").inc(5)
        registry.histogram("serve.batch_s").observe(0.25)
        export_trace(path, Tracer(enabled=False), registry,
                     append=False)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(no spans recorded)" in out
        assert "serve.queries" in out
        assert "slowest spans" not in out

    def test_report_renders_slo_compliance_for_daemon_traces(
            self, tmp_path, capsys):
        from repro.obs.telemetry import MetricsRegistry, Tracer
        from repro.obs.trace_io import export_trace

        path = tmp_path / "daemon.jsonl"
        registry = MetricsRegistry()
        registry.counter("serve.daemon.requests").inc(100)
        registry.counter("serve.daemon.internal").inc(10)
        export_trace(path, Tracer(enabled=False), registry,
                     append=False)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "SLO compliance" in out
        assert "daemon-availability" in out
        assert "VIOLATED" in out  # 10% internal vs 95% objective


class TestLoggingIdempotent:
    @pytest.fixture(autouse=True)
    def _clean_repro_logger(self):
        import logging

        logger = logging.getLogger("repro")
        yield logger
        for handler in list(logger.handlers):
            if getattr(handler, "_pml_cli", False):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_repeated_verbose_runs_keep_one_handler(
            self, _clean_repro_logger, capsys):
        # Regression: repeated in-process `-v` invocations (a REPL, a
        # test harness, the daemon respawning the CLI) must not stack
        # handlers — each stacked handler multiplies every log line.
        import sys as real_sys

        logger = _clean_repro_logger
        for _ in range(3):
            assert main(["info", "RI", "-v"]) == 0
        handlers = [h for h in logger.handlers
                    if getattr(h, "_pml_cli", False)]
        assert len(handlers) == 1
        # Re-bound to the *current* stderr (pytest swaps it per test).
        assert handlers[0].stream is real_sys.stderr

    def test_stray_duplicate_handlers_are_swept(
            self, _clean_repro_logger, capsys):
        import logging

        logger = _clean_repro_logger
        for _ in range(2):
            stray = logging.StreamHandler()
            stray._pml_cli = True
            logger.addHandler(stray)
        assert main(["info", "RI", "-v"]) == 0
        handlers = [h for h in logger.handlers
                    if getattr(h, "_pml_cli", False)]
        assert len(handlers) == 1


class TestTopCommand:
    def test_unreachable_socket_is_a_clean_error(self, tmp_path,
                                                 capsys):
        rc = main(["top", "--socket", str(tmp_path / "none.sock"),
                   "--once"])
        assert rc == 1
        assert "top:" in capsys.readouterr().err


class TestServeSloFlag:
    def test_invalid_slo_config_refuses_to_start(self, tmp_path,
                                                 capsys):
        bad = tmp_path / "slo.json"
        bad.write_text("[]")
        rc = main(["serve", "RI", "--state-dir",
                   str(tmp_path / "state"), "--slo", str(bad)])
        assert rc == 1
        assert "cannot start" in capsys.readouterr().err
