"""Tests for the offline training pipeline."""

import numpy as np
import pytest

from repro.core.features import ALL_FEATURE_NAMES
from repro.core.splits import split_dataset
from repro.core.training import (
    MODEL_FAMILIES,
    compare_models,
    feature_importance_report,
    rank_features,
    train_model,
)


@pytest.fixture(scope="module")
def splits(mini_dataset):
    return split_dataset(mini_dataset, "random", seed=0)


class TestRankFeatures:
    def test_importances_shape_and_norm(self, mini_dataset):
        imp = rank_features(mini_dataset, "allgather", n_estimators=20)
        assert imp.shape == (14,)
        assert imp.sum() == pytest.approx(1.0)
        assert np.all(imp >= 0)

    def test_msg_size_dominates(self, mini_dataset):
        """The paper's central observation (Figs. 5-6)."""
        for collective in ("allgather", "alltoall"):
            imp = rank_features(mini_dataset, collective, n_estimators=30)
            assert ALL_FEATURE_NAMES[int(np.argmax(imp))] == "msg_size"

    def test_report_sorted(self, mini_dataset):
        rep = feature_importance_report(mini_dataset, "alltoall")
        vals = [v for _, v in rep]
        assert vals == sorted(vals, reverse=True)
        assert len(rep) == 14

    def test_empty_collective_raises(self, mini_dataset):
        empty = mini_dataset.filter(clusters={"__none__"})
        with pytest.raises(ValueError):
            rank_features(empty, "allgather")


class TestTrainModel:
    def test_rf_beats_majority_class(self, splits):
        train, test = splits
        model = train_model(train, "allgather", family="rf")
        test_ag = test.filter(collective="allgather")
        labels = test_ag.labels()
        _, counts = np.unique(labels, return_counts=True)
        majority = counts.max() / counts.sum()
        assert model.accuracy(test_ag) > majority

    def test_top_k_features_selected(self, splits):
        train, _ = splits
        model = train_model(train, "allgather", family="rf", top_k=5)
        assert len(model.feature_names) == 5
        assert "msg_size" in model.feature_names
        assert model.importances_full is not None

    def test_explicit_features_bypass_selection(self, splits):
        train, _ = splits
        model = train_model(train, "allgather", family="rf",
                            feature_names=("msg_size", "ppn"))
        assert model.feature_names == ("msg_size", "ppn")
        assert model.importances_full is None

    def test_scaled_family_gets_scaler(self, splits):
        train, _ = splits
        knn = train_model(train, "allgather", family="knn")
        rf = train_model(train, "allgather", family="rf")
        assert knn.scaler is not None
        assert rf.scaler is None

    def test_predict_labels_in_label_space(self, splits):
        train, test = splits
        model = train_model(train, "alltoall", family="rf")
        preds = model.predict(test.filter(
            collective="alltoall").feature_matrix())
        valid = set(train.filter(collective="alltoall").labels())
        assert set(preds) <= valid

    def test_unknown_family_raises(self, splits):
        with pytest.raises(ValueError, match="unknown family"):
            train_model(splits[0], "allgather", family="xgboost")

    def test_tuned_model_records_params(self, splits):
        train, _ = splits
        model = train_model(train, "allgather", family="knn", tune=True,
                            cv=3)
        assert model.metadata["tuned"] is True
        assert "best_params" in model.metadata
        assert 0.5 <= model.metadata["cv_auc"] <= 1.0


class TestCompareModels:
    def test_all_families_present(self, splits):
        train, test = splits
        out = compare_models(train, test.filter(collective="allgather"),
                             "allgather", tune=False,
                             families=("rf", "knn"))
        assert set(out) == {"rf", "knn"}
        assert all(0.0 <= v <= 1.0 for v in out.values())

    def test_rf_at_least_competitive(self, splits):
        """Table II's headline: RF leads the comparison."""
        train, test = splits
        out = compare_models(train, test.filter(collective="allgather"),
                             "allgather", tune=False,
                             families=("rf", "knn", "svm"))
        assert out["rf"] >= max(out["knn"], out["svm"]) - 0.02

    def test_family_registry_complete(self):
        assert set(MODEL_FAMILIES) == {"rf", "gradientboost", "knn",
                                       "svm"}
