"""Unit tests for hardware spec dataclasses and their invariants."""

import pytest

from repro.hwmodel.specs import (
    ClusterSpec,
    CpuSpec,
    CpuVendor,
    InfinibandGeneration,
    InterconnectFamily,
    InterconnectSpec,
    MemorySpec,
    NodeSpec,
    PcieSpec,
)


def _cpu(**over):
    base = dict(model_name="Test CPU", vendor=CpuVendor.INTEL,
                base_clock_ghz=2.0, max_clock_ghz=3.0,
                cores_per_socket=8, threads_per_core=2, sockets=2,
                numa_nodes=2, l3_cache_mib=32.0)
    base.update(over)
    return CpuSpec(**base)


def _node(cpu=None):
    return NodeSpec(
        cpu=cpu or _cpu(),
        memory=MemorySpec(128, 100.0),
        interconnect=InterconnectSpec(
            InterconnectFamily.INFINIBAND, InfinibandGeneration.EDR, 4,
            "Test HCA", 1.0),
        pcie=PcieSpec(3.0, 16),
    )


class TestCpuSpec:
    def test_core_and_thread_counts(self):
        cpu = _cpu()
        assert cpu.cores_per_node == 16
        assert cpu.threads_per_node == 32

    def test_max_below_base_clock_rejected(self):
        with pytest.raises(ValueError, match="max clock"):
            _cpu(max_clock_ghz=1.0)

    def test_zero_counts_rejected(self):
        with pytest.raises(ValueError):
            _cpu(sockets=0)

    def test_nonpositive_l3_rejected(self):
        with pytest.raises(ValueError):
            _cpu(l3_cache_mib=0.0)


class TestMemorySpec:
    def test_valid(self):
        m = MemorySpec(64, 80.0)
        assert m.capacity_gib == 64

    @pytest.mark.parametrize("cap,bw", [(0, 80), (64, 0), (-1, 80)])
    def test_invalid(self, cap, bw):
        with pytest.raises(ValueError):
            MemorySpec(cap, bw)


class TestInterconnectSpec:
    def test_edr_x4_is_100gbps(self):
        ic = InterconnectSpec(InterconnectFamily.INFINIBAND,
                              InfinibandGeneration.EDR, 4, "X", 1.0)
        assert ic.link_speed_gbps == pytest.approx(100.0)
        assert ic.bandwidth_bytes_per_s == pytest.approx(12.5e9)

    def test_generation_lane_rates_ordered(self):
        gens = [InfinibandGeneration.QDR, InfinibandGeneration.FDR,
                InfinibandGeneration.EDR, InfinibandGeneration.HDR]
        rates = [g.lane_gbps for g in gens]
        assert rates == sorted(rates)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            InterconnectSpec(InterconnectFamily.INFINIBAND,
                             InfinibandGeneration.EDR, 0, "X", 1.0)

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            InterconnectSpec(InterconnectFamily.INFINIBAND,
                             InfinibandGeneration.EDR, 4, "X", 0.0)


class TestPcieSpec:
    def test_gen3_x16_bandwidth(self):
        assert PcieSpec(3.0, 16).bandwidth_gbs == pytest.approx(15.76)

    def test_gen4_doubles_gen3(self):
        assert PcieSpec(4.0, 16).bandwidth_gbs == pytest.approx(
            2 * PcieSpec(3.0, 16).bandwidth_gbs, rel=0.01)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            PcieSpec(6.0, 16)

    def test_bad_lane_count_rejected(self):
        with pytest.raises(ValueError):
            PcieSpec(3.0, 12)


class TestClusterSpec:
    def test_subscription_ppn(self):
        spec = ClusterSpec("t", _node(), max_nodes=4)
        assert spec.full_subscription_ppn == 16
        assert spec.half_subscription_ppn == 8

    def test_node_count_exceeding_max_rejected(self):
        with pytest.raises(ValueError, match="exceeds max_nodes"):
            ClusterSpec("t", _node(), max_nodes=4, node_counts=(8,))

    def test_ppn_exceeding_threads_rejected(self):
        with pytest.raises(ValueError, match="exceeds hardware threads"):
            ClusterSpec("t", _node(), max_nodes=4, ppn_values=(64,))

    def test_describe_mentions_name_and_interconnect(self):
        spec = ClusterSpec("mytest", _node(), max_nodes=4)
        text = spec.describe()
        assert "mytest" in text
        assert "InfiniBand" in text
