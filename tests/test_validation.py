"""Tests for the analytic-vs-DES validation module."""

import pytest

from repro.validation import ValidationCase, ValidationReport, validate


class TestValidationCase:
    def test_ratio(self):
        c = ValidationCase("X", "allgather", 2, 4, 64, "ring", 2.0, 1.0)
        assert c.ratio == 0.5


class TestValidate:
    @pytest.fixture(scope="class")
    def small_report(self):
        return validate(clusters=("RI",), shapes=((2, 4),),
                        msg_sizes=(256, 16384))

    def test_covers_all_algorithms(self, small_report):
        names = {c.algorithm for c in small_report.cases}
        assert "ring" in names and "pairwise" in names
        # 2 sizes x (4 allgather + 5 alltoall) = 18 cases.
        assert len(small_report.cases) == 18

    def test_ratios_positive_and_bounded(self, small_report):
        r = small_report.ratios
        assert (r > 0).all()
        assert r.max() < 5.0

    def test_summary_lines_well_formed(self, small_report):
        lines = small_report.summary_lines()
        assert any("median" in line for line in lines)
        assert any("agreement" in line for line in lines)

    def test_infeasible_shapes_skipped(self):
        # RI only has 2 nodes; an 8-node shape must be skipped, not
        # raise.
        report = validate(clusters=("RI",), shapes=((8, 4), (2, 4)),
                          msg_sizes=(64,))
        assert len(report.cases) == 9  # only the (2, 4) shape

    def test_extension_collectives_supported(self):
        report = validate(clusters=("RI",), shapes=((2, 4),),
                          msg_sizes=(1024,),
                          collectives=("allreduce", "bcast"))
        names = {c.algorithm for c in report.cases}
        assert "rabenseifner" in names and "binomial" in names

    def test_empty_report_statistics(self):
        report = ValidationReport()
        assert len(report.cases) == 0
