"""Shared fixtures.

``mini_dataset`` collects a small three-cluster dataset once per test
session (cached on disk under the standard cache directory, so repeat
test runs are instant).
"""

import pytest

from repro.core import collect_dataset
from repro.hwmodel import get_cluster

#: Small clusters -> small rank counts -> fast collection.
MINI_CLUSTERS = ("RI", "Ray", "Frontera RTX")


@pytest.fixture(scope="session")
def mini_dataset():
    clusters = [get_cluster(name) for name in MINI_CLUSTERS]
    return collect_dataset(clusters=clusters)


@pytest.fixture(scope="session")
def full_dataset():
    """The full 18-cluster dataset (first call collects and caches)."""
    return collect_dataset()
