"""Tests for the startup-overhead (core-hour) models."""

import pytest

from repro.core.overhead import (
    ACCLAIM_ANCHOR_NODES,
    ACCLAIM_MINUTES,
    acclaim_core_hours,
    microbenchmark_core_hours,
    overhead_curves,
    pml_core_hours,
)
from repro.hwmodel import get_cluster


class TestMicrobenchmark:
    def test_grows_with_nodes(self):
        spec = get_cluster("Frontera")
        small = microbenchmark_core_hours(spec, "allgather", 2, 56)
        large = microbenchmark_core_hours(spec, "allgather", 32, 56)
        assert large > small * 10

    def test_allgather_cheaper_than_alltoall(self):
        spec = get_cluster("Frontera")
        ag = microbenchmark_core_hours(spec, "allgather", 4, 28)
        a2a = microbenchmark_core_hours(spec, "alltoall", 4, 28)
        assert a2a > ag

    def test_custom_msg_sizes_reduce_cost(self):
        spec = get_cluster("Frontera")
        full = microbenchmark_core_hours(spec, "allgather", 4, 28)
        tiny = microbenchmark_core_hours(spec, "allgather", 4, 28,
                                         msg_sizes=(1, 2))
        assert tiny < full


class TestAcclaim:
    def test_published_anchor(self):
        hours = acclaim_core_hours(ACCLAIM_ANCHOR_NODES, 56)
        assert hours == pytest.approx(ACCLAIM_MINUTES / 60 * 128 * 56)

    def test_linear_in_allocation(self):
        assert acclaim_core_hours(256, 56) == \
            pytest.approx(2 * acclaim_core_hours(128, 56))


class TestPml:
    def test_constant_and_tiny(self):
        h = pml_core_hours(0.1)
        assert h == pytest.approx(0.1 / 3600)
        assert h < acclaim_core_hours(2, 1)


class TestCurves:
    def test_fig7_shape(self):
        spec = get_cluster("Frontera")
        curves = overhead_curves(spec, "allgather", 56, (2, 8, 32),
                                 inference_seconds=0.1)
        assert set(curves) == {"microbenchmark", "acclaim", "pml"}
        for series in curves.values():
            assert [pt.nodes for pt in series] == [2, 8, 32]
        pml = [pt.core_hours for pt in curves["pml"]]
        assert len(set(pml)) == 1  # flat
        micro = [pt.core_hours for pt in curves["microbenchmark"]]
        assert micro == sorted(micro)
        assert micro[-1] > pml[0] * 1e6
