"""Tests for dynamic network conditions (failure injection)."""

import pytest

from repro.hwmodel import get_cluster
from repro.simcluster import (
    CLEAN,
    NO_FAULTS,
    FaultProfile,
    Machine,
    NetworkConditions,
    apply_conditions,
    machine_with_conditions,
)
from repro.smpi import OracleSelector, algorithms


@pytest.fixture(scope="module")
def machine():
    return Machine(get_cluster("Frontera"), 4, 16)


class TestConditionsValidation:
    def test_clean_baseline(self):
        assert CLEAN.is_clean
        assert not NetworkConditions(background_load=0.3).is_clean

    @pytest.mark.parametrize("kwargs", [
        {"background_load": 1.0},
        {"background_load": -0.1},
        {"latency_jitter": -0.5},
        {"link_width_factor": 0.0},
        {"link_width_factor": 1.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkConditions(**kwargs)


class TestApplyConditions:
    def test_clean_is_identity(self, machine):
        assert apply_conditions(machine.params, CLEAN) is machine.params

    def test_background_load_shrinks_bandwidth(self, machine):
        degraded = apply_conditions(
            machine.params, NetworkConditions(background_load=0.5))
        assert degraded.beta_inter_Bps == pytest.approx(
            machine.params.beta_inter_Bps * 0.5)
        assert degraded.alpha_inter_s > machine.params.alpha_inter_s

    def test_link_degradation(self, machine):
        degraded = apply_conditions(
            machine.params, NetworkConditions(link_width_factor=0.25))
        assert degraded.beta_inter_Bps == pytest.approx(
            machine.params.beta_inter_Bps * 0.25)

    def test_intra_node_untouched(self, machine):
        degraded = apply_conditions(
            machine.params, NetworkConditions(background_load=0.7))
        assert degraded.alpha_intra_s == machine.params.alpha_intra_s
        assert degraded.mem_bw_Bps == machine.params.mem_bw_Bps


class TestDegradedMachine:
    def test_all_algorithms_slower_under_congestion(self, machine):
        congested = machine_with_conditions(
            machine, NetworkConditions(background_load=0.6,
                                       latency_jitter=0.5))
        for coll in ("allgather", "alltoall"):
            for algo in algorithms(coll).values():
                clean_t = algo.estimate(machine, 4096)
                bad_t = algo.estimate(congested, 4096)
                assert bad_t > clean_t, f"{coll}/{algo.name}"

    def test_congestion_can_move_the_crossover(self, machine):
        """Lower effective bandwidth pushes the latency/bandwidth
        crossover to smaller messages: somewhere in the sweep the
        oracle decision flips."""
        congested = machine_with_conditions(
            machine, NetworkConditions(background_load=0.8))
        oracle = OracleSelector()
        flips = 0
        for coll in ("allgather", "alltoall"):
            for msg in (2**k for k in range(21)):
                a = oracle.select(coll, machine, msg)
                b = oracle.select(coll, congested, msg)
                flips += a != b
        assert flips >= 1, "conditions never changed the best algorithm"

    def test_original_machine_unmodified(self, machine):
        before = machine.params.beta_inter_Bps
        machine_with_conditions(machine,
                                NetworkConditions(background_load=0.9))
        assert machine.params.beta_inter_Bps == before


class TestFaultProfile:
    def test_clean_baseline(self):
        assert NO_FAULTS.is_clean
        assert not NO_FAULTS.attempt_fails("any", "key", attempt=1)
        assert not NO_FAULTS.attempt_stalls("any", "key", attempt=1)
        assert NO_FAULTS.stall_multiplier("any", "key") == 1.0
        assert not FaultProfile(failure_rate=0.5).is_clean

    @pytest.mark.parametrize("kwargs", [
        {"failure_rate": -0.1},
        {"failure_rate": 1.1},
        {"stall_rate": 2.0},
        {"stall_factor": 0.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultProfile(**kwargs)

    def test_deterministic_per_key_and_attempt(self):
        f = FaultProfile(failure_rate=0.5, seed=7)
        first = [f.attempt_fails("RI", "allgather", k, attempt=1)
                 for k in range(50)]
        assert first == [f.attempt_fails("RI", "allgather", k, attempt=1)
                         for k in range(50)]
        assert any(first) and not all(first)  # rate, not certainty

    def test_retry_gets_fresh_luck(self):
        """The attempt number is part of the seed key, so a failed
        attempt does not doom its retries."""
        f = FaultProfile(failure_rate=0.5, seed=0)
        outcomes = {f.attempt_fails("cfg", attempt=n)
                    for n in range(1, 30)}
        assert outcomes == {True, False}

    def test_observed_rate_matches_configured(self):
        f = FaultProfile(failure_rate=0.2, seed=3)
        n = 2000
        hits = sum(f.attempt_fails("k", i, attempt=1) for i in range(n))
        assert 0.15 < hits / n < 0.25

    def test_stall_multiplier_inflates(self):
        f = FaultProfile(stall_rate=1.0, stall_factor=20.0, seed=1)
        m = f.stall_multiplier("cfg", attempt=1)
        assert m >= 20.0

    def test_seed_changes_fault_pattern(self):
        a = FaultProfile(failure_rate=0.5, seed=0)
        b = FaultProfile(failure_rate=0.5, seed=1)
        pa = [a.attempt_fails(i, attempt=1) for i in range(64)]
        pb = [b.attempt_fails(i, attempt=1) for i in range(64)]
        assert pa != pb

    def test_cache_key_distinguishes_profiles(self):
        assert FaultProfile(failure_rate=0.2).cache_key() != \
            FaultProfile(failure_rate=0.3).cache_key()
        assert FaultProfile(seed=0).cache_key() != \
            FaultProfile(seed=1).cache_key()
