"""Tests for online inference, tuning tables, and the Fig. 4 framework."""

import json

import pytest

from repro.core.framework import PmlMpiFramework, offline_train
from repro.core.inference import generate_tuning_table, inference_latency
from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import TableSelector, algorithm_names


@pytest.fixture(scope="module")
def selector(mini_dataset):
    return offline_train(mini_dataset)


class TestPretrainedSelector:
    def test_select_returns_valid_algorithm(self, selector):
        machine = Machine(get_cluster("Haswell"), 2, 8)
        for collective in ("allgather", "alltoall"):
            algo = selector.select(collective, machine, 1024)
            assert algo in algorithm_names(collective)

    def test_unknown_collective_raises(self, selector):
        machine = Machine(get_cluster("RI"), 2, 2)
        with pytest.raises(KeyError, match="no pre-trained model"):
            selector.select("bcast", machine, 8)

    def test_generalizes_to_unseen_cluster(self, selector):
        """The mini dataset has no Sierra data; selection must still
        work purely from Sierra's hardware features."""
        machine = Machine(get_cluster("Sierra"), 4, 16)
        algo = selector.select("allgather", machine, 1 << 16)
        assert algo in algorithm_names("allgather")

    def test_describe_mentions_family(self, selector):
        assert "rf" in selector.describe()


class TestGenerateTuningTable:
    def test_covers_grid(self, selector):
        spec = get_cluster("RI")
        report = generate_tuning_table(selector, spec)
        # 1 node setting x 2 ppn x 21 sizes x 2 collectives
        assert report.n_configs == 84
        assert report.wall_seconds > 0
        for coll in ("allgather", "alltoall"):
            algo = report.table.lookup(coll, 2, 4, 1024)
            assert algo in algorithm_names(coll)

    def test_nearest_config_lookup(self, selector):
        spec = get_cluster("RI")
        table = generate_tuning_table(selector, spec).table
        # (3 nodes, 5 ppn) was never sampled; lookup falls back to the
        # nearest grid point instead of failing.
        algo = table.lookup("allgather", 3, 5, 2048)
        assert algo in algorithm_names("allgather")

    def test_json_roundtrip(self, selector, tmp_path):
        from repro.smpi import TuningTable

        spec = get_cluster("Ray")
        table = generate_tuning_table(selector, spec).table
        path = table.save(tmp_path / "ray.json")
        loaded = TuningTable.load(path)
        assert loaded.cluster == "Ray"
        assert loaded.lookup("alltoall", 4, 8, 64) == \
            table.lookup("alltoall", 4, 8, 64)
        # The artifact is real JSON (the paper stores JSON tables).
        payload = json.loads(path.read_text())
        assert payload["cluster"] == "Ray"

    def test_inference_latency_sub_second(self, selector):
        """The paper's central overhead claim: generating a cluster's
        full tuning table takes well under a second."""
        t = inference_latency(selector, get_cluster("Frontera"),
                              repeats=3)
        assert t < 1.0


class TestFramework:
    def test_first_setup_creates_table(self, selector, tmp_path):
        fw = PmlMpiFramework(selector, tmp_path)
        spec = get_cluster("RI")
        assert not fw.has_table("RI")
        runtime_selector = fw.setup_cluster(spec)
        assert isinstance(runtime_selector, TableSelector)
        assert fw.has_table("RI")

    def test_second_setup_reuses_table(self, selector, tmp_path):
        fw = PmlMpiFramework(selector, tmp_path)
        spec = get_cluster("RI")
        fw.setup_cluster(spec)
        path = fw.table_path("RI")
        before = path.read_text()
        fw.setup_cluster(spec)  # must load, not regenerate
        assert path.read_text() == before

    def test_force_regenerate(self, selector, tmp_path):
        fw = PmlMpiFramework(selector, tmp_path)
        spec = get_cluster("RI")
        fw.setup_cluster(spec)
        path = fw.table_path("RI")
        path.write_text(path.read_text())  # touch
        sel = fw.setup_cluster(spec, force_regenerate=True)
        assert isinstance(sel, TableSelector)

    def test_wrong_cluster_table_quarantined_and_regenerated(
            self, selector, tmp_path):
        """A table from another cluster must not brick compile-time
        setup: it is quarantined and a fresh table is generated."""
        from repro.core import RUNG_REGENERATED

        fw = PmlMpiFramework(selector, tmp_path)
        fw.setup_cluster(get_cluster("RI"))
        # Corrupt: rename RI's table to Ray's slot.
        fw.table_path("Ray").write_text(
            fw.table_path("RI").read_text())
        sel = fw.setup_cluster(get_cluster("Ray"))
        assert isinstance(sel, TableSelector)
        assert sel.table.cluster == "Ray"
        report = fw.last_report
        assert report.rung == RUNG_REGENERATED
        assert any("belongs to" in e for e in report.errors)
        quarantined = [p for p in tmp_path.iterdir()
                       if ".corrupt" in p.name]
        assert len(quarantined) == 1
        assert str(quarantined[0]) in report.quarantined

    def test_selector_consistency(self, selector, tmp_path):
        """Table lookups must reproduce direct model predictions on the
        sampled grid."""
        fw = PmlMpiFramework(selector, tmp_path)
        spec = get_cluster("Ray")
        table_sel = fw.setup_cluster(spec)
        machine = Machine(spec, 4, 8)
        for msg in (1, 512, 1 << 20):
            direct = selector.select("alltoall", machine, msg)
            via_table = table_sel.select("alltoall", machine, msg)
            assert direct == via_table


class TestEmptyGridRegression:
    """An explicitly-passed empty grid must raise, never silently fall
    back to the cluster's default grid (regression: ``or``-based
    fallbacks treated ``()`` as "use the default")."""

    @pytest.mark.parametrize("kwargs", [
        {"node_counts": ()},
        {"ppn_values": ()},
        {"msg_sizes": ()},
        {"node_counts": (), "ppn_values": (), "msg_sizes": ()},
    ])
    def test_empty_grid_raises(self, selector, kwargs):
        spec = get_cluster("RI")
        with pytest.raises(ValueError, match="no valid configurations"):
            generate_tuning_table(selector, spec, **kwargs)

    def test_explicit_grid_still_honored(self, selector):
        spec = get_cluster("RI")
        report = generate_tuning_table(selector, spec,
                                       collectives=("allgather",),
                                       node_counts=(2,),
                                       ppn_values=(4,),
                                       msg_sizes=(64, 4096))
        assert report.n_configs == 2


class TestCrossCheckDeployment:
    """``pml-mpi doctor --bundle``: bundle vs. tuning-table consistency."""

    @pytest.fixture()
    def deployment(self, selector, tmp_path):
        from repro.core.bundle import save_selector

        bundle = tmp_path / "bundle.json"
        save_selector(selector, bundle)
        framework = PmlMpiFramework(selector, tmp_path / "tables")
        framework.setup_cluster(get_cluster("RI"))
        return bundle, tmp_path / "tables", framework

    def test_consistent_deployment_is_healthy(self, deployment):
        from repro.core.framework import cross_check_deployment

        bundle, tables, _ = deployment
        report = cross_check_deployment(bundle, tables)
        assert report.healthy, report.errors
        statuses = {c.kind: c.status for c in report.checks}
        assert statuses["bundle"] == "ok"
        assert statuses["cross-check"] == "ok"
        assert report.counters["cross_checked_tables"] == 1

    def test_misfiled_cluster_flagged(self, deployment):
        from repro.core.framework import cross_check_deployment

        bundle, tables, framework = deployment
        path = framework.table_path("RI")
        (tables / "Haswell.tuning.json").write_text(path.read_text())
        report = cross_check_deployment(bundle, tables)
        assert not report.healthy
        assert any("belongs to cluster" in e for e in report.errors)

    def test_collective_without_model_flagged(self, deployment,
                                              tmp_path):
        from repro.core.bundle import save_selector
        from repro.core.framework import cross_check_deployment
        from repro.core.inference import PretrainedSelector

        bundle, tables, _ = deployment
        slim = PretrainedSelector(
            {"allgather": _load_bundle_model(bundle, "allgather")})
        slim_path = tmp_path / "slim.json"
        save_selector(slim, slim_path)
        report = cross_check_deployment(slim_path, tables)
        assert not report.healthy
        assert any("no alltoall model" in e for e in report.errors)

    def test_foreign_label_flagged(self, deployment, tmp_path):
        """A table entry using a label the fitted classifier could
        never emit (tampered / hand-edited table) fails the check."""
        import numpy as np

        from repro.core.bundle import load_selector, save_selector
        from repro.core.framework import cross_check_deployment
        from repro.smpi.tuning import TuningTable

        bundle, tables, framework = deployment
        table = TuningTable.load(framework.table_path("RI"))
        used = {a for bps in table.entries["allgather"].values()
                for _, a in bps}
        victim = sorted(used)[0]
        slim = load_selector(bundle)
        model = slim.models["allgather"].model
        model.classes_ = np.array(
            [c for c in model.classes_ if str(c) != victim])
        slim_path = tmp_path / "slim-labels.json"
        save_selector(slim, slim_path)
        report = cross_check_deployment(slim_path, tables)
        assert not report.healthy
        assert any("cannot emit" in e and victim in e
                   for e in report.errors)

    def test_corrupt_bundle_reported_not_raised(self, deployment):
        from repro.core.framework import cross_check_deployment

        bundle, tables, _ = deployment
        bundle.write_text("{not json")
        report = cross_check_deployment(bundle, tables)
        assert not report.healthy
        assert report.checks[0].status == "corrupt"

    def test_doctor_directory_folds_cross_check_in(self, deployment):
        from repro.core.framework import doctor_directory

        bundle, tables, _ = deployment
        report = doctor_directory(tables, bundle=bundle)
        assert report.healthy
        assert any(c.kind == "cross-check" for c in report.checks)
        assert report.counters["cross_checked_tables"] == 1


def _load_bundle_model(bundle_path, collective):
    from repro.core.bundle import load_selector

    return load_selector(bundle_path).models[collective]
