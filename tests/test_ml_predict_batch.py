"""Differential tests: every classifier's ``predict_batch`` must be
element-wise identical to its scalar ``predict`` — per-row and whole
matrix — across seeded random inputs and degenerate shapes (N=0, N=1,
duplicate rows).  This is the contract the serving layer's vectorized
path stands on."""

import numpy as np
import pytest

from repro.core.training import train_model
from repro.ml import (
    SVC,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    RandomForestClassifier,
)
from repro.ml.model_selection import GridSearchCV
from repro.ml.tree import PackedTrees

N_FEATURES = 6


def _make_data(seed, n=120, classes=4):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, N_FEATURES))
    y = np.array([f"algo_{i}" for i in rng.integers(0, classes, n)])
    return X, y


def _fitted(family, seed=0):
    X, y = _make_data(seed)
    model = {
        "rf": lambda: RandomForestClassifier(n_estimators=20,
                                             random_state=seed),
        "gb": lambda: GradientBoostingClassifier(n_estimators=10,
                                                 max_depth=2,
                                                 random_state=seed),
        "knn": lambda: KNeighborsClassifier(n_neighbors=3),
        "svm": lambda: SVC(random_state=seed),
    }[family]()
    return model.fit(X, y)


FAMILIES = ("rf", "gb", "knn", "svm")


@pytest.mark.parametrize("family", FAMILIES)
class TestBatchScalarAgreement:
    def test_random_matrices(self, family):
        model = _fitted(family)
        for seed in range(3):
            X = np.random.default_rng(100 + seed).normal(
                size=(57, N_FEATURES))
            batch = model.predict_batch(X)
            assert np.array_equal(batch, model.predict(X))
            scalar = np.array([model.predict(row[None, :])[0]
                               for row in X])
            assert np.array_equal(batch, scalar)

    def test_empty_batch(self, family):
        model = _fitted(family)
        out = model.predict_batch(np.empty((0, N_FEATURES)))
        assert len(out) == 0

    def test_single_row(self, family):
        model = _fitted(family)
        X = np.random.default_rng(7).normal(size=(1, N_FEATURES))
        assert np.array_equal(model.predict_batch(X), model.predict(X))

    def test_duplicate_rows(self, family):
        model = _fitted(family)
        row = np.random.default_rng(8).normal(size=(1, N_FEATURES))
        X = np.repeat(row, 5, axis=0)
        out = model.predict_batch(X)
        assert len(set(out.tolist())) == 1
        assert np.array_equal(out, model.predict(X))

    def test_unfitted_raises(self, family):
        model = {
            "rf": RandomForestClassifier, "gb": GradientBoostingClassifier,
            "knn": KNeighborsClassifier, "svm": SVC,
        }[family]()
        with pytest.raises(RuntimeError):
            model.predict_batch(np.zeros((2, N_FEATURES)))


class TestEnsembleInternals:
    def test_forest_proba_bit_identical(self):
        model = _fitted("rf")
        X = np.random.default_rng(9).normal(size=(31, N_FEATURES))
        assert np.array_equal(model.predict_proba_batch(X),
                              model.predict_proba(X))

    def test_boosting_scores_bit_identical(self):
        model = _fitted("gb")
        X = np.random.default_rng(10).normal(size=(31, N_FEATURES))
        assert np.array_equal(model.decision_function_batch(X),
                              model.decision_function(X))

    def test_packed_arena_matches_per_tree_apply(self):
        model = _fitted("rf")
        X = np.random.default_rng(11).normal(size=(23, N_FEATURES))
        packed = PackedTrees(model.estimators_)
        leaves = packed.apply(X)
        assert leaves.shape == (len(X), len(model.estimators_))
        for t, tree in enumerate(model.estimators_):
            assert np.array_equal(leaves[:, t] - packed.roots_[t],
                                  tree.apply(X))

    def test_packed_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            PackedTrees([])
        a = _fitted("rf").estimators_[0]
        X, y = _make_data(0)
        other = RandomForestClassifier(n_estimators=1, random_state=0)
        other.fit(X[:, :4], y)
        with pytest.raises(ValueError):
            PackedTrees([a, other.estimators_[0]])

    def test_packed_cache_invalidated_by_refit(self):
        model = _fitted("rf")
        X = np.random.default_rng(12).normal(size=(5, N_FEATURES))
        model.predict_batch(X)  # builds the arena
        assert model._packed_ is not None
        X2, y2 = _make_data(99)
        model.fit(X2, y2)
        assert model._packed_ is None
        assert np.array_equal(model.predict_batch(X),
                              model.predict(X))

    def test_packed_shape_validation(self):
        model = _fitted("rf")
        with pytest.raises(ValueError):
            model.predict_batch(np.zeros((3, N_FEATURES + 1)))
        with pytest.raises(ValueError):
            model.predict_batch(np.zeros(N_FEATURES))


class TestWrapperBatchPaths:
    def test_grid_search_batch(self):
        X, y = _make_data(3)
        search = GridSearchCV(
            RandomForestClassifier(n_estimators=5, random_state=0),
            {"max_depth": [2, 4]}, scoring="accuracy", cv=2)
        search.fit(X, y)
        Xt = np.random.default_rng(4).normal(size=(19, N_FEATURES))
        assert np.array_equal(search.predict_batch(Xt),
                              search.predict(Xt))

    def test_grid_search_unfitted_raises(self):
        search = GridSearchCV(
            RandomForestClassifier(n_estimators=2, random_state=0),
            {"max_depth": [2]})
        with pytest.raises(RuntimeError):
            search.predict_batch(np.zeros((1, N_FEATURES)))

    @pytest.mark.parametrize("family",
                             ("rf", "gradientboost", "knn", "svm"))
    def test_trained_model_batch(self, mini_dataset, family):
        params = {"rf": {"n_estimators": 8},
                  "gradientboost": {"n_estimators": 4}}.get(family)
        model = train_model(mini_dataset, "allgather", family=family,
                            params=params)
        sub = mini_dataset.filter(collective="allgather")
        X_full = sub.feature_matrix()
        assert np.array_equal(model.predict_batch(X_full),
                              model.predict(X_full))
