"""Property-based fuzzing of the serving stack (stdlib ``random``,
fixed seeds — no external fuzzing dependency).

Three families of invariants:

* **TuningTable determinism** — a table built from any permutation of
  the same (unique-keyed) entries answers every lookup identically.
* **Counter partitions** — the LRU memo's hits + misses equals its
  gets, and the service's ``queries == cache_hits + deduped +
  cache_misses`` partition survives arbitrary mixes of valid,
  duplicate, and malformed queries.
* **Guard feasibility** — every decision a guarded batch returns for a
  valid query names an algorithm feasible on that query's communicator
  shape, whatever garbage the inner selector emits.
"""

import random

import pytest

from repro.hwmodel import get_cluster
from repro.serve import (
    ACTION_INVALID,
    LRUCache,
    SelectionQuery,
    SelectionService,
)
from repro.simcluster.machine import Machine
from repro.smpi.collectives import base
from repro.smpi.guard import GuardedSelector
from repro.smpi.heuristics import (
    ALL_COLLECTIVES,
    AlgorithmSelector,
    MvapichDefaultSelector,
    validate_query,
)
from repro.smpi.tuning import TuningTable

SEEDS = (0, 1, 2)


# -- TuningTable permutation determinism ------------------------------------

def _random_entries(rng, n=60):
    """Unique-keyed random (collective, nodes, ppn, msg, algo) entries.

    Keys must be unique: TuningTable.add is last-write-wins, so two
    permutations of entries with a repeated key could legitimately
    answer differently — that would test dict semantics, not lookup
    determinism."""
    entries = {}
    while len(entries) < n:
        collective = rng.choice(ALL_COLLECTIVES)
        key = (collective, 2 ** rng.randint(0, 5),
               2 ** rng.randint(0, 5), 2 ** rng.randint(3, 22))
        algos = base.algorithm_names(collective)
        entries[key] = rng.choice(sorted(algos))
    return [(c, n_, p, m, a) for (c, n_, p, m), a in entries.items()]


def _build_table(entries):
    table = TuningTable(cluster="fuzz")
    for collective, nodes, ppn, msg, algo in entries:
        table.add(collective, nodes, ppn, msg, algo)
    return table


@pytest.mark.parametrize("seed", SEEDS)
def test_tuning_table_lookup_permutation_invariant(seed):
    rng = random.Random(seed)
    entries = _random_entries(rng)
    probes = [(rng.choice(ALL_COLLECTIVES), rng.randint(1, 40),
               rng.randint(1, 40), rng.randint(1, 2 ** 24))
              for _ in range(200)]
    reference = _build_table(entries)
    expected = [reference.lookup(*p) for p in probes]
    for _ in range(4):
        shuffled = list(entries)
        rng.shuffle(shuffled)
        table = _build_table(shuffled)
        assert [table.lookup(*p) for p in probes] == expected


# -- LRU memo counter partition ---------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_lru_counters_partition_and_model_agreement(seed):
    rng = random.Random(seed)
    capacity = rng.randint(1, 16)
    cache = LRUCache(capacity)
    model = {}  # insertion-ordered reference model of the live keys
    gets = evictions = 0
    for _ in range(800):
        key = rng.randint(0, 30)
        if rng.random() < 0.5:
            gets += 1
            expected = model.get(key)
            assert cache.get(key) == expected
            if expected is not None:  # LRU refresh in the model too
                model.pop(key)
                model[key] = expected
        else:
            if key in model:
                model.pop(key)
            model[key] = key * 7
            cache.put(key, key * 7)
            if len(model) > capacity:
                oldest = next(iter(model))
                model.pop(oldest)
                evictions += 1
    assert cache.hits + cache.misses == gets
    assert len(cache) == len(model) <= capacity
    assert cache.evictions == evictions
    assert list(cache.keys()) == list(model)


# -- Service counter partition under adversarial batches --------------------

def _random_queries(rng, n):
    queries = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.15:  # malformed in some way
            queries.append(SelectionQuery(
                rng.choice([rng.choice(ALL_COLLECTIVES), "nope"]),
                rng.choice([0, -1, 2, "two"]),
                rng.choice([0, 4, 2.5]),
                rng.choice([-8, 0, 64, True, "big"])))
        else:
            queries.append(SelectionQuery(
                rng.choice(ALL_COLLECTIVES), rng.randint(1, 2),
                2 ** rng.randint(1, 4), 2 ** rng.randint(3, 20)))
    return queries


@pytest.mark.parametrize("seed", SEEDS)
def test_service_counter_partition(seed):
    rng = random.Random(seed)
    service = SelectionService(MvapichDefaultSelector(),
                               get_cluster("Ray"),
                               cache_size=rng.randint(4, 64))
    total = 0
    for _ in range(10):
        batch = _random_queries(rng, rng.randint(0, 60))
        total += len(batch)
        decisions = service.select_batch(batch)
        assert len(decisions) == len(batch)
        c = service.counters
        assert c["queries"] == total
        assert c["queries"] == (c["cache_hits"] + c["deduped"]
                                + c["cache_misses"])
        assert c["invalid"] <= c["cache_misses"]
        assert c["evictions"] == service.cache.evictions


# -- Guard feasibility invariant --------------------------------------------

class _AdversarialSelector(AlgorithmSelector):
    """Emits unknown labels, infeasible choices, junk types, and
    exceptions at seeded random — batched and scalar alike."""

    def __init__(self, seed):
        self.rng = random.Random(seed)

    def _one(self, collective):
        roll = self.rng.random()
        if roll < 0.2:
            raise RuntimeError("flaky model")
        if roll < 0.4:
            return "no_such_algorithm"
        if roll < 0.5:
            return 12345  # junk type
        return self.rng.choice(sorted(
            base.algorithm_names(collective)))  # maybe infeasible

    def select(self, collective, machine, msg_size):
        validate_query(collective, machine, msg_size)
        return self._one(collective)

    def select_batch(self, queries):
        if self.rng.random() < 0.3:
            raise RuntimeError("vectorized path down")
        return [self.select(*q) for q in queries]


@pytest.mark.parametrize("seed", SEEDS)
def test_every_batch_decision_is_feasible(seed):
    rng = random.Random(seed)
    spec = get_cluster("Ray")
    guard = GuardedSelector(_AdversarialSelector(seed))
    for _ in range(6):
        queries = []
        for _ in range(rng.randint(1, 40)):
            machine = Machine(spec, rng.randint(1, 2),
                              2 ** rng.randint(0, 4))
            if machine.p < 2:
                machine = Machine(spec, 2, 2)
            queries.append((rng.choice(ALL_COLLECTIVES), machine,
                            2 ** rng.randint(3, 20)))
        decisions = guard.explain_batch(queries)
        for (collective, machine, _), decision in zip(queries,
                                                      decisions):
            assert base.is_feasible(collective, decision.algorithm,
                                    machine.p), \
                (decision, machine.nodes, machine.ppn)
        c = guard.counters
        assert c["queries"] == (c["invalid"] + c["served_model"]
                                + c["remapped"] + c["ood_fallback"]
                                + c["breaker_fallback"]
                                + c["error_fallback"])
