"""Differential hardening of the columnar serving pipeline.

The contract under test: :meth:`SelectionService.select_block` is
*decision-for-decision identical* to :meth:`select_batch` — same
algorithm/action/detail/cached per row, same ``serve.*`` counter
partition, same ``guard.*`` counter partition, same breaker state —
for every batch shape we can throw at it: mixed valid/invalid/OOD/
infeasible rows in one block, NumPy-typed fields, bools, junk objects,
empty blocks, single rows, and all-duplicate blocks.

Every test runs the same inputs through two independently constructed
services (one per path) and compares exhaustively; nothing here
depends on which path is "right" — the scalar walk is the oracle.
"""

import random

import numpy as np
import pytest

from repro.core.inference import PretrainedSelector
from repro.core.training import train_model
from repro.hwmodel import get_cluster
from repro.serve import (
    DecisionBlock,
    QueryBlock,
    SelectionQuery,
    SelectionService,
    decisions_to_jsonl,
    quantize_msg_size,
)
from repro.serve.columnar import QUANTIZE_MAX, quantize_block
from repro.smpi.guard import COUNTER_KEYS, GuardedSelector
from repro.smpi.heuristics import (
    FixedSelector,
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
)


@pytest.fixture(scope="module")
def ri_spec():
    return get_cluster("RI")


def _pair(make_selector, spec, cache_size=4096, quantize=True):
    """Two identical services: drive one scalar, one columnar."""
    a = SelectionService(make_selector(), spec, cache_size=cache_size,
                         quantize=quantize)
    b = SelectionService(make_selector(), spec, cache_size=cache_size,
                         quantize=quantize)
    return a, b


def _assert_identical(scalar_svc, block_svc, batches):
    """Feed *batches* to both services and compare everything."""
    for batch in batches:
        expected = scalar_svc.select_batch(list(batch))
        got = block_svc.select_block(list(batch)).to_decisions()
        assert len(got) == len(expected)
        for q, x, y in zip(batch, expected, got):
            assert (x.algorithm, x.action, x.detail, x.cached) == \
                (y.algorithm, y.action, y.detail, y.cached), q
            assert x.collective == y.collective and x.nodes == y.nodes \
                and x.ppn == y.ppn and x.msg_size == y.msg_size, q
    assert scalar_svc.counters == block_svc.counters
    assert scalar_svc.guard.counters == block_svc.guard.counters
    assert scalar_svc.guard.breaker.state == \
        block_svc.guard.breaker.state
    for svc in (scalar_svc, block_svc):
        c = svc.counters
        assert c["queries"] == c["cache_hits"] + c["deduped"] \
            + c["cache_misses"]
        assert c["invalid"] <= c["cache_misses"]
        g = svc.guard.counters
        assert g["queries"] == sum(g[k] for k in COUNTER_KEYS[1:7])


# ---------------------------------------------------------------------------
# Deterministic adversarial blocks
# ---------------------------------------------------------------------------

class TestAdversarialBlocks:
    def test_mixed_everything_single_block(self, ri_spec):
        """One block holding every row class at once: served, duplicate,
        NumPy-typed, bool-typed, out-of-range, unknown collective, and
        object junk."""
        batch = [
            SelectionQuery("allgather", 2, 8, 4096),          # model
            SelectionQuery("allgather", 2, 8, 4096),          # dup
            SelectionQuery("allgather", 2, 8, 4100),          # quantize-dup
            SelectionQuery("allgather", np.int64(2), np.int64(8),
                           np.int64(4096)),                   # np dup
            SelectionQuery("alltoall", 1, 16, 64),            # model
            SelectionQuery("allreduce", 2, 3, 1024),          # model
            SelectionQuery("bogus", 2, 8, 64),                # unknown
            SelectionQuery("allgather", 99, 8, 64),           # bad nodes
            SelectionQuery("allgather", 2, 0, 64),            # bad ppn
            SelectionQuery("allgather", 2, 8, -5),            # bad size
            SelectionQuery("allgather", True, 8, 64),         # bool nodes
            SelectionQuery("allgather", 2, 8, False),         # bool size
            SelectionQuery("allgather", None, 8, 64),         # junk
            SelectionQuery("allgather", 2, "8", 64),          # junk
            SelectionQuery(42, 2, 8, 64),                     # junk coll
            SelectionQuery("allgather", 2, 8, 10**25),        # overflow
        ]
        a, b = _pair(MvapichDefaultSelector, ri_spec)
        _assert_identical(a, b, [batch])
        assert a.counters["invalid"] > 0

    @pytest.mark.parametrize("quantize", (True, False))
    def test_empty_single_and_all_duplicates(self, ri_spec, quantize):
        q = SelectionQuery("bcast", 1, 4, 32768)
        a, b = _pair(OpenMpiDefaultSelector, ri_spec, quantize=quantize)
        _assert_identical(a, b, [[], [q], [q] * 50])
        # all-duplicate block: one miss (already resolved), rest dedup
        # or hits depending on the earlier batches — partition checked
        # inside _assert_identical either way.
        assert a.counters["queries"] == 51

    def test_numpy_typed_fields_share_keys_with_plain_ints(self, ri_spec):
        """np.integer fields must land on the same memo entries as the
        equal plain ints — across both paths and both directions."""
        plain = SelectionQuery("allgather", 2, 8, 1000)
        typed = SelectionQuery("allgather", np.int64(2), np.int32(8),
                               np.int64(1000))
        svc = SelectionService(MvapichDefaultSelector(), ri_spec,
                               cache_size=64)
        first = svc.select_batch([plain])[0]
        assert first.cached is False
        via_block = svc.select_block([typed]).to_decisions()[0]
        assert via_block.cached is True
        assert via_block.algorithm == first.algorithm
        assert svc.counters["cache_hits"] == 1

    def test_infeasible_predictions_and_breaker_replay(self, ri_spec):
        """Valid-but-infeasible predictions trip the guard per unique
        key; once the breaker opens, refusals replay per row — both
        must match the scalar ladder exactly."""
        rng = random.Random(5)
        mk = lambda: GuardedSelector(
            FixedSelector("allgather", "recursive_doubling"))
        a, b = _pair(mk, ri_spec, quantize=False)
        batches = [
            [SelectionQuery("allgather", 1, 3, rng.randint(1, 10**6))
             for _ in range(rng.randint(5, 60))]
            for _ in range(6)
        ]
        _assert_identical(a, b, batches)
        assert a.guard.breaker.state == "open"
        assert a.guard.counters["breaker_fallback"] > 0
        assert a.guard.counters["remapped"] > 0

    def test_cross_path_memo_interop(self, ri_spec):
        """A key resolved by one path is a hit for the other."""
        q = SelectionQuery("alltoall", 2, 8, 2048)
        svc = SelectionService(MvapichDefaultSelector(), ri_spec,
                               cache_size=64)
        d1 = svc.select_block([q]).to_decisions()[0]
        assert d1.cached is False
        d2 = svc.select_batch([q])[0]
        assert d2.cached is True
        assert d2.algorithm == d1.algorithm
        assert d2.detail == d1.detail

    def test_records_and_queries_agree(self, ri_spec):
        """The daemon's raw-dict ingestion is the same pipeline."""
        records = [
            {"collective": "allgather", "nodes": 2, "ppn": 8,
             "msg_size": 4096},
            {"collective": "bogus", "nodes": 2, "ppn": 8, "msg_size": 1},
            {"collective": "bcast", "nodes": 1, "ppn": 4,
             "msg_size": 123},
        ]
        queries = [SelectionQuery(r["collective"], r["nodes"], r["ppn"],
                                  r["msg_size"]) for r in records]
        a, b = _pair(MvapichDefaultSelector, ri_spec)
        da = a.select_block(queries).to_dicts()
        db = b.select_block(records).to_dicts()
        assert da == db
        assert a.counters == b.counters

    def test_jsonl_byte_identical_on_clean_batch(self, ri_spec):
        """For JSON-shaped inputs (the daemon's case) the serialized
        decisions are byte-identical between paths."""
        batch = [SelectionQuery("allreduce", 2, 8, m)
                 for m in (1, 64, 1000, 1024, 1100, 2**18)]
        batch += [SelectionQuery("bogus", 1, 1, 1),
                  SelectionQuery("allreduce", 0, 8, 64)]
        a, b = _pair(MvapichDefaultSelector, ri_spec)
        assert decisions_to_jsonl(a.select_batch(list(batch))) == \
            decisions_to_jsonl(b.select_block(list(batch)).to_decisions())


# ---------------------------------------------------------------------------
# Seeded fuzz across both heuristic families
# ---------------------------------------------------------------------------

JUNK = (None, "x", 3.5, -1, 0, True, False, 10**25, -(10**25), "8")
COLLECTIVES = ("allgather", "alltoall", "allreduce", "bcast",
               "reduce_scatter")


def _random_batch(rng, n):
    batch = []
    for _ in range(n):
        if rng.random() < 0.25:
            batch.append(SelectionQuery(
                rng.choice(COLLECTIVES + ("bogus", 42)),
                rng.choice(JUNK + (1, 2, np.int64(2))),
                rng.choice(JUNK + (1, 8, np.int64(16))),
                rng.choice(JUNK + (64, np.int64(1024)))))
        else:
            batch.append(SelectionQuery(
                rng.choice(COLLECTIVES), rng.randint(1, 3),
                rng.randint(1, 20),
                rng.choice([1, 64, 1000, 1024, 4096, 2**18,
                            rng.randint(1, 10**7)])))
    return batch


class TestFuzzDifferential:
    @pytest.mark.parametrize("make_selector,quantize", (
        (MvapichDefaultSelector, True),
        (MvapichDefaultSelector, False),
        (OpenMpiDefaultSelector, True),
    ))
    def test_heuristic_batches(self, ri_spec, make_selector, quantize):
        rng = random.Random(13)
        a, b = _pair(make_selector, ri_spec, quantize=quantize)
        batches = [_random_batch(rng, rng.randint(0, 200))
                   for _ in range(5)]
        _assert_identical(a, b, batches)

    def test_pretrained_with_ood_and_missing_models(self, ri_spec,
                                                    mini_dataset):
        """Model path + OOD envelope routing + error fallback (queries
        for collectives the bundle lacks raise inside the inner
        selector) — all in the same blocks."""
        def mk():
            models = {c: train_model(mini_dataset, c, seed=0,
                                     params={"n_estimators": 4})
                      for c in ("allgather", "alltoall")}
            return GuardedSelector(PretrainedSelector(models))

        rng = random.Random(29)
        a, b = _pair(mk, ri_spec, cache_size=8192)
        batches = []
        for _ in range(4):
            batch = _random_batch(rng, rng.randint(1, 150))
            # far-OOD shapes/sizes relative to the trained grid
            batch += [SelectionQuery("allgather", 1, 1, 2**30),
                      SelectionQuery("alltoall", 2, 16, 1)]
            batches.append(batch)
        _assert_identical(a, b, batches)
        assert a.guard.counters["ood_fallback"] > 0
        assert a.guard.counters["error_fallback"] > 0


# ---------------------------------------------------------------------------
# Columnar building blocks
# ---------------------------------------------------------------------------

class TestQuantizeBlock:
    def test_matches_scalar_exhaustively_near_boundaries(self):
        import math
        vals = [1, 2, 3, 5, 6, 7, 1023, 1024, 1025,
                398065729532861, 199032864766430,
                QUANTIZE_MAX, QUANTIZE_MAX - 1]
        vals += [(1 << e) + d for e in range(1, 62) for d in (-1, 0, 1)]
        vals += [math.isqrt(1 << (2 * e + 1)) + d
                 for e in range(62) for d in (-1, 0, 1, 2)]
        vals = [v for v in vals if v >= 1]
        arr = np.array(vals, dtype=np.int64)
        got = quantize_block(arr)
        for v, g in zip(vals, got.tolist()):
            assert g == quantize_msg_size(v), v

    def test_random_values_match_scalar(self):
        rng = random.Random(0)
        vals = [rng.randrange(1, QUANTIZE_MAX) for _ in range(20_000)]
        got = quantize_block(np.array(vals, dtype=np.int64))
        for v, g in zip(vals, got.tolist()):
            assert g == quantize_msg_size(v), v


class TestQueryBlock:
    def test_row_classification(self):
        blk = QueryBlock.from_queries([
            SelectionQuery("allgather", 2, 8, 64),
            SelectionQuery("allgather", np.int64(2), 8, 64),
            SelectionQuery("allgather", True, 8, 64),
            SelectionQuery("bogus", 2, 8, 64),
            SelectionQuery("allgather", 2.0, 8, 64),
            SelectionQuery("allgather", 2, 8, 10**25),
        ])
        assert blk.columnar.tolist() == [True, True, True, False,
                                         False, False]
        assert blk.boolish.tolist() == [False, False, True, False,
                                        False, False]
        assert blk.needs_scalar  # positive msg_size overflow
        assert blk.nodes64[:3].tolist() == [2, 2, 1]

    def test_overflow_batch_falls_back_but_answers(self, ri_spec):
        a, b = _pair(MvapichDefaultSelector, ri_spec)
        batch = [SelectionQuery("allgather", 2, 8, 10**25),
                 SelectionQuery("allgather", 2, 8, 64)]
        _assert_identical(a, b, [batch])

    def test_float_int_key_aliasing_falls_back(self, ri_spec):
        """4.0 == 4 shares a scalar memo key; the block detects the
        cross-type alias and routes the batch through the scalar walk
        so first-occurrence semantics are preserved."""
        batches = [
            [SelectionQuery("allgather", 2, 8, 64),
             SelectionQuery("allgather", 2.0, 8, 64)],
            [SelectionQuery("allgather", 2.0, 8, 128),
             SelectionQuery("allgather", 2, 8, 128)],
        ]
        a, b = _pair(MvapichDefaultSelector, ri_spec)
        _assert_identical(a, b, batches)


class TestDecisionBlock:
    def test_to_dicts_matches_to_decisions(self, ri_spec):
        svc = SelectionService(MvapichDefaultSelector(), ri_spec,
                               cache_size=64)
        batch = [SelectionQuery("allgather", 2, 8, 4096),
                 SelectionQuery("bogus", 1, 1, 1)]
        block = svc.select_block(batch)
        assert isinstance(block, DecisionBlock)
        assert block.to_dicts() == [d.to_dict()
                                    for d in block.to_decisions()]
        assert block.n == 2
