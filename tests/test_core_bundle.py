"""Tests for the shippable pre-trained model bundle."""

import json

import numpy as np
import pytest

from repro.core import (
    load_selector,
    offline_train,
    save_selector,
)
from repro.hwmodel import get_cluster
from repro.simcluster import Machine


@pytest.fixture(scope="module")
def selector(mini_dataset):
    return offline_train(mini_dataset)


class TestBundle:
    def test_roundtrip_predictions(self, selector, tmp_path):
        path = save_selector(selector, tmp_path / "pml.bundle.json")
        loaded = load_selector(path)
        machine = Machine(get_cluster("Sierra"), 4, 16)
        for coll in ("allgather", "alltoall"):
            for msg in (1, 1024, 1 << 18):
                assert loaded.select(coll, machine, msg) == \
                    selector.select(coll, machine, msg)

    def test_roundtrip_metadata(self, selector, tmp_path):
        path = save_selector(selector, tmp_path / "b.json")
        loaded = load_selector(path)
        for coll, model in loaded.models.items():
            orig = selector.models[coll]
            assert model.feature_names == orig.feature_names
            assert model.family == orig.family
            np.testing.assert_allclose(model.importances_full,
                                       orig.importances_full)

    def test_bundle_is_plain_json(self, selector, tmp_path):
        path = save_selector(selector, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        assert set(payload["models"]) == {"allgather", "alltoall"}
        assert payload["bundle_version"] == 1

    def test_bad_version_rejected(self, selector, tmp_path):
        path = save_selector(selector, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        payload["bundle_version"] = 42
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="bundle version"):
            load_selector(path)

    def test_batch_matrix_predictions_survive(self, selector, tmp_path):
        """The tuning-table generation path (batch predict) must agree
        after a round trip."""
        from repro.core.inference import generate_tuning_table

        path = save_selector(selector, tmp_path / "b.json")
        loaded = load_selector(path)
        spec = get_cluster("RI")
        a = generate_tuning_table(selector, spec).table
        b = generate_tuning_table(loaded, spec).table
        assert a.to_json() == b.to_json()
