"""Tests for model serialization (the shippable artifact path)."""

import json

import numpy as np
import pytest

from repro.ml import (
    SVC,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    RandomForestClassifier,
    StandardScaler,
    dump_model,
    load_model,
    load_model_file,
    save_model,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
    return X, y


def _roundtrip(model):
    return load_model(json.loads(json.dumps(dump_model(model))))


class TestRoundtrips:
    def test_tree_classifier(self, data):
        X, y = data
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        clone = _roundtrip(tree)
        assert np.array_equal(clone.predict(X), tree.predict(X))
        np.testing.assert_allclose(clone.predict_proba(X),
                                   tree.predict_proba(X))

    def test_tree_regressor(self, data):
        X, y = data
        reg = DecisionTreeRegressor(max_depth=4).fit(X, y.astype(float))
        clone = _roundtrip(reg)
        np.testing.assert_allclose(clone.predict(X), reg.predict(X))

    def test_random_forest(self, data):
        X, y = data
        rf = RandomForestClassifier(n_estimators=8, random_state=0)
        rf.fit(X, y)
        clone = _roundtrip(rf)
        np.testing.assert_allclose(clone.predict_proba(X),
                                   rf.predict_proba(X))
        np.testing.assert_allclose(clone.feature_importances_,
                                   rf.feature_importances_)

    def test_gradient_boosting(self, data):
        X, y = data
        gb = GradientBoostingClassifier(n_estimators=6, random_state=0)
        gb.fit(X, y)
        clone = _roundtrip(gb)
        np.testing.assert_allclose(clone.decision_function(X),
                                   gb.decision_function(X))

    def test_knn(self, data):
        X, y = data
        knn = KNeighborsClassifier(3).fit(X, y)
        clone = _roundtrip(knn)
        assert np.array_equal(clone.predict(X), knn.predict(X))

    def test_svc(self, data):
        X, y = data
        svc = SVC(random_state=0, max_samples=150).fit(X, y)
        clone = _roundtrip(svc)
        np.testing.assert_allclose(clone.decision_function(X),
                                   svc.decision_function(X))

    def test_scaler(self, data):
        X, _ = data
        sc = StandardScaler().fit(X)
        clone = _roundtrip(sc)
        np.testing.assert_allclose(clone.transform(X), sc.transform(X))

    def test_string_labels_survive(self):
        X = np.array([[0.0], [10.0], [0.1], [9.9]])
        y = np.array(["ring", "bruck", "ring", "bruck"])
        rf = RandomForestClassifier(n_estimators=3, random_state=0)
        rf.fit(X, y)
        clone = _roundtrip(rf)
        assert list(clone.predict([[0.0], [10.0]])) == ["ring", "bruck"]


class TestFileIO:
    def test_save_load_file(self, data, tmp_path):
        X, y = data
        rf = RandomForestClassifier(n_estimators=4, random_state=1)
        rf.fit(X, y)
        path = save_model(rf, tmp_path / "model.json")
        clone = load_model_file(path)
        assert np.array_equal(clone.predict(X), rf.predict(X))
        # Artifact is plain JSON, no pickle.
        payload = json.loads(path.read_text())
        assert payload["model_type"] == "random_forest"


class TestErrors:
    def test_unfitted_model_rejected(self):
        with pytest.raises(AttributeError):
            dump_model(RandomForestClassifier())

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            dump_model(object())

    def test_bad_version_rejected(self, data):
        X, y = data
        blob = dump_model(DecisionTreeClassifier().fit(X, y))
        blob["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            load_model(blob)

    def test_unknown_tag_rejected(self, data):
        X, y = data
        blob = dump_model(DecisionTreeClassifier().fit(X, y))
        blob["model_type"] = "alien"
        with pytest.raises(ValueError, match="unknown model type"):
            load_model(blob)
