"""Tests for the microbenchmark driver and application proxies."""

import pytest

from repro.apps import (
    GromacsProxy,
    MiniFEProxy,
    compare_selectors,
    run_sweep,
    speedup_summary,
    strong_scaling,
)
from repro.hwmodel import get_cluster
from repro.smpi import (
    FixedSelector,
    MvapichDefaultSelector,
    OracleSelector,
    RandomSelector,
    algorithm_names,
)


@pytest.fixture(scope="module")
def frontera():
    return get_cluster("Frontera")


class TestSweep:
    def test_sweep_covers_sizes(self, frontera):
        sizes = (1, 64, 4096)
        res = run_sweep(frontera, "allgather", 2, 8,
                        MvapichDefaultSelector(), msg_sizes=sizes)
        assert tuple(res.msg_sizes()) == sizes
        assert all(t > 0 for t in res.times())
        assert all(p.algorithm in algorithm_names("allgather")
                   for p in res.points)

    def test_sweep_monotone_at_large_sizes(self, frontera):
        res = run_sweep(frontera, "alltoall", 2, 8, OracleSelector(),
                        msg_sizes=(1024, 16384, 262144))
        t = res.times()
        assert t[0] < t[1] < t[2]

    def test_algorithm_at(self, frontera):
        res = run_sweep(frontera, "allgather", 2, 4,
                        FixedSelector("allgather", "ring"),
                        msg_sizes=(64,))
        assert res.algorithm_at(64) == "ring"
        with pytest.raises(KeyError):
            res.algorithm_at(128)

    def test_oracle_never_loses(self, frontera):
        """The oracle lower-bounds every other selector per size."""
        sizes = (1, 256, 16384, 1 << 20)
        sels = {"oracle": OracleSelector(),
                "mvapich": MvapichDefaultSelector(),
                "random": RandomSelector(0)}
        out = compare_selectors(frontera, "alltoall", 2, 16, sels,
                                msg_sizes=sizes)
        for name in ("mvapich", "random"):
            assert all(o <= m * 1.0001 for o, m in
                       zip(out["oracle"].times(), out[name].times()))

    def test_speedup_summary(self, frontera):
        sizes = (1, 1024)
        base = run_sweep(frontera, "allgather", 2, 8, RandomSelector(3),
                         msg_sizes=sizes)
        prop = run_sweep(frontera, "allgather", 2, 8, OracleSelector(),
                         msg_sizes=sizes)
        s = speedup_summary(base, prop)
        assert s["total_time_speedup"] >= 1.0
        assert s["max_speedup"] >= s["mean_speedup"] >= s["min_speedup"]

    def test_summary_rejects_mismatched_sweeps(self, frontera):
        a = run_sweep(frontera, "allgather", 2, 8, OracleSelector(),
                      msg_sizes=(1,))
        b = run_sweep(frontera, "allgather", 2, 8, OracleSelector(),
                      msg_sizes=(2,))
        with pytest.raises(ValueError):
            speedup_summary(a, b)


class TestGromacs:
    def test_strong_scaling_has_knee(self, frontera):
        """Runtime falls with p, then communication wins (paper: the
        BenchMEM curve flattens/turns around ~224 processes)."""
        app = GromacsProxy()
        counts = [(1, 28), (1, 56), (2, 56), (4, 56), (8, 56), (16, 56)]
        results = strong_scaling(app, frontera, counts,
                                 MvapichDefaultSelector(), steps=10)
        totals = [r.total_s for r in results]
        assert totals[1] < totals[0]  # scales at small p
        # Communication fraction grows monotonically with p.
        fracs = [r.comm_fraction for r in results]
        assert fracs[-1] > fracs[0]

    def test_selector_changes_runtime(self, frontera):
        app = GromacsProxy()
        rnd = app.run(frontera, 4, 56, RandomSelector(1), steps=20)
        orc = app.run(frontera, 4, 56, OracleSelector(), steps=20)
        assert orc.total_s <= rnd.total_s
        assert orc.compute_s == pytest.approx(rnd.compute_s)

    def test_breakdown_sums(self, frontera):
        res = GromacsProxy().run(frontera, 2, 28, OracleSelector(),
                                 steps=5)
        assert res.total_s == pytest.approx(
            res.compute_s + res.collective_s + res.p2p_s)
        assert res.collective_s > 0
        assert any(k.startswith("alltoall@") for k in
                   res.collective_calls)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GromacsProxy(atoms=0)
        with pytest.raises(ValueError):
            GromacsProxy().run(get_cluster("RI"), 2, 4,
                               OracleSelector(), steps=0)


class TestMiniFE:
    def test_allgather_driven(self, frontera):
        res = MiniFEProxy().run(frontera, 2, 28, OracleSelector(),
                                steps=5)
        assert set(res.collective_calls) == {"allgather@8"}
        assert res.p2p_s > 0

    def test_multi_node_halo_pays_network_latency(self, frontera):
        from repro.simcluster import Machine

        multi = MiniFEProxy().run(frontera, 2, 28, OracleSelector(),
                                  steps=5)
        prm = Machine(frontera, 2, 28).params
        # Three of six faces cross nodes: at least 3 alpha_inter/step.
        assert multi.p2p_s >= 5 * 3 * prm.alpha_inter_s

    def test_selector_effect_small_but_real(self, frontera):
        """Paper Fig. 13: app-level speedups are single-digit percent —
        collectives are only part of the runtime."""
        rnd = MiniFEProxy().run(frontera, 8, 28, RandomSelector(7),
                                steps=50)
        orc = MiniFEProxy().run(frontera, 8, 28, OracleSelector(),
                                steps=50)
        assert orc.total_s <= rnd.total_s
        speedup = rnd.total_s / orc.total_s
        assert speedup < 2.0  # far smaller than microbenchmark gaps

    def test_compute_scales_with_mesh(self, frontera):
        small = MiniFEProxy(nx=64).run(frontera, 2, 28, OracleSelector())
        large = MiniFEProxy(nx=128).run(frontera, 2, 28, OracleSelector())
        assert large.compute_s > small.compute_s

    def test_invalid_mesh(self):
        with pytest.raises(ValueError):
            MiniFEProxy(nx=1)
