"""Smoke tests for the runnable examples (deliverable b).

The two fast examples run end-to-end as subprocesses; the dataset-heavy
ones are import-checked (their full runs are exercised manually and by
the benchmarks, which share the same code paths).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, timeout: int = 600) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "algorithm choices on unseen cluster Sierra" in out
        assert "allgather" in out and "alltoall" in out

    def test_compare_algorithms(self):
        out = _run("compare_algorithms.py")
        assert "alltoall on Frontera" in out
        assert "data=OK" in out
        assert "CORRUPT" not in out

    def test_future_work_collectives(self):
        out = _run("future_work_collectives.py")
        assert "two-level vs best flat" in out
        assert "allreduce" in out and "bcast" in out

    def test_daemon_client(self):
        out = _run("daemon_client.py")
        assert "daemon ready on" in out
        assert "(model)" in out and "(invalid)" in out
        assert "reload: reloaded" in out
        assert "'internal': 0" in out
        assert "daemon drained; bye" in out


class TestHeavyExamplesImportable:
    @pytest.mark.parametrize("name", ["tune_new_cluster.py",
                                      "application_speedup.py"])
    def test_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "tune_new_cluster.py",
                "application_speedup.py", "compare_algorithms.py",
                "future_work_collectives.py",
                "daemon_client.py"} <= names
