"""Tests for the benchmark harness (`repro.core.bench`)."""

import json

import pytest

from repro.cli import main
from repro.core.bench import (
    run_benchmarks,
    validate_bench_file,
    validate_bench_results,
    write_bench_results,
)

REQUIRED = {"forest_fit_serial", "forest_fit_parallel",
            "forest_predict_batch", "table_generation", "table_lookup",
            "serve_batch"}


@pytest.fixture(scope="module")
def results():
    """One tiny harness run shared by every schema/content test."""
    return run_benchmarks(quick=True, jobs=2, repeats=1, lookups=2000)


class TestRunBenchmarks:
    def test_covers_all_hot_paths(self, results):
        assert REQUIRED <= set(results)

    def test_schema_valid(self, results):
        validate_bench_results(results)
        for entry in results.values():
            assert entry["wall_s"] >= 0

    def test_parallel_fit_bit_identical(self, results):
        cfg = results["forest_fit_parallel"]["config"]
        assert cfg["bit_identical_to_serial"] is True
        assert cfg["n_jobs"] == 2

    def test_lookup_does_not_scale_with_table_size(self, results):
        """A 64x bigger table must not cost ~64x per lookup; the bisect
        + memoized-nearest design keeps the ratio near 1 (allow slack
        for timer noise at tiny lookup counts)."""
        cfg = results["table_lookup"]["config"]
        configs_ratio = cfg["stored_configs"] / cfg["small_table_configs"]
        assert configs_ratio >= 32
        assert cfg["per_lookup_ratio_large_vs_small"] < configs_ratio / 4

    def test_serve_batch_identical_and_faster(self, results):
        """The batched service must agree with the scalar guard loop
        decision-for-decision, and its per-query cost must beat the
        scalar path by a wide margin (the acceptance floor is 2x;
        assert half of that to stay robust to container noise)."""
        cfg = results["serve_batch"]["config"]
        assert cfg["identical_to_scalar"] is True
        assert cfg["n_queries"] >= cfg["scalar_queries"] > 0
        assert cfg["speedup_batch_vs_scalar"] > 1.0

    def test_write_and_reload(self, results, tmp_path):
        path = write_bench_results(results, tmp_path / "b.json")
        loaded = validate_bench_file(path)
        assert set(loaded) == set(results)


class TestSchemaValidation:
    @pytest.mark.parametrize("payload", [
        [],                                          # not an object
        {},                                          # empty
        {"x": []},                                   # entry not an object
        {"x": {"wall_s": 1.0}},                      # missing config
        {"x": {"config": {}}},                       # missing wall_s
        {"x": {"wall_s": 1.0, "config": {}, "z": 1}},  # extra key
        {"x": {"wall_s": -0.1, "config": {}}},       # negative time
        {"x": {"wall_s": "fast", "config": {}}},     # non-numeric time
        {"x": {"wall_s": True, "config": {}}},       # bool is not a time
        {"x": {"wall_s": 1.0, "config": []}},        # config not object
    ])
    def test_rejects_invalid(self, payload):
        with pytest.raises(ValueError):
            validate_bench_results(payload)

    def test_rejects_invalid_json_file(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_bench_file(path)

    def test_write_refuses_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench_results({"x": {"wall_s": -1, "config": {}}},
                                tmp_path / "b.json")


class TestBenchCli:
    def test_quick_run_writes_valid_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_results.json"
        rc = main(["bench", "--quick", "--quiet", "--jobs", "2",
                   "--lookups", "2000", "--output", str(out)])
        assert rc == 0
        results = validate_bench_file(out)
        assert REQUIRED <= set(results)
        stdout = capsys.readouterr().out
        assert "table_lookup" in stdout
        # Pretty-printed JSON, trailing newline (artifact hygiene).
        assert out.read_text().endswith("\n")
        json.loads(out.read_text())
