"""Integration: the full pipeline over the extension collectives."""

import pytest

from repro.core import PmlMpiFramework, collect_dataset, offline_train
from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import algorithm_names


@pytest.fixture(scope="module")
def ext_selector():
    clusters = [get_cluster(n) for n in ("RI", "Ray")]
    dataset = collect_dataset(clusters=clusters,
                              collectives=("allreduce", "bcast"))
    return offline_train(dataset, collectives=("allreduce", "bcast"))


class TestExtensionPipeline:
    def test_models_trained_per_collective(self, ext_selector):
        assert set(ext_selector.models) == {"allreduce", "bcast"}
        for model in ext_selector.models.values():
            assert len(model.feature_names) == 5

    def test_selection_on_unseen_cluster(self, ext_selector):
        machine = Machine(get_cluster("Spock"), 4, 16)
        for coll in ("allreduce", "bcast"):
            for msg in (8, 65536):
                algo = ext_selector.select(coll, machine, msg)
                assert algo in algorithm_names(coll)

    def test_framework_emits_extension_tables(self, ext_selector,
                                              tmp_path):
        fw = PmlMpiFramework(ext_selector, tmp_path)
        spec = get_cluster("RI")
        runtime = fw.setup_cluster(spec)
        machine = Machine(spec, 2, 4)
        algo = runtime.select("allreduce", machine, 1024)
        assert algo in algorithm_names("allreduce")
        text = fw.table_path("RI").read_text()
        assert "allreduce" in text and "bcast" in text

    def test_mixed_collective_bundle_roundtrip(self, ext_selector,
                                               tmp_path):
        from repro.core import load_selector, save_selector

        path = save_selector(ext_selector, tmp_path / "ext.json")
        loaded = load_selector(path)
        machine = Machine(get_cluster("RI"), 2, 8)
        for coll in ("allreduce", "bcast"):
            assert loaded.select(coll, machine, 512) == \
                ext_selector.select(coll, machine, 512)
