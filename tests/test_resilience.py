"""Tests for the deployment resilience layer: typed artifact errors,
atomic I/O, retry/backoff, the setup_cluster degradation ladder, fault
injection, and the artifact doctor."""

import gzip
import json
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.core import (
    RUNG_CACHED,
    RUNG_FALLBACK,
    RUNG_REGENERATED,
    CorruptArtifactError,
    FileLock,
    LockTimeoutError,
    PmlMpiFramework,
    RetryPolicy,
    StaleArtifactError,
    TransientCollectionError,
    TuningDataset,
    collect_dataset,
    doctor_directory,
    load_selector,
    offline_train,
    save_selector,
)
from repro.core.framework import diagnose_artifact
from repro.core.resilience import (
    atomic_write_text,
    checksum_payload,
    quarantine,
)
from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.simcluster.conditions import FaultProfile
from repro.smpi import TableSelector, TuningTable, algorithm_names
from repro.smpi.heuristics import MvapichDefaultSelector

#: Zero-delay retry policies keep the tests fast.
FAST_RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def selector(mini_dataset):
    return offline_train(mini_dataset)


@pytest.fixture
def framework(selector, tmp_path):
    return PmlMpiFramework(selector, tmp_path, retry=FAST_RETRY)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_deterministic_jittered_backoff(self):
        p = RetryPolicy(max_attempts=5, base_delay_s=0.1, backoff=2.0,
                        jitter=0.25, max_delay_s=10.0, seed=7)
        delays = [p.delay(k) for k in (1, 2, 3)]
        assert delays == [p.delay(k) for k in (1, 2, 3)]  # seeded
        # Exponential shape survives the +/-25% jitter.
        assert delays[1] > delays[0] and delays[2] > delays[1]
        for k, d in enumerate(delays, 1):
            base = 0.1 * 2.0 ** (k - 1)
            assert 0.75 * base <= d <= 1.25 * base

    def test_delay_capped(self):
        p = RetryPolicy(base_delay_s=1.0, backoff=10.0, jitter=0.0,
                        max_delay_s=2.5)
        assert p.delay(4) == 2.5

    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientCollectionError("boom")
            return "ok"

        slept = []
        result = RetryPolicy(max_attempts=4, base_delay_s=0.01,
                             jitter=0.0).call(flaky, sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert slept == pytest.approx([0.01, 0.02])

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise TransientCollectionError("still down")

        attempts = []
        with pytest.raises(TransientCollectionError, match="still down"):
            RetryPolicy(max_attempts=3, base_delay_s=0.0).call(
                always, on_retry=lambda n, e: attempts.append(n))
        assert attempts == [1, 2, 3]

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5, base_delay_s=0.0).call(broken)
        assert len(calls) == 1

    def test_cooperative_per_attempt_timeout(self):
        import time

        def slow():
            time.sleep(0.03)
            return "late"

        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0,
                             per_attempt_timeout_s=0.001)
        with pytest.raises(TransientCollectionError, match="timeout"):
            policy.call(slow)

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------------
# Atomic, checksummed writes
# ---------------------------------------------------------------------------

class TestAtomicWrites:
    def test_simulated_midwrite_kill_table(self, selector, tmp_path,
                                           monkeypatch):
        """A kill between tmp-write and rename leaves the original
        intact and the partial tmp file on disk for post-mortem."""
        fw = PmlMpiFramework(selector, tmp_path)
        spec = get_cluster("RI")
        fw.setup_cluster(spec)
        path = fw.table_path("RI")
        before = path.read_text()

        def kill(src, dst):
            raise OSError("simulated kill before rename")

        monkeypatch.setattr("repro.core.resilience.os.replace", kill)
        table = TuningTable.load(path)
        with pytest.raises(OSError, match="simulated kill"):
            table.save(path)
        assert path.read_text() == before  # original intact
        tmps = list(tmp_path.glob("*.tmp"))
        assert len(tmps) == 1  # partial write left for post-mortem

    def test_simulated_midwrite_kill_dataset_and_bundle(
            self, mini_dataset, selector, tmp_path, monkeypatch):
        ds_path = mini_dataset.save(tmp_path / "ds.jsonl.gz")
        bundle_path = save_selector(selector, tmp_path / "b.json")
        ds_before = ds_path.read_bytes()
        bundle_before = bundle_path.read_bytes()

        monkeypatch.setattr(
            "repro.core.resilience.os.replace",
            lambda s, d: (_ for _ in ()).throw(OSError("killed")))
        with pytest.raises(OSError):
            mini_dataset.save(ds_path)
        with pytest.raises(OSError):
            save_selector(selector, bundle_path)
        assert ds_path.read_bytes() == ds_before
        assert bundle_path.read_bytes() == bundle_before
        assert len(list(tmp_path.glob("*.tmp"))) == 2

    def test_quarantine_never_overwrites(self, tmp_path):
        for i in range(3):
            f = tmp_path / "t.json"
            f.write_text(f"garbage {i}")
            quarantine(f)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["t.json.corrupt", "t.json.corrupt.1",
                         "t.json.corrupt.2"]

    def test_quarantine_steps_over_dangling_symlink(self, tmp_path):
        # A dangling symlink squatting on the .corrupt name is still
        # evidence: quarantine must step past it (lexists), never
        # replace it.
        f = tmp_path / "t.json"
        f.write_text("garbage")
        os.symlink(tmp_path / "vanished", tmp_path / "t.json.corrupt")
        moved = quarantine(f)
        assert moved.name == "t.json.corrupt.1"
        assert moved.read_text() == "garbage"
        link = tmp_path / "t.json.corrupt"
        assert os.path.lexists(link) and not link.exists()
        assert os.readlink(link) == str(tmp_path / "vanished")


# ---------------------------------------------------------------------------
# Corrupt-artifact matrix: each artifact kind x each failure mode
# ---------------------------------------------------------------------------

class TestCorruptArtifactMatrix:
    def test_truncated_gzip_cache(self, mini_dataset, tmp_path):
        path = mini_dataset.save(tmp_path / "ds.jsonl.gz")
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])  # truncate mid-stream
        with pytest.raises(CorruptArtifactError):
            TuningDataset.load(path)

    def test_non_gzip_cache(self, tmp_path):
        path = tmp_path / "ds.jsonl.gz"
        path.write_text("this was never gzip")
        with pytest.raises(CorruptArtifactError):
            TuningDataset.load(path)

    def test_dataset_checksum_mismatch(self, mini_dataset, tmp_path):
        path = mini_dataset.save(tmp_path / "ds.jsonl.gz")
        with gzip.open(path, "rt") as fh:
            lines = fh.readlines()
        # Tamper with one record but keep the header checksum.
        lines[1] = lines[1].replace('"nodes": ', '"nodes": 1 + 0 or ')
        with gzip.open(path, "wt") as fh:
            fh.writelines(lines)
        with pytest.raises(CorruptArtifactError):
            TuningDataset.load(path)

    def test_dataset_wrong_version_is_stale(self, mini_dataset,
                                            tmp_path):
        path = mini_dataset.save(tmp_path / "ds.jsonl.gz")
        with gzip.open(path, "rt") as fh:
            lines = fh.readlines()
        meta = json.loads(lines[0])
        meta["__meta__"]["version"] = "0"
        lines[0] = json.dumps(meta) + "\n"
        with gzip.open(path, "wt") as fh:
            fh.writelines(lines)
        with pytest.raises(StaleArtifactError, match="version"):
            TuningDataset.load(path)

    def test_dataset_nonfinite_time_rejected(self, tmp_path):
        lines = [json.dumps({
            "cluster": "RI", "collective": "allgather", "nodes": 2,
            "ppn": 4, "msg_size": 64,
            "times": {"ring": float("nan")}}) + "\n"]
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.writelines(lines)
        with pytest.raises(CorruptArtifactError, match="non-finite"):
            TuningDataset.load(path)

    def test_dataset_unknown_algorithm_rejected(self, tmp_path):
        lines = [json.dumps({
            "cluster": "RI", "collective": "allgather", "nodes": 2,
            "ppn": 4, "msg_size": 64,
            "times": {"quantum_teleport": 1e-5}}) + "\n"]
        path = tmp_path / "bad.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.writelines(lines)
        with pytest.raises(CorruptArtifactError, match="unknown algorithm"):
            TuningDataset.load(path)

    def test_corrupt_cache_quarantined_and_recollected(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clusters = [get_cluster("RI")]
        first = collect_dataset(clusters=clusters,
                                collectives=("allgather",),
                                cache_dir=cache_dir)
        caches = list(cache_dir.glob("*.jsonl.gz"))
        assert len(caches) == 1
        caches[0].write_text("{definitely not gzip")
        again = collect_dataset(clusters=clusters,
                                collectives=("allgather",),
                                cache_dir=cache_dir)
        assert len(again) == len(first)
        assert list(cache_dir.glob("*.corrupt"))  # evidence kept

    def test_invalid_json_table(self, tmp_path):
        path = tmp_path / "t.tuning.json"
        path.write_text("{not json at all")
        with pytest.raises(CorruptArtifactError, match="not valid JSON"):
            TuningTable.load(path)

    def test_table_checksum_mismatch(self, selector, tmp_path):
        fw = PmlMpiFramework(selector, tmp_path)
        fw.setup_cluster(get_cluster("RI"))
        path = fw.table_path("RI")
        payload = json.loads(path.read_text())
        # Flip one decision without updating the checksum (silent
        # bit-rot / manual edit).
        coll = payload["collectives"]["allgather"]
        key = next(iter(coll))
        coll[key][0][1] = "ring" if coll[key][0][1] != "ring" else "bruck"
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            TuningTable.load(path)

    def test_table_wrong_version_is_stale(self, selector, tmp_path):
        fw = PmlMpiFramework(selector, tmp_path)
        fw.setup_cluster(get_cluster("RI"))
        path = fw.table_path("RI")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(StaleArtifactError, match="version"):
            TuningTable.load(path)

    def test_table_unknown_algorithm(self, tmp_path):
        collectives = {"allgather": {"2x8": [[1024, "quantum"]]}}
        payload = {"format": "pml-mpi/tuning-table", "version": 1,
                   "cluster": "RI",
                   "crc32": checksum_payload(collectives),
                   "collectives": collectives}
        with pytest.raises(CorruptArtifactError):
            TuningTable.from_json(json.dumps(payload))

    def test_table_empty_entries_rejected(self):
        payload = {"cluster": "RI", "collectives": {}}
        with pytest.raises(CorruptArtifactError, match="no entries"):
            TuningTable.from_json(json.dumps(payload))

    def test_table_nan_and_negative_sizes_rejected(self):
        for size in ("NaN", "-5"):
            text = ('{"cluster": "RI", "collectives": {"allgather": '
                    '{"2x8": [[%s, "ring"]]}}}' % size)
            with pytest.raises(CorruptArtifactError):
                TuningTable.from_json(text)

    def test_wrong_version_bundle_is_stale(self, selector, tmp_path):
        path = save_selector(selector, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        payload["bundle_version"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(StaleArtifactError, match="bundle version"):
            load_selector(path)

    def test_bundle_checksum_mismatch(self, selector, tmp_path):
        path = save_selector(selector, tmp_path / "b.json")
        payload = json.loads(path.read_text())
        coll = next(iter(payload["models"]))
        payload["models"][coll]["family"] = "tampered"
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptArtifactError, match="checksum"):
            load_selector(path)

    def test_bundle_garbage_json(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("][")
        with pytest.raises(CorruptArtifactError, match="not valid JSON"):
            load_selector(path)


# ---------------------------------------------------------------------------
# Direct API validation (satellite: lookup/add reject nonsense)
# ---------------------------------------------------------------------------

class TestTableValidation:
    def test_add_rejects_negative_and_nan_sizes(self):
        table = TuningTable(cluster="X")
        with pytest.raises(ValueError):
            table.add("allgather", 2, 8, -1, "ring")
        with pytest.raises(ValueError):
            table.add("allgather", 2, 8, float("nan"), "ring")

    def test_add_rejects_bad_shape(self):
        table = TuningTable(cluster="X")
        with pytest.raises(ValueError):
            table.add("allgather", 0, 8, 64, "ring")

    def test_lookup_rejects_empty_sections(self):
        table = TuningTable(cluster="X")
        table.entries["allgather"] = {}
        with pytest.raises(ValueError, match="empty"):
            table.lookup("allgather", 2, 8, 64)
        table.entries["allgather"] = {(2, 8): []}
        with pytest.raises(ValueError, match="breakpoints"):
            table.lookup("allgather", 2, 8, 64)


# ---------------------------------------------------------------------------
# FileLock
# ---------------------------------------------------------------------------

class TestFileLock:
    def test_exclusive_within_timeout(self, tmp_path):
        lock = tmp_path / "x.lock"
        with FileLock(lock):
            other = FileLock(lock, timeout_s=0.05, poll_s=0.01)
            with pytest.raises(LockTimeoutError, match="could not"):
                other.acquire()
        # Released: now acquirable.
        with FileLock(lock, timeout_s=0.05):
            pass

    def test_concurrent_setups_serialize(self, selector, tmp_path):
        """Two concurrent compile-time setups on one table_dir must
        not race: both succeed and exactly one table file remains."""
        spec = get_cluster("RI")
        results, errors = [], []

        def setup():
            try:
                fw = PmlMpiFramework(selector, tmp_path,
                                     retry=FAST_RETRY)
                results.append(fw.setup_cluster(spec))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=setup) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 2
        for sel in results:
            assert isinstance(sel, TableSelector)
        assert len(list(tmp_path.glob("*.tuning.json"))) == 1
        assert not list(tmp_path.glob("*.tmp"))

    def test_owner_record_written_and_read(self, tmp_path):
        lock = tmp_path / "x.lock"
        with FileLock(lock):
            owner = FileLock.read_owner(lock)
            assert owner is not None
            assert owner["pid"] == os.getpid()
            assert owner["acquired_at"] <= time.time()
            assert not FileLock.owner_is_stale(lock)

    def test_unlink_on_release_removes_file(self, tmp_path):
        lock = tmp_path / "x.lock"
        with FileLock(lock, unlink_on_release=True):
            assert lock.exists()
        assert not lock.exists()
        # Default: the file stays (contended-lock mode).
        with FileLock(lock):
            pass
        assert lock.exists()

    def test_dead_pid_owner_is_stale(self, tmp_path):
        """The corpse of a crashed process — a lock file recording a
        PID that no longer exists — must be recognized as stale."""
        lock = tmp_path / "x.lock"
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()  # reaped: the PID is guaranteed dead
        lock.write_text(json.dumps(
            {"pid": proc.pid, "acquired_at": 0.0}))
        assert FileLock.owner_is_stale(lock)
        assert FileLock(lock).break_stale()
        assert not lock.exists()

    def test_live_pid_owner_is_not_stale(self, tmp_path):
        lock = tmp_path / "x.lock"
        lock.write_text(json.dumps(
            {"pid": os.getpid(), "acquired_at": 0.0}))
        assert not FileLock.owner_is_stale(lock)
        assert not FileLock(lock).break_stale()
        assert lock.exists()

    def test_unreadable_record_stale_only_when_old(self, tmp_path):
        lock = tmp_path / "x.lock"
        lock.write_text("not json at all")
        assert FileLock.read_owner(lock) is None
        # Fresh mtime: give the holder the benefit of the doubt.
        assert not FileLock.owner_is_stale(lock)
        # Age the file past the cutoff: abandoned.
        old = time.time() - 10_000.0
        os.utime(lock, (old, old))
        assert FileLock.owner_is_stale(lock)
        assert FileLock.owner_is_stale(lock, stale_after_s=5_000.0)
        assert not FileLock.owner_is_stale(lock,
                                           stale_after_s=20_000.0)

    def test_missing_file_is_not_stale(self, tmp_path):
        lock = tmp_path / "x.lock"
        assert not FileLock.owner_is_stale(lock)
        assert not FileLock(lock).break_stale()

    def test_pid_alive_rejects_junk(self):
        assert FileLock.pid_alive(os.getpid())
        assert not FileLock.pid_alive(-1)
        assert not FileLock.pid_alive(0)
        assert not FileLock.pid_alive(True)
        assert not FileLock.pid_alive("7")

    def test_fallback_path_breaks_stale_lock(self, tmp_path,
                                             monkeypatch):
        """Without flock (O_EXCL fallback) a killed holder's lock file
        would deadlock every later start; a dead recorded PID must be
        broken on acquire instead."""
        import repro.core.resilience as resilience

        monkeypatch.setattr(resilience, "fcntl", None)
        lock = tmp_path / "x.lock"
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        lock.write_text(json.dumps(
            {"pid": proc.pid, "acquired_at": 0.0}))
        with FileLock(lock, timeout_s=0.5, poll_s=0.01):
            owner = FileLock.read_owner(lock)
            assert owner is not None and owner["pid"] == os.getpid()
        assert not lock.exists()  # fallback always unlinks on release

    def test_fallback_path_respects_live_lock(self, tmp_path,
                                              monkeypatch):
        import repro.core.resilience as resilience

        monkeypatch.setattr(resilience, "fcntl", None)
        lock = tmp_path / "x.lock"
        lock.write_text(json.dumps(
            {"pid": os.getpid(), "acquired_at": 0.0}))
        blocked = FileLock(lock, timeout_s=0.05, poll_s=0.01)
        with pytest.raises(LockTimeoutError):
            blocked.acquire()

    def test_two_contenders_racing_one_stale_lock(self, tmp_path,
                                                  monkeypatch):
        """Two processes find the same dead-owner lock at once.  Both
        may observe it stale (the TOCTOU window), but only the first
        break unlinks anything: the second sees a missing file — not
        stale — so it can never unlink the winner's *fresh* lock."""
        import repro.core.resilience as resilience

        monkeypatch.setattr(resilience, "fcntl", None)
        dead_pid = 4242
        real_pid_alive = FileLock.pid_alive
        monkeypatch.setattr(
            FileLock, "pid_alive",
            staticmethod(lambda pid: False if pid == dead_pid
                         else real_pid_alive(pid)))

        lock = tmp_path / "x.lock"
        lock.write_text(json.dumps(
            {"pid": dead_pid, "acquired_at": 0.0}))
        a = FileLock(lock, timeout_s=0.5, poll_s=0.01)
        b = FileLock(lock, timeout_s=0.05, poll_s=0.01)

        # Both contenders pass the staleness check before either acts.
        assert FileLock.owner_is_stale(lock)
        assert FileLock.owner_is_stale(lock)
        assert a.break_stale()
        assert not b.break_stale()  # missing file: nothing to break

        a.acquire()
        try:
            owner = FileLock.read_owner(lock)
            assert owner is not None and owner["pid"] == os.getpid()
            # B must now see a live owner and neither break nor steal.
            assert not FileLock.owner_is_stale(lock)
            assert not b.break_stale()
            with pytest.raises(LockTimeoutError):
                b.acquire()
            assert FileLock.read_owner(lock)["pid"] == os.getpid()
        finally:
            a.release()
        # With the winner gone, the loser acquires cleanly.
        b.acquire()
        b.release()


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------

class TestDegradationLadder:
    def test_rung1_valid_cached_table(self, framework):
        spec = get_cluster("RI")
        framework.setup_cluster(spec)
        sel, report = framework.setup_cluster_with_report(spec)
        assert isinstance(sel, TableSelector)
        assert report.rung == RUNG_CACHED
        assert report.healthy

    def test_rung2_corrupt_table_regenerated(self, framework):
        spec = get_cluster("RI")
        framework.setup_cluster(spec)
        path = framework.table_path("RI")
        path.write_text("{broken json")
        sel, report = framework.setup_cluster_with_report(spec)
        assert isinstance(sel, TableSelector)
        assert report.rung == RUNG_REGENERATED
        assert len(report.quarantined) == 1
        assert ".corrupt" in report.quarantined[0]
        # The quarantined file still holds the original bytes.
        from pathlib import Path
        assert Path(report.quarantined[0]).read_text() == "{broken json"
        # And a fresh, valid table exists again.
        TuningTable.load(path).validate()

    def test_rung2_transient_failures_retried(self, framework):
        """A fault rate below certainty: regeneration succeeds after
        retries, and the report counts the attempts."""
        spec = get_cluster("Ray")
        faults = FaultProfile(failure_rate=0.7, seed=3)
        sel, report = framework.setup_cluster_with_report(
            spec, faults=faults)
        assert isinstance(sel, TableSelector)
        assert report.rung == RUNG_REGENERATED
        assert report.attempts >= 1

    def test_rung3_heuristic_fallback(self, framework):
        """Regeneration permanently failing must still hand the MPI
        build a working selector."""
        spec = get_cluster("RI")
        faults = FaultProfile(failure_rate=1.0)
        sel, report = framework.setup_cluster_with_report(
            spec, faults=faults)
        assert report.rung == RUNG_FALLBACK
        assert isinstance(sel, MvapichDefaultSelector)
        assert report.attempts == FAST_RETRY.max_attempts
        machine = Machine(spec, 2, 4)
        algo = sel.select("allgather", machine, 1024)
        assert algo in algorithm_names("allgather")

    def test_acceptance_scenario(self, framework, tmp_path):
        """ISSUE acceptance: 20% transient-failure rate plus a
        corrupted cached table -> still a working selector, the rung is
        named, and doctor flags the quarantined file."""
        spec = get_cluster("RI")
        framework.setup_cluster(spec)
        framework.table_path("RI").write_text('{"cluster": "RI"}')
        faults = FaultProfile(failure_rate=0.2, seed=42)
        sel, report = framework.setup_cluster_with_report(
            spec, faults=faults)
        assert isinstance(sel, TableSelector)
        assert report.rung == RUNG_REGENERATED
        assert report.quarantined
        machine = Machine(spec, 2, 4)
        assert sel.select("allgather", machine, 512) in \
            algorithm_names("allgather")
        doctor = doctor_directory(tmp_path)
        statuses = {c.path: c.status for c in doctor.checks}
        assert any(s == "quarantined" for s in statuses.values())

    def test_force_regenerate_skips_cache(self, framework):
        spec = get_cluster("RI")
        framework.setup_cluster(spec)
        _, report = framework.setup_cluster_with_report(
            spec, force_regenerate=True)
        assert report.rung == RUNG_REGENERATED


# ---------------------------------------------------------------------------
# Fault-injected collection end-to-end
# ---------------------------------------------------------------------------

class TestFaultInjectedCollection:
    def test_20pct_faults_converge_to_clean_dataset(self):
        clusters = [get_cluster("RI")]
        clean = collect_dataset(clusters=clusters,
                                collectives=("allgather",),
                                use_cache=False)
        faulty = collect_dataset(
            clusters=clusters, collectives=("allgather",),
            use_cache=False,
            faults=FaultProfile(failure_rate=0.2, stall_rate=0.05,
                                seed=1),
            retry=RetryPolicy(max_attempts=8, base_delay_s=0.0,
                              jitter=0.0))
        assert len(faulty) == len(clean)
        for a, b in zip(clean.records, faulty.records):
            assert a == b  # retries re-measure; results converge

    def test_certain_failure_drops_configs_without_crashing(self,
                                                            capsys):
        dataset = collect_dataset(
            clusters=[get_cluster("RI")], collectives=("allgather",),
            use_cache=False, progress=True,
            faults=FaultProfile(failure_rate=1.0),
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0,
                              jitter=0.0))
        assert len(dataset) == 0
        assert "dropped" in capsys.readouterr().out

    def test_faulty_and_clean_caches_are_distinct(self, tmp_path):
        clusters = [get_cluster("RI")]
        collect_dataset(clusters=clusters, collectives=("allgather",),
                        cache_dir=tmp_path)
        collect_dataset(clusters=clusters, collectives=("allgather",),
                        cache_dir=tmp_path,
                        faults=FaultProfile(failure_rate=0.3),
                        retry=FAST_RETRY)
        assert len(list(tmp_path.glob("*.jsonl.gz"))) == 2


# ---------------------------------------------------------------------------
# Doctor
# ---------------------------------------------------------------------------

class TestDoctor:
    @pytest.fixture
    def artifact_dir(self, selector, mini_dataset, tmp_path):
        fw = PmlMpiFramework(selector, tmp_path)
        fw.setup_cluster(get_cluster("RI"))
        save_selector(selector, tmp_path / "bundle.json")
        mini_dataset.save(tmp_path / "ds.jsonl.gz")
        return tmp_path

    def test_all_valid(self, artifact_dir):
        report = doctor_directory(artifact_dir)
        assert report.healthy
        kinds = sorted(c.kind for c in report.checks
                       if c.kind != "lock")
        assert kinds == ["bundle", "dataset-cache", "tuning-table"]

    def test_flags_each_failure_mode(self, artifact_dir):
        (artifact_dir / "broken.tuning.json").write_text("{nope")
        (artifact_dir / "stale.json").write_text(json.dumps(
            {"format": "pml-mpi/bundle", "bundle_version": 0,
             "models": {}}))
        (artifact_dir / "ds.jsonl.gz.1234.tmp").write_text("partial")
        (artifact_dir / "old.tuning.json.corrupt").write_text("x")
        report = doctor_directory(artifact_dir)
        assert not report.healthy
        by_name = {c.path.rsplit("/", 1)[-1]: c.status
                   for c in report.checks}
        assert by_name["broken.tuning.json"] == "corrupt"
        assert by_name["stale.json"] == "stale"
        assert by_name["ds.jsonl.gz.1234.tmp"] == "orphan-tmp"
        assert by_name["old.tuning.json.corrupt"] == "quarantined"

    def test_diagnose_unknown_file(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello")
        assert diagnose_artifact(path).status == "unknown"


# ---------------------------------------------------------------------------
# Atomic helper round-trip
# ---------------------------------------------------------------------------

class TestAtomicHelpers:
    def test_atomic_write_text_roundtrip(self, tmp_path):
        path = tmp_path / "deep" / "a.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
        assert not list(path.parent.glob("*.tmp"))

    def test_checksum_payload_stable_across_key_order(self):
        assert checksum_payload({"a": 1, "b": 2}) == \
            checksum_payload({"b": 2, "a": 1})
