"""Tests for metrics, preprocessing and model selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    GridSearchCV,
    KFold,
    LabelEncoder,
    RandomForestClassifier,
    StandardScaler,
    StratifiedKFold,
    accuracy_score,
    classification_report,
    confusion_matrix,
    cross_val_score,
    roc_auc_score,
    train_test_split,
)


class TestAccuracyAndConfusion:
    def test_accuracy_basic(self):
        assert accuracy_score([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    def test_accuracy_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score(np.zeros(3), np.zeros(4))

    def test_confusion_matrix(self):
        mat = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert mat.tolist() == [[1, 1], [0, 2]]

    def test_confusion_matrix_trace_is_correct_count(self):
        y_true = np.array([0, 1, 2, 2, 1])
        y_pred = np.array([0, 2, 2, 2, 1])
        mat = confusion_matrix(y_true, y_pred)
        assert mat.trace() == 4
        assert mat.sum() == 5

    def test_classification_report_keys(self):
        rep = classification_report([0, 1, 1], [0, 1, 0])
        assert set(rep) == {"0", "1", "accuracy"}
        assert rep["1"]["recall"] == pytest.approx(0.5)


class TestAuc:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        score = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, score) == pytest.approx(1.0)

    def test_inverted_ranking(self):
        y = np.array([0, 0, 1, 1])
        score = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, score) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        score = rng.random(4000)
        assert roc_auc_score(y, score) == pytest.approx(0.5, abs=0.03)

    def test_ties_get_midrank(self):
        y = np.array([0, 1, 0, 1])
        score = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(y, score) == pytest.approx(0.5)

    def test_multiclass_macro(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        proba = np.eye(3)[y]  # perfect prediction
        assert roc_auc_score(y, proba) == pytest.approx(1.0)

    def test_absent_class_skipped_with_labels(self):
        y = np.array([0, 0, 1, 1])  # class 2 absent
        proba = np.array([[0.8, 0.1, 0.1], [0.7, 0.2, 0.1],
                          [0.1, 0.8, 0.1], [0.2, 0.7, 0.1]])
        auc = roc_auc_score(y, proba, labels=np.array([0, 1, 2]))
        assert auc == pytest.approx(1.0)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.zeros(4), np.random.rand(4))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_auc_invariant_to_monotone_transform(self, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 50)
        if len(np.unique(y)) < 2:
            y[0], y[1] = 0, 1
        s = rng.normal(size=50)
        a1 = roc_auc_score(y, s)
        a2 = roc_auc_score(y, np.exp(s) * 3 + 1)
        assert a1 == pytest.approx(a2)


class TestPreprocessing:
    def test_scaler_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5, 3, size=(100, 4))
        Xs = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Xs.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Xs.std(axis=0), 1.0, atol=1e-12)

    def test_scaler_constant_feature_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        np.testing.assert_allclose(Xs[:, 0], 0.0)

    def test_scaler_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(20, 3))
        sc = StandardScaler().fit(X)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(X)),
                                   X, atol=1e-12)

    def test_scaler_feature_count_check(self):
        sc = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            sc.transform(np.zeros((5, 4)))

    def test_label_encoder_roundtrip(self):
        y = np.array(["ring", "bruck", "ring", "pairwise"])
        enc = LabelEncoder().fit(y)
        idx = enc.transform(y)
        assert np.array_equal(enc.inverse_transform(idx), y)

    def test_label_encoder_unseen_raises(self):
        enc = LabelEncoder().fit(np.array(["a", "b"]))
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(np.array(["c"]))


class TestSplitters:
    def test_train_test_split_sizes(self):
        X = np.arange(100)[:, None]
        y = np.arange(100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, 0.3, random_state=0)
        assert len(Xte) == 30 and len(Xtr) == 70
        assert set(ytr) | set(yte) == set(range(100))
        assert not set(ytr) & set(yte)

    def test_stratified_split_preserves_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.arange(100)[:, None]
        _, _, ytr, yte = train_test_split(X, y, 0.25, random_state=0,
                                          stratify=y)
        assert np.mean(yte == 1) == pytest.approx(0.2, abs=0.02)

    def test_invalid_test_size(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)

    def test_kfold_partitions(self):
        X = np.arange(23)[:, None]
        folds = list(KFold(5, random_state=0).split(X))
        assert len(folds) == 5
        all_test = np.concatenate([te for _, te in folds])
        assert sorted(all_test) == list(range(23))
        for tr, te in folds:
            assert not set(tr) & set(te)
            assert len(tr) + len(te) == 23

    def test_stratified_kfold_class_balance(self):
        y = np.array([0] * 40 + [1] * 10)
        X = np.zeros((50, 1))
        for _, te in StratifiedKFold(5, random_state=0).split(X, y):
            assert np.sum(y[te] == 1) == 2

    def test_kfold_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(np.zeros((3, 1))))

    def test_kfold_min_splits(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestCrossValAndGrid:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 4))
        y = (X[:, 0] > 0).astype(int)
        return X, y

    def test_cross_val_score_reasonable(self, data):
        X, y = data
        rf = RandomForestClassifier(n_estimators=10, random_state=0)
        scores = cross_val_score(rf, X, y, cv=4, scoring="accuracy")
        assert scores.shape == (4,)
        assert scores.mean() > 0.8

    def test_cross_val_auc_scoring(self, data):
        X, y = data
        rf = RandomForestClassifier(n_estimators=10, random_state=0)
        scores = cross_val_score(rf, X, y, cv=3, scoring="auc")
        assert scores.mean() > 0.85

    def test_unknown_scoring_raises(self, data):
        X, y = data
        rf = RandomForestClassifier(n_estimators=5, random_state=0)
        with pytest.raises(ValueError, match="scoring"):
            cross_val_score(rf, X, y, cv=3, scoring="f1")

    def test_grid_search_finds_better_params(self, data):
        X, y = data
        grid = GridSearchCV(
            RandomForestClassifier(random_state=0),
            {"n_estimators": [2, 20], "max_depth": [1, None]},
            scoring="accuracy", cv=3)
        grid.fit(X, y)
        assert len(grid.results_) == 4
        assert grid.best_score_ == max(r.mean_score for r in grid.results_)
        # The winning config must not lose to the weakest one.
        weakest = next(r for r in grid.results_
                       if r.params == {"max_depth": 1, "n_estimators": 2})
        assert grid.best_score_ >= weakest.mean_score

    def test_grid_search_best_estimator_fitted(self, data):
        X, y = data
        grid = GridSearchCV(
            RandomForestClassifier(random_state=0),
            {"n_estimators": [5]}, scoring="accuracy", cv=3)
        grid.fit(X, y)
        assert grid.score(X, y) > 0.8
        assert len(grid.predict(X)) == len(X)

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            GridSearchCV(RandomForestClassifier(), {})


class TestSplitNonEmptyGuarantee:
    """Regression: stratified (and tiny unstratified) splits could
    return an empty train or test side."""

    def test_stratified_tiny_test_size(self):
        X = np.arange(6, dtype=float).reshape(-1, 1)
        y = np.array([0, 0, 0, 1, 1, 1])
        Xtr, Xte, ytr, yte = train_test_split(
            X, y, test_size=0.05, random_state=0, stratify=y)
        assert len(Xte) >= 1 and len(Xtr) >= 1
        assert len(Xtr) + len(Xte) == 6

    def test_stratified_huge_test_size(self):
        X = np.arange(4, dtype=float).reshape(-1, 1)
        y = np.array([0, 0, 1, 1])
        Xtr, Xte, ytr, yte = train_test_split(
            X, y, test_size=0.95, random_state=0, stratify=y)
        assert len(Xtr) >= 1 and len(Xte) >= 1

    def test_unstratified_tiny_test_size(self):
        X = np.arange(3, dtype=float).reshape(-1, 1)
        y = np.zeros(3)
        Xtr, Xte, _, _ = train_test_split(X, y, test_size=0.01,
                                          random_state=0)
        assert len(Xte) == 1 and len(Xtr) == 2

    def test_unstratified_huge_test_size(self):
        X = np.arange(3, dtype=float).reshape(-1, 1)
        y = np.zeros(3)
        Xtr, Xte, _, _ = train_test_split(X, y, test_size=0.99,
                                          random_state=0)
        assert len(Xtr) >= 1

    def test_single_sample_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            train_test_split(np.zeros((1, 2)), np.zeros(1), test_size=0.3)


class TestGridSearchParallel:
    def test_n_jobs_equivalent_to_serial(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(120, 3))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        grid_spec = {"n_estimators": [3, 8], "max_depth": [2, None]}

        def search(n_jobs):
            g = GridSearchCV(RandomForestClassifier(random_state=0),
                             grid_spec, scoring="accuracy", cv=3,
                             n_jobs=n_jobs)
            g.fit(X, y)
            return g

        serial, parallel = search(None), search(2)
        assert serial.best_params_ == parallel.best_params_
        assert serial.best_score_ == parallel.best_score_
        assert [r.mean_score for r in serial.results_] == \
            [r.mean_score for r in parallel.results_]
        np.testing.assert_array_equal(serial.best_estimator_.predict(X),
                                      parallel.best_estimator_.predict(X))
