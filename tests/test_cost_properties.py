"""Property-based invariants of the cost model across all algorithms.

These pin down the *sanity* of the simulator: monotonicity in message
size and job size, volume lower bounds, noise behaviour, and oracle
optimality — for every registered algorithm of every collective.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import all_clusters, get_cluster
from repro.simcluster import Machine
from repro.smpi import (
    ALL_COLLECTIVES,
    OracleSelector,
    algorithm_names,
    algorithms,
    measured_time,
)


def _machine(nodes=2, ppn=8, cluster="Frontera"):
    return Machine(get_cluster(cluster), nodes, ppn)


class TestMonotonicity:
    @pytest.mark.parametrize("collective", ALL_COLLECTIVES)
    def test_estimates_monotone_in_msg_size(self, collective):
        machine = _machine()
        sizes = [2**k for k in range(0, 21, 4)]
        for name, algo in algorithms(collective).items():
            times = [algo.estimate(machine, m) for m in sizes]
            for a, b in zip(times, times[1:]):
                assert b >= a * 0.999, \
                    f"{collective}/{name}: not monotone in msg size"

    @pytest.mark.parametrize("collective", ["allgather", "alltoall"])
    def test_estimates_grow_with_node_count(self, collective):
        """More nodes at fixed PPN = more data and more hops."""
        spec = get_cluster("Frontera")
        for name, algo in algorithms(collective).items():
            times = [algo.estimate(Machine(spec, n, 8), 4096)
                     for n in (2, 4, 8)]
            assert times[0] < times[-1], f"{collective}/{name}"

    def test_estimates_positive_everywhere(self):
        machine = _machine(3, 5)
        for collective in ALL_COLLECTIVES:
            for name, algo in algorithms(collective).items():
                t = algo.estimate(machine, 1)
                assert t > 0, f"{collective}/{name}"
                assert np.isfinite(t)


class TestVolumeBounds:
    @pytest.mark.parametrize("collective,per_rank", [
        ("allgather", lambda p, m: (p - 1) * m),
        ("alltoall", lambda p, m: (p - 1) * m),
    ])
    def test_wire_volume_lower_bound(self, collective, per_rank):
        """No algorithm can move less than the information-theoretic
        minimum."""
        machine = _machine(2, 6)
        p, m = machine.p, 512
        bound = p * per_rank(p, m)  # summed over ranks
        for name, algo in algorithms(collective).items():
            total = sum(r.total_bytes for r in algo.schedule(machine, m))
            assert total >= bound * 0.999, f"{collective}/{name}"

    def test_allreduce_volume_lower_bound(self):
        """Allreduce must move at least ~2m(p-1)/p per rank."""
        machine = _machine(2, 4)
        p, m = machine.p, 8192
        bound = p * 2 * (p - 1) * m / p * 0.999
        for name, algo in algorithms("allreduce").items():
            total = sum(r.total_bytes for r in algo.schedule(machine, m))
            assert total >= bound, f"allreduce/{name}: {total} < {bound}"


class TestNoise:
    def test_noise_free_below_noisy_envelope(self):
        machine = _machine()
        for collective in ("allgather", "alltoall"):
            for name in algorithm_names(collective):
                clean = measured_time(machine, collective, name, 1024,
                                      noise=False)
                noisy = measured_time(machine, collective, name, 1024)
                assert 0.85 * clean < noisy < 1.15 * clean

    @given(msg_log=st.integers(0, 20), seed_salt=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_noise_deterministic_per_config(self, msg_log, seed_salt):
        machine = _machine()
        _ = seed_salt  # noise depends only on the configuration
        a = measured_time(machine, "allgather", "ring", 2 ** msg_log)
        b = measured_time(machine, "allgather", "ring", 2 ** msg_log)
        assert a == b

    def test_noise_varies_across_sizes(self):
        machine = _machine()
        ratios = set()
        for msg in (2**k for k in range(8)):
            noisy = measured_time(machine, "allgather", "ring", msg)
            clean = measured_time(machine, "allgather", "ring", msg,
                                  noise=False)
            ratios.add(round(noisy / clean, 9))
        assert len(ratios) > 4


class TestOracleOptimality:
    @given(nodes=st.integers(1, 4), ppn=st.integers(2, 10),
           msg_log=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_oracle_never_beaten(self, nodes, ppn, msg_log):
        machine = _machine(nodes, ppn)
        oracle = OracleSelector()
        msg = 2 ** msg_log
        for collective in ("allgather", "alltoall"):
            pick = oracle.select(collective, machine, msg)
            t_pick = measured_time(machine, collective, pick, msg)
            for name in algorithm_names(collective):
                assert t_pick <= measured_time(machine, collective,
                                               name, msg) * 1.0001


class TestCrossClusterSanity:
    def test_every_cluster_prices_every_algorithm(self):
        """No cluster/algorithm combination may produce NaN, inf or
        non-positive times."""
        for spec in all_clusters():
            nodes = min(2, spec.max_nodes)
            ppn = spec.ppn_values[min(1, len(spec.ppn_values) - 1)]
            machine = Machine(spec, nodes, ppn)
            if machine.p < 2:
                continue
            for collective in ALL_COLLECTIVES:
                for name, algo in algorithms(collective).items():
                    t = algo.estimate(machine, 4096)
                    assert np.isfinite(t) and t > 0, \
                        f"{spec.name}/{collective}/{name}"

    def test_faster_fabric_is_faster_at_large_messages(self):
        """MRI (HDR, PCIe4) must beat RI (QDR, PCIe2) on the same job
        shape at bandwidth-bound sizes, for every algorithm."""
        mri = Machine(get_cluster("MRI"), 2, 8)
        ri = Machine(get_cluster("RI"), 2, 8)
        for collective in ("allgather", "alltoall"):
            for name, algo in algorithms(collective).items():
                assert algo.estimate(mri, 1 << 20) < \
                    algo.estimate(ri, 1 << 20), f"{collective}/{name}"
