"""Tests for CART decision trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    _gini_from_counts,
)


class TestGini:
    def test_pure_node_zero(self):
        assert _gini_from_counts(np.array([10.0, 0.0])) == 0.0

    def test_uniform_binary_is_half(self):
        assert _gini_from_counts(np.array([5.0, 5.0])) == pytest.approx(0.5)

    def test_uniform_k_class(self):
        k = 4
        g = _gini_from_counts(np.full(k, 3.0))
        assert g == pytest.approx(1 - 1 / k)

    def test_empty_counts_zero(self):
        assert _gini_from_counts(np.zeros(3)) == 0.0


class TestClassifier:
    def test_perfectly_separable(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0
        assert np.array_equal(tree.predict([[1.5], [10.5]]), [0, 1])

    def test_max_depth_limits_tree(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        deep = DecisionTreeClassifier().fit(X, y)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert shallow.depth <= 1 < deep.depth
        assert shallow.node_count < deep.node_count

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = rng.integers(0, 2, 100)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_string_labels(self):
        X = np.array([[0.0], [10.0]])
        y = np.array(["ring", "bruck"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict([[0.0]])[0] == "ring"
        assert tree.predict([[10.0]])[0] == "bruck"

    def test_predict_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(150, 4))
        y = rng.integers(0, 3, 150)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (150, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_feature_importances_on_informative_feature(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 5))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 2)), np.zeros(4))

    def test_wrong_feature_count_at_predict_raises(self):
        tree = DecisionTreeClassifier().fit(np.zeros((4, 2)),
                                            np.array([0, 0, 1, 1]))
        with pytest.raises(ValueError, match="expected"):
            tree.predict(np.zeros((2, 5)))

    def test_single_class_dataset(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.zeros(20, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.all(tree.predict(X) == 0)
        assert tree.node_count == 1

    def test_constant_features_produce_single_leaf(self):
        X = np.ones((30, 3))
        y = np.array([0, 1] * 15)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1  # no valid split exists

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_training_accuracy_perfect_on_unique_rows(self, seed):
        """A fully-grown tree memorizes any dataset with unique inputs."""
        rng = np.random.default_rng(seed)
        X = rng.permutation(50)[:, None].astype(float)
        y = rng.integers(0, 3, 50)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_max_features_subsampling_still_learns(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(500, 6))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_features="sqrt",
                                      random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_invalid_max_features_raises(self):
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeClassifier(max_features=1.5).fit(
                np.zeros((4, 2)), np.array([0, 1, 0, 1]))


class TestRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = reg.predict(X)
        np.testing.assert_allclose(pred, y, atol=1e-9)

    def test_depth_one_is_best_single_split(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        reg = DecisionTreeRegressor(max_depth=1).fit(X, y)
        np.testing.assert_allclose(reg.predict(X), y)

    def test_leaf_value_is_mean(self):
        X = np.ones((5, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        reg = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(reg.predict([[1.0]]), [3.0])

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_predictions_within_target_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=80)
        reg = DecisionTreeRegressor(max_depth=4).fit(X, y)
        pred = reg.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9
