"""Tests for the probe renderers and the feature-extraction parsers —
the production path of the paper's extraction script."""

import dataclasses

import pytest

from repro.hwmodel import (
    HARDWARE_FEATURE_NAMES,
    ExtractionError,
    all_clusters,
    cluster_features,
    extract_features,
    get_cluster,
    probe_cluster,
)
from repro.hwmodel.extract import (
    parse_ibstat,
    parse_lscpu,
    parse_lspci,
    parse_meminfo,
    parse_stream,
)


class TestProbeRendering:
    def test_lscpu_roundtrip_all_clusters(self):
        for spec in all_clusters():
            vals = parse_lscpu(probe_cluster(spec).lscpu)
            cpu = spec.node.cpu
            assert vals["cpu_max_clock_ghz"] == pytest.approx(
                cpu.max_clock_ghz, rel=1e-3), spec.name
            assert vals["core_count"] == cpu.cores_per_node
            assert vals["thread_count"] == cpu.threads_per_node
            assert vals["sockets"] == cpu.sockets
            assert vals["numa_nodes"] == cpu.numa_nodes
            assert vals["l3_cache_mib"] == pytest.approx(
                cpu.l3_cache_mib, rel=1e-3), spec.name

    def test_ibstat_roundtrip_all_clusters(self):
        for spec in all_clusters():
            vals = parse_ibstat(probe_cluster(spec).ibstat)
            ic = spec.node.interconnect
            assert vals["link_width"] == ic.link_width
            assert vals["link_speed_gbps"] == pytest.approx(
                ic.generation.lane_gbps, rel=1e-2)

    def test_lspci_roundtrip_all_clusters(self):
        for spec in all_clusters():
            vals = parse_lspci(probe_cluster(spec).lspci)
            assert vals["pcie_version"] == spec.node.pcie.version
            assert vals["pcie_lanes"] == spec.node.pcie.lanes

    def test_stream_roundtrip(self):
        spec = get_cluster("Frontera")
        vals = parse_stream(probe_cluster(spec).stream)
        assert vals["memory_bandwidth_gbs"] == pytest.approx(140.8)

    def test_meminfo_roundtrip(self):
        spec = get_cluster("Frontera")
        vals = parse_meminfo(probe_cluster(spec).meminfo)
        assert vals["memory_capacity_gib"] == pytest.approx(192, rel=1e-3)


class TestParserErrors:
    def test_missing_field_raises(self):
        with pytest.raises(ExtractionError, match="CPU max MHz"):
            parse_lscpu("CPU(s): 4\n")

    def test_inconsistent_topology_raises(self):
        bad = ("CPU(s):              99\n"
               "Thread(s) per core:  2\n"
               "Core(s) per socket:  8\n"
               "Socket(s):           2\n"
               "NUMA node(s):        2\n"
               "CPU max MHz:         3000.0\n"
               "L3 cache:            16384K\n")
        with pytest.raises(ExtractionError, match="inconsistent"):
            parse_lscpu(bad)

    def test_unknown_pcie_rate_raises(self):
        with pytest.raises(ExtractionError, match="unknown PCIe"):
            parse_lspci("LnkSta:\tSpeed 7.0GT/s (ok), Width x16 (ok)\n")

    def test_empty_ibstat_raises(self):
        with pytest.raises(ExtractionError):
            parse_ibstat("")


class TestFeatureVector:
    def test_eleven_hardware_features(self):
        assert len(HARDWARE_FEATURE_NAMES) == 11

    def test_vector_order_matches_names(self):
        feats = cluster_features(get_cluster("MRI"))
        vec = feats.as_vector()
        assert len(vec) == 11
        for i, name in enumerate(HARDWARE_FEATURE_NAMES):
            assert vec[i] == pytest.approx(float(getattr(feats, name)))

    def test_extract_features_full_path(self):
        feats = extract_features(probe_cluster(get_cluster("Sierra")))
        assert feats.cpu_max_clock_ghz == pytest.approx(3.8)
        assert feats.link_speed_gbps == pytest.approx(25.0)
        assert feats.pcie_version == 4.0

    def test_distinct_clusters_have_distinct_features(self):
        vecs = {tuple(cluster_features(c).as_vector())
                for c in all_clusters()}
        # Hartree and Mayer share a CPU but differ in interconnect;
        # every cluster's 11-feature vector must still be unique.
        assert len(vecs) == 18

    def test_features_frozen(self):
        feats = cluster_features(get_cluster("RI"))
        with pytest.raises(dataclasses.FrozenInstanceError):
            feats.core_count = 1
