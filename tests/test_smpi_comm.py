"""Tests for the simulated MPI communicator."""

import pytest

from repro.hwmodel import get_cluster
from repro.simcluster import Machine, Process
from repro.smpi import Communicator


@pytest.fixture
def comm():
    return Communicator(Machine(get_cluster("Frontera"), 2, 4))


def _run(comm, *gens):
    procs = [Process(comm.sim, g) for g in gens]
    comm.sim.run()
    assert all(p.triggered for p in procs)
    return [p.value for p in procs]


class TestPointToPoint:
    def test_send_recv_delivers_payload(self, comm):
        def sender(comm):
            yield from comm.send(0, 1, 7, "hello", 100)

        def receiver(comm):
            msg = yield from comm.recv(1, 0, 7)
            return msg

        _, got = _run(comm, sender(comm), receiver(comm))
        assert got == "hello"

    def test_intra_faster_than_inter(self):
        machine = Machine(get_cluster("Frontera"), 2, 4)

        def time_pair(src, dst):
            comm = Communicator(machine)

            def sender(comm):
                yield from comm.send(src, dst, 0, "x", 4096)

            def receiver(comm):
                yield from comm.recv(dst, src, 0)

            _run(comm, sender(comm), receiver(comm))
            return comm.sim.now

        assert time_pair(0, 1) < time_pair(0, 4)

    def test_larger_messages_take_longer(self, comm):
        machine = comm.machine

        def time_size(nbytes):
            c = Communicator(machine)

            def sender(c):
                yield from c.send(0, 4, 0, "x", nbytes)

            def receiver(c):
                yield from c.recv(4, 0, 0)

            _run(c, sender(c), receiver(c))
            return c.sim.now

        assert time_size(1 << 20) > time_size(64)

    def test_self_send_rejected(self, comm):
        def bad(comm):
            yield from comm.send(0, 0, 0, "x", 8)

        Process(comm.sim, bad(comm))
        with pytest.raises(ValueError, match="self-sends"):
            comm.sim.run()

    def test_invalid_destination_rejected(self, comm):
        def bad(comm):
            yield from comm.send(0, 99, 0, "x", 8)

        Process(comm.sim, bad(comm))
        with pytest.raises(ValueError, match="invalid destination"):
            comm.sim.run()

    def test_sendrecv_exchange(self, comm):
        def worker(comm, me, peer):
            got = yield from comm.sendrecv(me, peer, f"from{me}", 64,
                                           peer, 5)
            return got

        a, b = _run(comm, worker(comm, 0, 1), worker(comm, 1, 0))
        assert (a, b) == ("from1", "from0")

    def test_nic_serializes_concurrent_sends(self):
        """Two large inter-node messages from the same node take about
        twice one message's wire time."""
        machine = Machine(get_cluster("Frontera"), 2, 4)
        nbytes = 4 << 20

        def measure(n_msgs):
            comm = Communicator(machine)

            def sender(comm, src):
                yield from comm.send(src, 4 + src, 0, "x", nbytes)

            def receiver(comm, dst):
                yield from comm.recv(dst, dst - 4, 0)

            gens = [sender(comm, i) for i in range(n_msgs)] + \
                [receiver(comm, 4 + i) for i in range(n_msgs)]
            _run(comm, *gens)
            return comm.sim.now

        one, two = measure(1), measure(2)
        wire = nbytes / machine.params.beta_inter_Bps
        assert two - one == pytest.approx(wire, rel=0.2)


class TestTraceAndBarrier:
    def test_trace_records_messages(self):
        machine = Machine(get_cluster("Frontera"), 1, 4)
        comm = Communicator(machine, record_trace=True)

        def sender(comm):
            yield from comm.send(0, 1, 0, "x", 123)

        def receiver(comm):
            yield from comm.recv(1, 0, 0)

        _run(comm, sender(comm), receiver(comm))
        assert len(comm.trace) == 1
        t = comm.trace[0]
        assert (t.src, t.dst, t.nbytes) == (0, 1, 123)

    def test_barrier_synchronizes_all(self):
        machine = Machine(get_cluster("Frontera"), 1, 4)
        comm = Communicator(machine)
        release_times = []

        def worker(comm, rank):
            yield comm.sim.timeout(rank * 1.0)
            yield from comm.barrier(rank)
            release_times.append(comm.sim.now)

        _run(comm, *(worker(comm, r) for r in range(4)))
        assert release_times == [pytest.approx(3.0)] * 4

    def test_undelivered_counted(self):
        machine = Machine(get_cluster("Frontera"), 1, 2)
        comm = Communicator(machine)

        def sender(comm):
            yield from comm.send(0, 1, 0, "orphan", 8)

        _run(comm, sender(comm))
        assert comm.undelivered_messages == 1

    def test_compute_and_local_copy_advance_clock(self):
        machine = Machine(get_cluster("Frontera"), 1, 2)
        comm = Communicator(machine)

        def worker(comm):
            yield from comm.compute(0, 1.5)
            yield from comm.local_copy(0, 1 << 20)

        _run(comm, worker(comm))
        assert comm.sim.now > 1.5
