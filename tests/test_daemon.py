"""The serving daemon: wire protocol, snapshot hot-reload, crash-safe
boot, and the socket loop end-to-end (in-process, against a real
Unix socket)."""

import json
import subprocess
import sys
import threading
import time

import pytest

from repro.core.bundle import save_selector
from repro.core.inference import PretrainedSelector
from repro.core.resilience import FileLock, atomic_write_text
from repro.core.training import train_model
from repro.hwmodel import get_cluster
from repro.obs.telemetry import MetricsRegistry, set_registry
from repro.serve import (
    DaemonClient,
    DaemonConfig,
    DaemonError,
    ProtocolError,
    SelectionDaemon,
    SnapshotStore,
    file_crc32,
)
from repro.serve.daemon import DAEMON_COUNTER_KEYS
from repro.serve.protocol import (
    encode,
    error_response,
    ok_response,
    parse_request,
)

CHAOS_COLLECTIVES = ("allgather", "alltoall")


@pytest.fixture(autouse=True)
def fresh_registry():
    """The daemon records into the ambient registry; give every test
    its own so counter equality assertions are exact."""
    previous = set_registry(MetricsRegistry())
    yield
    set_registry(previous)


@pytest.fixture(scope="module")
def ri_spec():
    return get_cluster("RI")


@pytest.fixture(scope="module")
def tiny_selector(mini_dataset):
    models = {coll: train_model(mini_dataset, coll, seed=0,
                                params={"n_estimators": 4})
              for coll in CHAOS_COLLECTIVES}
    return PretrainedSelector(models)


@pytest.fixture(scope="module")
def tiny_bundle(tiny_selector, tmp_path_factory):
    path = tmp_path_factory.mktemp("bundles") / "tiny.json"
    save_selector(tiny_selector, path)
    return path


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_parse_select(self):
        req = parse_request(json.dumps({
            "id": 7, "op": "select", "deadline_ms": 50,
            "queries": [{"collective": "allgather", "nodes": 2,
                         "ppn": 8, "msg_size": 4096}]}))
        assert req.id == 7 and req.op == "select"
        assert req.deadline_ms == 50.0
        assert len(req.queries) == 1
        assert req.queries[0].collective == "allgather"

    @pytest.mark.parametrize("op", ("ping", "stats", "reload",
                                    "shutdown", "metrics", "tail",
                                    "health"))
    def test_parse_control_ops(self, op):
        req = parse_request(json.dumps({"id": "a", "op": op}))
        assert req.op == op and req.queries == ()

    def test_parse_tail_n(self):
        req = parse_request(json.dumps({"id": 1, "op": "tail",
                                        "n": 5}))
        assert req.n == 5
        assert parse_request(
            json.dumps({"id": 1, "op": "tail"})).n is None

    @pytest.mark.parametrize("n", (0, -1, 513, True, "five", 2.5))
    def test_tail_n_out_of_bounds_rejected(self, n):
        with pytest.raises(ProtocolError, match="n must be"):
            parse_request(json.dumps({"id": 1, "op": "tail", "n": n}))

    def test_bytes_input_accepted(self):
        req = parse_request(b'{"id": 1, "op": "ping"}')
        assert req.op == "ping"

    @pytest.mark.parametrize("line, match", (
        ("nonsense", "not valid JSON"),
        ("[1, 2]", "must be a JSON object"),
        ('{"id": 1, "op": "teleport"}', "unknown op"),
        ('{"id": null, "op": "ping"}', "id must be"),
        ('{"id": true, "op": "ping"}', "id must be"),
        ('{"id": 1, "op": "select"}', "non-empty queries"),
        ('{"id": 1, "op": "select", "queries": []}',
         "non-empty queries"),
        ('{"id": 1, "op": "select", "queries": [5]}',
         "must be a JSON object"),
        ('{"id": 1, "op": "select", "queries": [{"nodes": 2}]}',
         "missing key"),
        ('{"id": 1, "op": "ping", "deadline_ms": 0}',
         "deadline_ms"),
        ('{"id": 1, "op": "ping", "deadline_ms": -3}',
         "deadline_ms"),
        ('{"id": 1, "op": "ping", "deadline_ms": true}',
         "deadline_ms"),
    ))
    def test_malformed_requests_rejected(self, line, match):
        with pytest.raises(ProtocolError, match=match):
            parse_request(line)

    def test_batch_cap_enforced(self):
        queries = [{"collective": "allgather", "nodes": 2, "ppn": 8,
                    "msg_size": 1}] * 3
        line = json.dumps({"id": 1, "op": "select",
                           "queries": queries})
        assert len(parse_request(line, max_batch=3).queries) == 3
        with pytest.raises(ProtocolError, match="exceeds max_batch"):
            parse_request(line, max_batch=2)

    def test_oversized_line_rejected(self):
        line = '{"id": 1, "op": "ping", "pad": "' \
            + "x" * (1 << 20) + '"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_request(line)

    def test_semantic_junk_passes_parsing(self):
        # Junk *values* are the service's problem (invalid decisions),
        # not the protocol's.
        req = parse_request(json.dumps({
            "id": 1, "op": "select",
            "queries": [{"collective": "nope", "nodes": -2,
                         "ppn": "eight", "msg_size": None}]}))
        assert req.queries[0].nodes == -2

    def test_encode_is_deterministic_jsonl(self):
        payload = ok_response(3, b="2", a=1)
        assert encode(payload) == encode(dict(reversed(
            list(payload.items()))))
        assert encode(payload).endswith(b"\n")

    def test_error_response_shape(self):
        resp = error_response(9, "overloaded", "busy")
        assert resp["ok"] is False
        assert resp["error"] == {"code": "overloaded",
                                 "detail": "busy"}
        with pytest.raises(ValueError, match="unknown error code"):
            error_response(9, "weird", "x")


# ---------------------------------------------------------------------------
# SnapshotStore (hot-reload)
# ---------------------------------------------------------------------------

class TestSnapshotStore:
    def test_boot_from_bundle(self, ri_spec, tiny_bundle):
        store = SnapshotStore(ri_spec, tiny_bundle)
        snapshot, error = store.boot()
        assert error is None
        assert snapshot.source == "bundle"
        assert snapshot.version == 1
        assert snapshot.checksum == file_crc32(tiny_bundle)
        assert store.current() is snapshot

    def test_boot_fallback_on_missing_bundle(self, ri_spec, tmp_path):
        store = SnapshotStore(ri_spec, tmp_path / "nope.json")
        snapshot, error = store.boot()
        assert error is not None and "FileNotFoundError" in error
        assert snapshot.source == "heuristic-floor"

    def test_boot_fallback_on_corrupt_bundle(self, ri_spec, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"broken')
        store = SnapshotStore(ri_spec, bad)
        snapshot, error = store.boot()
        assert error is not None and "Corrupt" in error
        assert snapshot.source == "heuristic-floor"

    def test_poll_unchanged_is_noop(self, ri_spec, tiny_bundle):
        store = SnapshotStore(ri_spec, tiny_bundle)
        first, _ = store.boot()
        result = store.poll()
        assert result.status == "unchanged"
        assert store.current() is first

    def test_poll_swaps_on_changed_checksum(self, ri_spec,
                                            tiny_selector, tmp_path,
                                            mini_dataset):
        bundle = tmp_path / "b.json"
        save_selector(tiny_selector, bundle)
        store = SnapshotStore(ri_spec, bundle)
        first, _ = store.boot()
        other = PretrainedSelector({
            coll: train_model(mini_dataset, coll, seed=1,
                              params={"n_estimators": 4})
            for coll in CHAOS_COLLECTIVES})
        save_selector(other, bundle)
        result = store.poll()
        assert result.status == "reloaded"
        current = store.current()
        assert current is not first
        assert current.version == first.version + 1
        assert current.checksum == file_crc32(bundle)
        # In-flight holders of the old snapshot still work: nothing in
        # it was mutated.
        assert first.service.select_batch([]) == []

    def test_reload_rejects_corrupt_and_rolls_back(self, ri_spec,
                                                   tiny_selector,
                                                   tmp_path):
        bundle = tmp_path / "b.json"
        save_selector(tiny_selector, bundle)
        store = SnapshotStore(ri_spec, bundle)
        first, _ = store.boot()
        atomic_write_text(bundle, '{"broken')
        result = store.reload()
        assert result.status == "rejected"
        assert "Corrupt" in result.detail
        assert store.current() is first  # rollback: old keeps serving
        # And a later valid write recovers.  (The re-write is
        # byte-identical to the *serving* snapshot, so poll() treats
        # it as unchanged — correct: the content reverted.  An
        # explicit reload still swaps.)
        save_selector(tiny_selector, bundle)
        assert store.poll().status == "unchanged"
        assert store.reload().status == "reloaded"

    def test_counters_accumulate_across_swaps(self, ri_spec,
                                              tiny_selector, tmp_path):
        from repro.serve import SelectionQuery

        bundle = tmp_path / "b.json"
        save_selector(tiny_selector, bundle)
        store = SnapshotStore(ri_spec, bundle)
        store.boot()
        query = SelectionQuery("allgather", 2, 8, 4096)
        store.current().service.select_batch([query])
        save_selector(tiny_selector, bundle)  # same content, new file
        store.reload()
        store.current().service.select_batch([query])
        assert store.registry.counters()["serve.queries"] == 2


# ---------------------------------------------------------------------------
# Daemon boot: locks, sentinels, quarantine
# ---------------------------------------------------------------------------

def _config(ri_spec, tmp_path, bundle, **overrides):
    defaults = dict(
        spec=ri_spec,
        socket_path=tmp_path / "d.sock",
        state_dir=tmp_path / "state",
        bundle=bundle,
        ready_file=tmp_path / "ready.json",
        reload_poll_s=0.05,
        drain_timeout_s=2.0,
        recovery_timeout_s=0.2,
    )
    defaults.update(overrides)
    return DaemonConfig(**defaults)


class TestDaemonBoot:
    def test_recovers_stale_lock_of_dead_pid(self, ri_spec, tmp_path,
                                             tiny_bundle):
        state = tmp_path / "state"
        state.mkdir()
        # A plausible-but-dead PID: our own PID is live, so take a
        # PID from a child that has already been reaped.
        dead_pid = _reaped_child_pid()
        (state / "daemon.lock").write_text(json.dumps(
            {"pid": dead_pid, "acquired_at": 0.0}))
        daemon = SelectionDaemon(_config(ri_spec, tmp_path,
                                         tiny_bundle))
        daemon.boot()
        try:
            assert daemon.counters["crash_recovered"] == 1
            assert daemon.counters["quarantined_boot"] == 0
            assert daemon.store.current().source == "bundle"
        finally:
            daemon._cleanup()

    def test_live_owner_blocks_second_boot(self, ri_spec, tmp_path,
                                           tiny_bundle):
        from repro.core.resilience import LockTimeoutError

        first = SelectionDaemon(_config(ri_spec, tmp_path,
                                        tiny_bundle))
        first.boot()
        try:
            second = SelectionDaemon(_config(
                ri_spec, tmp_path, tiny_bundle, lock_timeout_s=0.2))
            with pytest.raises(LockTimeoutError):
                second.boot()
        finally:
            first._cleanup()

    def test_corrupt_bundle_quarantined_at_boot(self, ri_spec,
                                                tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"broken')
        daemon = SelectionDaemon(_config(ri_spec, tmp_path, bad))
        daemon.boot()
        try:
            assert daemon.store.current().source == "heuristic-floor"
            assert daemon.counters["boot_fallback"] == 1
            assert daemon.counters["quarantined_boot"] == 1
            assert not bad.exists()
            assert (tmp_path / "bad.json.corrupt").exists()
        finally:
            daemon._cleanup()

    def test_boot_sentinel_quarantines_killer_bundle(
            self, ri_spec, tiny_selector, tmp_path):
        # Simulate a daemon that died *during* boot on this exact
        # bundle: the sentinel survives, so the next boot quarantines
        # the artifact instead of crash-looping on it.
        bundle = tmp_path / "b.json"
        save_selector(tiny_selector, bundle)
        state = tmp_path / "state"
        state.mkdir()
        (state / "boot.json").write_text(json.dumps({
            "pid": 999999, "bundle": str(bundle),
            "checksum": file_crc32(bundle)}))
        daemon = SelectionDaemon(_config(ri_spec, tmp_path, bundle))
        daemon.boot()
        try:
            assert daemon.counters["quarantined_boot"] == 1
            assert not bundle.exists()
            assert daemon.store.current().source == "heuristic-floor"
            # Sentinel consumed; no stale state left for next boot.
            assert not (state / "boot.json").exists()
        finally:
            daemon._cleanup()

    def test_boot_sentinel_ignored_when_bundle_changed(
            self, ri_spec, tiny_selector, tmp_path):
        bundle = tmp_path / "b.json"
        save_selector(tiny_selector, bundle)
        state = tmp_path / "state"
        state.mkdir()
        (state / "boot.json").write_text(json.dumps({
            "pid": 999999, "bundle": str(bundle),
            "checksum": "crc32:deadbeef"}))  # a different artifact
        daemon = SelectionDaemon(_config(ri_spec, tmp_path, bundle))
        daemon.boot()
        try:
            assert daemon.counters["quarantined_boot"] == 0
            assert daemon.store.current().source == "bundle"
        finally:
            daemon._cleanup()


def _reaped_child_pid() -> int:
    """A PID that existed moments ago and is guaranteed dead now."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


# ---------------------------------------------------------------------------
# End-to-end over a real Unix socket (in-process daemon thread)
# ---------------------------------------------------------------------------

@pytest.fixture()
def running_daemon(fresh_registry, ri_spec, tmp_path, tiny_bundle):
    daemon = SelectionDaemon(_config(ri_spec, tmp_path, tiny_bundle))
    daemon.boot()
    thread = threading.Thread(target=daemon.run, name="daemon")
    thread.start()
    deadline = time.monotonic() + 30.0
    while not daemon.config.ready_file.exists():
        assert thread.is_alive(), "daemon died before ready"
        assert time.monotonic() < deadline, "daemon never ready"
        time.sleep(0.01)
    yield daemon
    if thread.is_alive():
        try:
            with DaemonClient(daemon.config.socket_path) as client:
                client.shutdown()
        except OSError:
            pass
        thread.join(timeout=30.0)
    assert not thread.is_alive()


VALID = [{"collective": "allgather", "nodes": 2, "ppn": 8,
          "msg_size": 4096},
         {"collective": "alltoall", "nodes": 2, "ppn": 4,
          "msg_size": 512}]


class TestDaemonEndToEnd:
    def test_ping_stats_select_roundtrip(self, running_daemon):
        with DaemonClient(running_daemon.config.socket_path) as client:
            pong = client.ping()
            assert pong["protocol"] == 2 and not pong["draining"]

            response = client.select(VALID)
            decisions = response["decisions"]
            assert len(decisions) == 2
            for d in decisions:
                assert d["action"] != "invalid"
                assert isinstance(d["algorithm"], str)
            assert response["snapshot"] == 1
            assert "degraded" not in response

            stats = client.stats()
            counters = stats["counters"]
            assert stats["snapshot"]["source"] == "bundle"
            assert counters["serve.daemon.ok"] >= 2
            # Partition invariant holds at every observation.
            partition = sum(
                counters[f"serve.daemon.{k}"]
                for k in DAEMON_COUNTER_KEYS if k != "requests")
            assert partition == counters["serve.daemon.requests"]

    def test_metrics_scrape_is_partition_consistent(
            self, running_daemon):
        from repro.obs.expo import parse_prometheus

        with DaemonClient(running_daemon.config.socket_path) as client:
            client.select(VALID)
            client.ping()
            scrape = client.metrics()
            assert scrape["format"] == "prometheus/0.0.4"
            samples = parse_prometheus(scrape["body"])
        requests = samples["pml_serve_daemon_requests_total"]
        assert requests >= 2
        terminals = sum(
            samples[f"pml_serve_daemon_{k}_total"]
            for k in DAEMON_COUNTER_KEYS if k != "requests")
        # The exposition renders before the scrape's own accounting,
        # so the partition reconciles inside the scrape itself.
        assert terminals == requests
        assert 'pml_serve_daemon_request_s_bucket{le="+Inf"}' \
            in samples

    def test_tail_returns_bounded_recent_events(self, running_daemon):
        from repro.obs.live import EVENT_KINDS

        with DaemonClient(running_daemon.config.socket_path) as client:
            client.select(VALID)
            client.select(VALID)
            tail = client.tail()
            assert tail["capacity"] \
                == running_daemon.config.recorder_capacity
            events = tail["events"]
            assert 0 < len(events) <= 32
            assert tail["total"] >= len(events)
            # Far under capacity, so nothing has been evicted yet.
            assert tail["dropped"] == 0
            for event in events:
                assert event["kind"] in EVENT_KINDS
                assert isinstance(event["tick"], int)
            # Boot marker first, then the served requests.
            assert events[0]["kind"] == "lifecycle"
            assert any(e["kind"] == "request"
                       and e["op"] == "select" for e in events)
            assert len(client.tail(1)["events"]) == 1

    def test_tail_n_rejected_over_the_wire(self, running_daemon):
        with DaemonClient(running_daemon.config.socket_path) as client:
            with pytest.raises(DaemonError) as err:
                client.tail(0)
            assert err.value.code == "bad-request"
            client.ping()  # connection survives

    def test_health_reports_verdict_and_percentiles(
            self, running_daemon):
        with DaemonClient(running_daemon.config.socket_path) as client:
            client.select(VALID)
            health = client.health()
        assert health["verdict"] == "ok"
        assert health["snapshot"] == 1
        assert health["draining"] is False
        assert health["breaker"] == "closed"
        names = [slo["name"] for slo in health["slos"]]
        assert names == ["daemon-request-latency",
                         "daemon-availability"]
        for slo in health["slos"]:
            assert slo["verdict"] in ("ok", "warn", "page")
            assert slo["windows"]
        request_s = health["request_s"]
        assert request_s["count"] >= 1
        assert 0.0 <= request_s["p50"] <= request_s["p95"] \
            <= request_s["p99"]

    def test_introspection_answered_while_draining(
            self, running_daemon):
        with DaemonClient(running_daemon.config.socket_path) as client:
            client.select(VALID)
            running_daemon._draining = True
            try:
                assert "body" in client.metrics()
                assert client.tail()["events"]
                health = client.health()
                assert health["draining"] is True
                with pytest.raises(DaemonError) as err:
                    client.select(VALID)
                assert err.value.code == "draining"
            finally:
                running_daemon._draining = False

    def test_top_once_renders_live_frame(self, running_daemon):
        import io

        from repro.serve.top import poll_once, render_panel, run_top

        with DaemonClient(running_daemon.config.socket_path) as client:
            client.select(VALID)
        out = io.StringIO()
        assert run_top(str(running_daemon.config.socket_path),
                       once=True, out=out) == 0
        frame = out.getvalue()
        assert "pml-mpi top — serving" in frame
        assert "health: OK" in frame
        assert "flight recorder:" in frame
        assert "daemon-availability" in frame
        # A second observation gives the renderer a request rate.
        first = poll_once(str(running_daemon.config.socket_path))
        with DaemonClient(running_daemon.config.socket_path) as client:
            client.select(VALID)
        second = poll_once(str(running_daemon.config.socket_path))
        panel = render_panel(second, previous=first, elapsed_s=2.0)
        assert "/s" in panel and "n/a" not in panel

    def test_semantic_junk_becomes_invalid_decisions(
            self, running_daemon):
        with DaemonClient(running_daemon.config.socket_path) as client:
            response = client.select([
                {"collective": "allgather", "nodes": 2, "ppn": 8,
                 "msg_size": -5},
                {"collective": "no_such", "nodes": 2, "ppn": 8,
                 "msg_size": 64},
                VALID[0]])
            actions = [d["action"] for d in response["decisions"]]
            assert actions[0] == "invalid" and actions[1] == "invalid"
            assert actions[2] != "invalid"
            assert response["decisions"][0]["algorithm"] is None

    def test_protocol_garbage_answered_not_fatal(self, running_daemon):
        with DaemonClient(running_daemon.config.socket_path) as client:
            client._file.write(b'{"id": 1, "op": "warp"}\n')
            client._file.flush()
            answer = json.loads(client._file.readline())
            assert answer["ok"] is False
            assert answer["error"]["code"] == "bad-request"

    def test_deadline_degrades_to_floor(self, running_daemon):
        # Make the model path deterministically slower than the
        # deadline; the floor must answer instead, within the same
        # snapshot, and the response says so.
        service = running_daemon.store.current().service
        original = service.select_block

        def slow_select_block(records):
            time.sleep(0.3)
            return original(records)

        service.select_block = slow_select_block
        try:
            with DaemonClient(
                    running_daemon.config.socket_path) as client:
                response = client.select(VALID, deadline_ms=30)
                assert response["degraded"] == "deadline-floor"
                assert len(response["decisions"]) == 2
                for d in response["decisions"]:
                    assert isinstance(d["algorithm"], str)
        finally:
            service.select_block = original
        assert running_daemon.counters["deadline_floor"] >= 1

    def test_overload_sheds_with_typed_error(self, ri_spec, tmp_path,
                                             tiny_bundle):
        daemon = SelectionDaemon(_config(
            ri_spec, tmp_path, tiny_bundle, max_inflight=0,
            failure_threshold=10_000))
        daemon.boot()
        thread = threading.Thread(target=daemon.run)
        thread.start()
        try:
            while not daemon.config.ready_file.exists():
                time.sleep(0.01)
            with DaemonClient(daemon.config.socket_path) as client:
                with pytest.raises(DaemonError) as err:
                    client.select(VALID)
                assert err.value.code == "overloaded"
                client.ping()  # control ops still answered
            assert daemon.counters["overloaded"] == 1
        finally:
            with DaemonClient(daemon.config.socket_path) as client:
                client.shutdown()
            thread.join(timeout=30.0)

    def test_hot_reload_via_op_and_drain(self, ri_spec, tmp_path,
                                         tiny_selector, mini_dataset):
        bundle = tmp_path / "b.json"
        save_selector(tiny_selector, bundle)
        daemon = SelectionDaemon(_config(
            ri_spec, tmp_path, bundle,
            reload_poll_s=3600.0))  # poller quiet: test the op
        daemon.boot()
        thread = threading.Thread(target=daemon.run)
        thread.start()
        try:
            while not daemon.config.ready_file.exists():
                time.sleep(0.01)
            other = PretrainedSelector({
                coll: train_model(mini_dataset, coll, seed=2,
                                  params={"n_estimators": 4})
                for coll in CHAOS_COLLECTIVES})
            save_selector(other, bundle)
            with DaemonClient(daemon.config.socket_path) as client:
                result = client.reload()
                assert result["status"] == "reloaded"
                assert client.ping()["snapshot"] == 2

                # Corrupt swap: rejected, old snapshot keeps serving.
                atomic_write_text(bundle, '{"broken')
                result = client.reload()
                assert result["status"] == "rejected"
                assert client.ping()["snapshot"] == 2
                assert client.select(VALID)["snapshot"] == 2

                # Requests that arrive while draining get the typed
                # error.  (Flip the flag without the drain event so
                # the socket stays up for the assertion; after a real
                # shutdown the connection is torn down too fast to
                # observe the response deterministically.)
                daemon._draining = True
                try:
                    with pytest.raises(DaemonError) as err:
                        client.select(VALID)
                    assert err.value.code == "draining"
                    with pytest.raises(DaemonError) as err:
                        client.reload()
                    assert err.value.code == "draining"
                finally:
                    daemon._draining = False

                shutdown = client.shutdown()
                assert shutdown["draining"] is True
        finally:
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert not daemon.config.socket_path.exists()
        assert not daemon.config.ready_file.exists()
        assert not daemon.lock_path.exists()
