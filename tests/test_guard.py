"""Runtime guard layer: shared validation, feasibility predicates,
the circuit breaker state machine, and GuardedSelector's ladder."""

import pytest

from repro.core.framework import offline_train
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.core.training import train_model, training_envelope
from repro.hwmodel import get_cluster
from repro.simcluster.machine import Machine
from repro.smpi.collectives import base
from repro.smpi.guard import (
    ACTION_BREAKER,
    ACTION_ERROR,
    ACTION_MODEL,
    ACTION_OOD,
    ACTION_REMAP,
    GuardedSelector,
    extract_envelopes,
)
from repro.smpi.heuristics import (
    AlgorithmSelector,
    FixedSelector,
    InvalidQueryError,
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    RandomSelector,
    UnknownCollectiveError,
    validate_query,
)
from repro.smpi.tuning import OracleSelector, TableSelector, TuningTable


@pytest.fixture(scope="module")
def machine():
    return Machine(get_cluster("RI"), 2, 8)


@pytest.fixture(scope="module")
def odd_machine():
    """p = 6: not a power of two, trips the constrained families."""
    return Machine(get_cluster("Rome"), 3, 2)


# ---------------------------------------------------------------------------
# Shared input validation (satellite 1)
# ---------------------------------------------------------------------------

class _Shape:
    def __init__(self, nodes, ppn):
        self.nodes = nodes
        self.ppn = ppn


class TestValidateQuery:
    def test_accepts_well_formed(self, machine):
        validate_query("allgather", machine, 1024)

    @pytest.mark.parametrize("msg", [0, -1, -(1 << 20)])
    def test_rejects_non_positive_msg(self, machine, msg):
        with pytest.raises(InvalidQueryError):
            validate_query("allgather", machine, msg)

    @pytest.mark.parametrize("msg", [1.5, "1024", None, True])
    def test_rejects_non_integer_msg(self, machine, msg):
        with pytest.raises(InvalidQueryError):
            validate_query("allgather", machine, msg)

    def test_rejects_unknown_collective(self, machine):
        with pytest.raises(UnknownCollectiveError):
            validate_query("no_such_collective", machine, 1024)

    def test_unknown_collective_is_value_and_key_error(self, machine):
        """Pre-guard callers caught ValueError or KeyError; both keep
        working."""
        with pytest.raises(ValueError):
            validate_query("bogus", machine, 1024)
        with pytest.raises(KeyError):
            validate_query("bogus", machine, 1024)

    @pytest.mark.parametrize("shape", [
        _Shape(0, 8), _Shape(2, 0), _Shape(-1, 8), _Shape(2, -4),
        _Shape(2.5, 8), _Shape(2, "8"), _Shape(True, 8),
    ])
    def test_rejects_degenerate_shapes(self, shape):
        with pytest.raises(InvalidQueryError):
            validate_query("alltoall", shape, 1024)


SELECTOR_FACTORIES = [
    MvapichDefaultSelector,
    OpenMpiDefaultSelector,
    RandomSelector,
    lambda: FixedSelector("allgather", "ring"),
    OracleSelector,
]


class TestAllSelectorsValidate:
    """Every AlgorithmSelector implementation rejects malformed queries
    with the shared typed errors (regression: they used to silently
    compute with garbage or die with unrelated exceptions)."""

    @pytest.mark.parametrize("factory", SELECTOR_FACTORIES)
    def test_negative_msg(self, factory, machine):
        with pytest.raises(InvalidQueryError):
            factory().select("allgather", machine, -4)

    @pytest.mark.parametrize("factory", SELECTOR_FACTORIES)
    def test_unknown_collective(self, factory, machine):
        with pytest.raises(UnknownCollectiveError):
            factory().select("gossip", machine, 1024)

    def test_table_selector_validates(self, machine):
        table = TuningTable(cluster="RI")
        table.add("allgather", 2, 8, 1 << 20, "ring")
        sel = TableSelector(table)
        with pytest.raises(InvalidQueryError):
            sel.select("allgather", machine, 0)
        with pytest.raises(UnknownCollectiveError):
            sel.select("gossip", machine, 64)

    def test_pretrained_validates(self, mini_dataset):
        sel = offline_train(mini_dataset, collectives=("allgather",))
        machine = Machine(get_cluster("RI"), 2, 8)
        with pytest.raises(InvalidQueryError):
            sel.select("allgather", machine, -1)
        # Known-but-unmodeled collective: still the historical KeyError.
        with pytest.raises(KeyError, match="no pre-trained model"):
            sel.select("bcast", machine, 64)

    def test_fixed_selector_still_rejects_wrong_collective(self, machine):
        sel = FixedSelector("allgather", "ring")
        with pytest.raises(ValueError, match="fixed for"):
            sel.select("alltoall", machine, 64)


# ---------------------------------------------------------------------------
# Feasibility predicates (satellite 2)
# ---------------------------------------------------------------------------

class TestFeasibilityPredicates:
    def test_power_of_two_constraint(self):
        algo = base.get_algorithm("allgather", "recursive_doubling")
        assert algo.requires_power_of_two
        assert algo.feasible(8)
        assert not algo.feasible(6)
        assert "power-of-two" in algo.infeasibility(6)
        assert algo.infeasibility(8) is None

    def test_min_processes_constraint(self):
        algo = base.get_algorithm("alltoall", "inplace")
        assert algo.min_processes == 2
        assert not algo.feasible(1)
        assert ">=" in algo.infeasibility(1)

    @pytest.mark.parametrize("collective", base.ALL_COLLECTIVES)
    @pytest.mark.parametrize("p", [1, 2, 6, 7, 8, 12])
    def test_every_collective_keeps_a_feasible_algorithm(
            self, collective, p):
        """The guard's floor relies on this: no shape is unservable."""
        assert base.feasible_algorithm_names(collective, p)

    def test_feasible_names_excludes_constrained(self):
        names = base.feasible_algorithm_names("allgather", 6)
        assert "recursive_doubling" not in names
        assert "ring" in names
        assert base.is_feasible("allgather", "recursive_doubling", 8)
        assert not base.is_feasible("allgather", "recursive_doubling", 6)

    def test_heuristics_never_return_infeasible(self, odd_machine):
        """MVAPICH thresholds are gated on the registry predicates, so
        at p=6 the RD buckets fall through to feasible families."""
        sel = MvapichDefaultSelector()
        p = odd_machine.nodes * odd_machine.ppn
        for collective in base.ALL_COLLECTIVES:
            for msg in (8, 4096, 1 << 20):
                algo = sel.select(collective, odd_machine, msg)
                assert base.is_feasible(collective, algo, p), \
                    (collective, msg, algo)


# ---------------------------------------------------------------------------
# Circuit breaker state machine (satellite 4)
# ---------------------------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestCircuitBreaker:
    def make(self, threshold=3, timeout=10.0):
        clock = FakeClock()
        return CircuitBreaker(failure_threshold=threshold,
                              recovery_timeout_s=timeout,
                              clock=clock), clock

    def test_starts_closed_and_allows(self):
        breaker, _ = self.make()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow_request()

    def test_opens_at_threshold_not_before(self):
        breaker, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow_request()

    def test_success_resets_consecutive_count(self):
        breaker, _ = self.make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_after_timeout_single_probe(self):
        breaker, clock = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        assert not breaker.allow_request()
        clock.advance(9.9)
        assert not breaker.allow_request()
        clock.advance(0.2)
        assert breaker.allow_request()          # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow_request()      # only one in flight

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow_request()
        assert breaker.cycles() == 1

    def test_probe_failure_reopens(self):
        breaker, clock = self.make(threshold=1, timeout=10.0)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow_request()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow_request()
        assert breaker.cycles() == 0
        # ... and it can still recover later.
        clock.advance(11)
        assert breaker.allow_request()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.cycles() == 1

    def test_transition_counts(self):
        breaker, clock = self.make(threshold=1, timeout=1.0)
        for _ in range(2):
            breaker.record_failure()
            clock.advance(2)
            assert breaker.allow_request()
            breaker.record_success()
        counts = breaker.transition_counts()
        assert counts["closed->open"] == 2
        assert counts["open->half-open"] == 2
        assert counts["half-open->closed"] == 2
        assert breaker.cycles() == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_timeout_s=-1.0)


# ---------------------------------------------------------------------------
# GuardedSelector ladder (the tentpole)
# ---------------------------------------------------------------------------

class ScriptedSelector(AlgorithmSelector):
    """Returns / raises whatever the test scripts, in order."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def select(self, collective, machine, msg_size):
        self.calls += 1
        step = self.script.pop(0) if self.script else "ring"
        if isinstance(step, BaseException) or (
                isinstance(step, type)
                and issubclass(step, BaseException)):
            raise step
        return step


def make_guard(script, **kwargs):
    kwargs.setdefault("breaker", CircuitBreaker(
        failure_threshold=3, recovery_timeout_s=10.0, clock=FakeClock()))
    return GuardedSelector(ScriptedSelector(script), **kwargs)


class TestGuardedSelector:
    def test_clean_prediction_passes_through(self, machine):
        guard = make_guard(["ring"])
        assert guard.select("allgather", machine, 1024) == "ring"
        assert guard.last_decision.action == ACTION_MODEL
        assert guard.counters["served_model"] == 1

    def test_invalid_query_raises_and_counts(self, machine):
        guard = make_guard(["ring"])
        with pytest.raises(InvalidQueryError):
            guard.select("allgather", machine, -1)
        assert guard.counters["invalid"] == 1
        assert guard.counters["queries"] == 1

    def test_infeasible_prediction_remapped(self, odd_machine):
        guard = make_guard(["recursive_doubling"])
        algo = guard.select("allgather", odd_machine, 1024)
        p = odd_machine.nodes * odd_machine.ppn
        assert base.is_feasible("allgather", algo, p)
        assert guard.last_decision.action == ACTION_REMAP
        assert "power-of-two" in guard.last_decision.detail
        assert guard.counters["remapped"] == 1

    def test_unknown_label_remapped(self, machine):
        guard = make_guard(["__garbage__"])
        algo = guard.select("alltoall", machine, 64)
        assert base.is_feasible("alltoall", algo, 16)
        assert guard.last_decision.action == ACTION_REMAP

    def test_inner_exception_served_by_fallback(self, machine):
        guard = make_guard([RuntimeError("model exploded")])
        algo = guard.select("allgather", machine, 1024)
        assert base.is_feasible("allgather", algo, 16)
        assert guard.last_decision.action == ACTION_ERROR
        assert guard.counters["error_fallback"] == 1

    def test_breaker_opens_then_recovers(self, machine):
        clock = FakeClock()
        guard = make_guard(
            [RuntimeError("boom")] * 3 + ["ring"] * 10,
            breaker=CircuitBreaker(failure_threshold=3,
                                   recovery_timeout_s=10.0, clock=clock))
        for _ in range(3):
            guard.select("allgather", machine, 1024)
        assert guard.breaker.state == BREAKER_OPEN
        # While open, the inner selector is not consulted.
        calls_before = guard.inner.calls
        guard.select("allgather", machine, 1024)
        assert guard.last_decision.action == ACTION_BREAKER
        assert guard.inner.calls == calls_before
        # After the timeout, one probe goes through and closes it.
        clock.advance(11)
        guard.select("allgather", machine, 1024)
        assert guard.last_decision.action == ACTION_MODEL
        assert guard.breaker.state == BREAKER_CLOSED
        assert guard.breaker.cycles() == 1

    def test_ood_routes_to_fallback(self, mini_dataset):
        sel = offline_train(mini_dataset,
                            collectives=("allgather", "alltoall"))
        guard = GuardedSelector(sel)
        assert guard.envelopes  # lifted from the trained models
        huge = Machine(get_cluster("Frontera"), 2048, 16)
        algo = guard.select("allgather", huge, 1024)
        assert guard.last_decision.action == ACTION_OOD
        assert "octaves" in guard.last_decision.detail
        assert base.is_feasible("allgather", algo, 2048 * 16)
        assert guard.counters["ood_fallback"] == 1

    def test_in_envelope_not_ood(self, mini_dataset):
        sel = offline_train(mini_dataset, collectives=("allgather",))
        guard = GuardedSelector(sel)
        machine = Machine(get_cluster("RI"), 2, 8)
        guard.select("allgather", machine, 1024)
        assert guard.last_decision.action == ACTION_MODEL

    def test_no_envelope_disables_ood(self, machine):
        guard = make_guard(["ring"] * 2, envelopes={})
        huge = Machine(get_cluster("Frontera"), 2048, 16)
        guard.select("allgather", huge, 1024)
        assert guard.last_decision.action == ACTION_MODEL

    def test_fallback_infeasible_answer_floored(self, odd_machine):
        """Even a misbehaving fallback cannot ship an infeasible
        algorithm: the guard floors to the cheapest feasible one."""
        guard = make_guard(
            [RuntimeError("boom")],
            fallback=FixedSelector("allgather", "recursive_doubling"))
        algo = guard.select("allgather", odd_machine, 1024)
        p = odd_machine.nodes * odd_machine.ppn
        assert base.is_feasible("allgather", algo, p)
        assert guard.counters["fallback_floored"] == 1

    def test_fallback_exception_floored(self, odd_machine):
        class Bomb(AlgorithmSelector):
            def select(self, collective, machine, msg_size):
                raise RuntimeError("fallback exploded too")

        guard = make_guard([RuntimeError("boom")], fallback=Bomb())
        algo = guard.select("allgather", odd_machine, 1024)
        assert base.is_feasible("allgather", algo,
                                odd_machine.nodes * odd_machine.ppn)

    def test_counters_partition_queries(self, machine, odd_machine):
        guard = make_guard(
            ["ring", "recursive_doubling", RuntimeError("x")] * 4)
        fired = 0
        for msg in (64, 1024, 1 << 16):
            for m in (machine, odd_machine):
                guard.select("allgather", m, msg)
                fired += 1
        try:
            guard.select("allgather", machine, -1)
        except InvalidQueryError:
            pass
        fired += 1
        c = guard.counters
        assert c["queries"] == fired
        assert (c["invalid"] + c["served_model"] + c["remapped"]
                + c["ood_fallback"] + c["breaker_fallback"]
                + c["error_fallback"]) == fired

    def test_health_report(self, machine):
        guard = make_guard(["ring"])
        guard.select("allgather", machine, 1024)
        report = guard.health_report()
        assert report.counters["queries"] == 1
        assert report.counters["served_model"] == 1
        assert "queries" in report.describe()

    def test_best_feasible_prefers_cheap(self, odd_machine):
        guard = make_guard([])
        p = odd_machine.nodes * odd_machine.ppn
        name = guard._best_feasible("allgather", odd_machine, 1 << 20, p)
        names = base.feasible_algorithm_names("allgather", p)
        assert name in names
        best = min(names, key=lambda n: base.get_algorithm(
            "allgather", n).estimate(odd_machine, 1 << 20))
        assert name == best


# ---------------------------------------------------------------------------
# Envelope persistence (tentpole plumbing)
# ---------------------------------------------------------------------------

class TestEnvelope:
    def test_training_envelope_matches_dataset(self, mini_dataset):
        sub = mini_dataset.filter(collective="allgather")
        env = training_envelope(sub)
        assert env["nodes"][0] >= 1
        assert env["msg_size"][0] >= 1
        assert env["nodes"][0] <= env["nodes"][1]

    def test_train_model_persists_envelope(self, mini_dataset):
        model = train_model(mini_dataset, "allgather",
                            params={"n_estimators": 5})
        env = model.envelope
        assert env is not None
        assert set(env) == {"nodes", "ppn", "msg_size"}
        lo, hi = env["msg_size"]
        assert 0 < lo <= hi

    def test_malformed_envelope_metadata_is_none(self, mini_dataset):
        model = train_model(mini_dataset, "allgather",
                            params={"n_estimators": 5})
        model.metadata["envelope"] = {"nodes": [1]}
        assert model.envelope is None
        model.metadata["envelope"] = "garbage"
        assert model.envelope is None

    def test_extract_envelopes_heuristic_selector_empty(self):
        assert extract_envelopes(MvapichDefaultSelector()) == {}

    def test_ood_margin_in_octaves(self):
        guard = GuardedSelector(
            ScriptedSelector(["ring"] * 10),
            envelopes={"allgather": {"nodes": (2.0, 2.0),
                                     "ppn": (4.0, 8.0),
                                     "msg_size": (1.0, 1 << 20)}},
            ood_margin_log2=1.0)
        # 1 octave outside is tolerated, >1 octave is OOD.
        assert guard._ood_detail(
            "allgather", _Shape(4, 8), 1024) is None
        detail = guard._ood_detail("allgather", _Shape(16, 8), 1024)
        assert detail is not None and "nodes" in detail
        assert guard._ood_detail(
            "allgather", _Shape(2, 8), 1 << 22) is not None

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            GuardedSelector(MvapichDefaultSelector(), ood_margin_log2=-1)


# ---------------------------------------------------------------------------
# Registry-backed counters (observability layer)
# ---------------------------------------------------------------------------

class TestRegistryBackedCounters:
    """The guard's health counters are registry instruments; the
    counter-partition invariant must reconcile exactly through them."""

    def test_counters_live_in_per_instance_registry(self, machine):
        guard = make_guard(["ring"])
        guard.select("allgather", machine, 1024)
        assert guard.registry.counter("guard.queries").value == 1
        assert guard.registry.counter("guard.served_model").value == 1
        assert guard.counters["queries"] == 1

    def test_two_guards_do_not_share_counts(self, machine):
        a, b = make_guard(["ring"]), make_guard(["ring"])
        a.select("allgather", machine, 1024)
        assert a.counters["queries"] == 1
        assert b.counters["queries"] == 0

    def test_explicit_registry_aggregates(self, machine):
        from repro.obs.telemetry import MetricsRegistry

        shared = MetricsRegistry()
        a = make_guard(["ring"], registry=shared)
        b = make_guard(["ring"], registry=shared)
        a.select("allgather", machine, 1024)
        b.select("allgather", machine, 1024)
        assert shared.counter("guard.queries").value == 2

    def test_partition_invariant_reconciles_via_registry(
            self, machine, odd_machine):
        guard = make_guard(
            ["ring", "recursive_doubling", RuntimeError("x")] * 4)
        fired = 0
        for msg in (64, 1024, 1 << 16):
            for m in (machine, odd_machine):
                guard.select("allgather", m, msg)
                fired += 1
        try:
            guard.select("allgather", machine, -1)
        except InvalidQueryError:
            pass
        fired += 1
        reg = guard.registry
        partition = sum(
            reg.counter(f"guard.{k}").value
            for k in ("invalid", "served_model", "remapped",
                      "ood_fallback", "breaker_fallback",
                      "error_fallback"))
        assert partition == fired
        assert reg.counter("guard.queries").value == fired
        # The snapshot property mirrors the registry exactly.
        assert guard.counters == {
            k: reg.counter(f"guard.{k}").value
            for k in guard.counters}
