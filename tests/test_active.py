"""Active-learning collection: differential, property and cache tests.

The differential suite holds ``run_active_collection`` to the ISSUE's
acceptance bar on a fixed small cluster pair (RI + Ray): within 2 % of
the exhaustive sweep's test accuracy on all three paper splits while
spending at most half its simulated core-hours, with byte-identical
benchmark schedules and decision logs for the same seed.

The property suite pins the ledger invariants: no configuration is
ever benchmarked twice, spending is monotone and never overshoots the
budget, and a smaller budget's schedule is a strict prefix of a larger
one's (denial happens before charging, so the loop walks one
deterministic schedule and merely stops earlier).

The cache suite covers the quarantine ladder for digest collisions: a
cache file whose ``__meta__`` carries a different full campaign key —
e.g. an active run colliding with an exhaustive sweep's CRC-32 file
name — is quarantined, never silently served.
"""

import numpy as np
import pytest

from repro.active import (
    ActiveConfig,
    BudgetExceededError,
    Candidate,
    CoreHourLedger,
    build_pool,
    dataset_core_hours,
    run_active_collection,
    stratified_seed,
)
from repro.active.acquire import estimated_core_hours
from repro.core.bench import _split_accuracy
from repro.core.dataset import (
    TuningDataset,
    collect_dataset,
    dataset_cache_key,
    dataset_cache_path,
    load_cached_dataset,
)
from repro.core import dataset as dataset_mod
from repro.core.splits import split_dataset
from repro.hwmodel.registry import get_cluster
from repro.ml.uncertainty import (
    acquisition_order,
    prediction_margin,
    vote_entropy,
)
from repro.obs.telemetry import use_telemetry

pytestmark = pytest.mark.active

#: The fixed small cluster pair and collectives of the differential
#: suite — the same campaign the committed ``active_collect`` bench
#: entry records.
PAIR = ("RI", "Ray")
PAIR_COLLECTIVES = ("allgather", "alltoall")

#: The paper's three split methodologies, sized for the pair (node
#: counts only reach 8, so the scale split trains on <= 4).
SPLITS = [
    ("random", {}),
    ("cluster", {"test_clusters": ("Ray",)}),
    ("node", {"max_train_nodes": 4}),
]


def _pair_clusters():
    return [get_cluster(name) for name in PAIR]


def _pool_of(records) -> list[Candidate]:
    return [Candidate(r.cluster, r.collective, r.nodes, r.ppn,
                      r.msg_size) for r in records]


@pytest.fixture(scope="module")
def pair_dataset():
    return collect_dataset(clusters=_pair_clusters(),
                           collectives=PAIR_COLLECTIVES)


@pytest.fixture(scope="module")
def ri_allgather_pool():
    return build_pool([get_cluster("RI")], ("allgather",))


def _run(pool, **config_kwargs):
    return run_active_collection(
        clusters=_pair_clusters(), collectives=PAIR_COLLECTIVES,
        config=ActiveConfig(**config_kwargs), pool=pool,
        use_cache=False)


class TestUncertainty:
    def test_vote_entropy_uniform_is_maximal(self):
        proba = np.array([[0.25, 0.25, 0.25, 0.25],
                          [1.0, 0.0, 0.0, 0.0],
                          [0.5, 0.5, 0.0, 0.0]])
        entropy = vote_entropy(proba)
        assert entropy[0] == pytest.approx(np.log(4))
        assert entropy[1] == pytest.approx(0.0)
        assert entropy[2] == pytest.approx(np.log(2))
        assert entropy[0] > entropy[2] > entropy[1]

    def test_vote_entropy_normalizes_rows(self):
        assert vote_entropy(np.array([[2.0, 2.0]]))[0] == \
            pytest.approx(np.log(2))

    def test_prediction_margin(self):
        proba = np.array([[0.6, 0.3, 0.1], [0.4, 0.4, 0.2]])
        margin = prediction_margin(proba)
        assert margin[0] == pytest.approx(0.3)
        assert margin[1] == pytest.approx(0.0)

    def test_single_class_matrix_is_confident(self):
        assert prediction_margin(np.array([[1.0]]))[0] == 1.0

    def test_acquisition_order_deterministic_tiebreak(self):
        proba = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.1]])
        order = acquisition_order(proba)
        assert list(order) == [0, 1, 2]

    def test_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            vote_entropy(np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            prediction_margin(np.array([[0.5, float("nan")]]))
        with pytest.raises(ValueError):
            vote_entropy(np.array([[-0.5, 1.5]]))


class TestStratifiedSeed:
    def test_every_job_shape_represented(self, ri_allgather_pool):
        pool = ri_allgather_pool
        indices = stratified_seed(pool, 0.2, seed=0)
        seeded_shapes = {(pool[i].cluster, pool[i].collective,
                          pool[i].nodes, pool[i].ppn) for i in indices}
        all_shapes = {(c.cluster, c.collective, c.nodes, c.ppn)
                      for c in pool}
        assert seeded_shapes == all_shapes

    def test_indices_sorted_and_unique(self, ri_allgather_pool):
        indices = stratified_seed(ri_allgather_pool, 0.3, seed=3)
        assert indices == sorted(set(indices))

    def test_fraction_validated(self, ri_allgather_pool):
        with pytest.raises(ValueError):
            stratified_seed(ri_allgather_pool, 0.0)
        with pytest.raises(ValueError):
            stratified_seed(ri_allgather_pool, 1.5)

    def test_cost_tail_excluded_with_specs(self):
        clusters = _pair_clusters()
        pool = build_pool(clusters, PAIR_COLLECTIVES)
        specs = {s.name: s for s in clusters}
        costs = [estimated_core_hours(specs[c.cluster], c.collective,
                                      c.nodes, c.ppn, c.msg_size)
                 for c in pool]
        cap = 0.01 * sum(costs)
        indices = stratified_seed(pool, 0.2, seed=0, specs=specs)
        assert indices, "seed must not be empty"
        assert all(costs[i] <= cap for i in indices)


class TestCoreHourLedger:
    def test_charge_is_monotone(self):
        ledger = CoreHourLedger(limit_core_h=1.0)
        for cost in (0.1, 0.2, 0.3):
            ledger.charge(cost)
        assert ledger.history == pytest.approx([0.1, 0.3, 0.6])
        assert all(b > a for a, b in zip(ledger.history,
                                         ledger.history[1:]))

    def test_never_overshoots(self):
        ledger = CoreHourLedger(limit_core_h=0.5)
        ledger.charge(0.4)
        assert not ledger.can_afford(0.2)
        with pytest.raises(BudgetExceededError):
            ledger.charge(0.2)
        assert ledger.spent_core_h == pytest.approx(0.4)

    def test_unlimited_ledger(self):
        ledger = CoreHourLedger()
        assert ledger.unlimited
        assert ledger.remaining() == float("inf")
        assert ledger.can_afford(1e9)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            CoreHourLedger(limit_core_h=-1.0)
        with pytest.raises(ValueError):
            CoreHourLedger(1.0).can_afford(-0.1)


class TestActiveConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ActiveConfig(seed_fraction=0.0)
        with pytest.raises(ValueError):
            ActiveConfig(val_fraction=1.0)
        with pytest.raises(ValueError):
            ActiveConfig(batch_size=0)
        with pytest.raises(ValueError):
            ActiveConfig(budget_fraction=0.0)
        with pytest.raises(ValueError):
            ActiveConfig(plateau_patience=0)

    def test_cache_suffix_encodes_trajectory(self):
        a = ActiveConfig()
        b = ActiveConfig(seed=1)
        c = ActiveConfig(budget_core_h=0.5)
        d = ActiveConfig(budget_fraction=0.5)
        suffixes = {cfg.cache_suffix() for cfg in (a, b, c, d)}
        assert len(suffixes) == 4


class TestDifferential:
    """The ISSUE acceptance bar, per split."""

    @pytest.mark.parametrize("method,kwargs", SPLITS,
                             ids=[m for m, _ in SPLITS])
    def test_matches_exhaustive_within_two_percent(self, pair_dataset,
                                                   method, kwargs):
        train_ds, test_ds = split_dataset(pair_dataset, method, **kwargs)
        result = _run(_pool_of(train_ds.records))

        exhaustive_acc = _split_accuracy(train_ds, test_ds,
                                         PAIR_COLLECTIVES)
        active_acc = _split_accuracy(result.dataset, test_ds,
                                     PAIR_COLLECTIVES)
        gap = exhaustive_acc - active_acc
        assert gap <= 0.02, (
            f"{method} split: active accuracy {active_acc:.4f} trails "
            f"exhaustive {exhaustive_acc:.4f} by {gap:.4f} (> 2 %)")

        exhaustive_ch = dataset_core_hours(train_ds.records)
        assert result.core_hours <= 0.5 * exhaustive_ch, (
            f"{method} split: active spent {result.core_hours:.4f} "
            f"core-h, more than half of the exhaustive "
            f"{exhaustive_ch:.4f}")
        assert result.stop_reason in ("plateau", "budget")

    def test_same_seed_byte_identical(self, pair_dataset):
        train_ds, _ = split_dataset(pair_dataset, "cluster",
                                    test_clusters=("Ray",))
        pool = _pool_of(train_ds.records)
        first = _run(pool, seed=5)
        second = _run(pool, seed=5)
        assert first.schedule == second.schedule
        assert first.decision_log_text() == second.decision_log_text()
        assert [r.__dict__ for r in first.dataset.records] == \
            [r.__dict__ for r in second.dataset.records]

    def test_schedule_is_deterministic_in_the_seed_only(
            self, pair_dataset):
        """Seeds index distinct trajectories; everything else is pure."""
        train_ds, _ = split_dataset(pair_dataset, "random")
        pool = _pool_of(train_ds.records)
        a = _run(pool, seed=0, max_rounds=2)
        b = _run(pool, seed=1, max_rounds=2)
        assert a.schedule[:a.seeded] != b.schedule[:b.seeded]


class TestProperties:
    def test_no_config_benchmarked_twice(self, ri_allgather_pool):
        result = _run(ri_allgather_pool, budget_fraction=None)
        assert len(result.schedule) == len(set(result.schedule))
        record_keys = [(r.cluster, r.collective, r.nodes, r.ppn,
                        r.msg_size) for r in result.dataset.records]
        assert len(record_keys) == len(set(record_keys))

    def test_budget_monotone_and_never_overshot(self, ri_allgather_pool):
        budget = 0.0008
        result = _run(ri_allgather_pool, budget_core_h=budget,
                      budget_fraction=None)
        history = result.budget_history
        assert history, "a budget run must charge something"
        assert all(b > a for a, b in zip(history, history[1:]))
        assert history[-1] <= budget
        assert result.core_hours == pytest.approx(history[-1])
        assert result.stop_reason == "budget"
        assert result.denied == 1

    def test_shrinking_budget_yields_schedule_prefix(
            self, ri_allgather_pool):
        budgets = [0.0004, 0.0008, 0.0016, None]
        schedules = [
            _run(ri_allgather_pool, budget_core_h=b,
                 budget_fraction=None).schedule
            for b in budgets
        ]
        for smaller, larger in zip(schedules, schedules[1:]):
            assert len(smaller) <= len(larger)
            assert larger[:len(smaller)] == smaller
        assert len(schedules[0]) < len(schedules[-1])

    def test_counters_partition_the_schedule(self, ri_allgather_pool):
        with use_telemetry() as (_, registry):
            result = _run(ri_allgather_pool, budget_fraction=None)
        counters = registry.counters()
        assert counters["collect.active.seeded"] == result.seeded
        assert counters["collect.active.acquired"] == result.acquired
        assert counters.get("collect.active.dropped", 0) == \
            result.dropped
        # Every attempted config is exactly one of seeded / acquired /
        # dropped; denied configs never ran and are not in the schedule.
        assert result.seeded + result.acquired + result.dropped == \
            len(result.schedule)
        assert result.seeded + result.acquired == len(result.dataset)

    def test_dropped_configs_stay_in_schedule(self, ri_allgather_pool):
        from repro.core.resilience import RetryPolicy
        from repro.simcluster.conditions import FaultProfile

        faults = FaultProfile(failure_rate=0.4, seed=1)
        retry = RetryPolicy(max_attempts=1, base_delay_s=0.0,
                            jitter=0.0)
        result = run_active_collection(
            clusters=[get_cluster("RI")], collectives=("allgather",),
            config=ActiveConfig(budget_fraction=None),
            pool=ri_allgather_pool, faults=faults, retry=retry,
            use_cache=False)
        assert result.dropped > 0
        assert len(result.schedule) == \
            len(result.dataset) + result.dropped


class TestActiveCache:
    def test_cache_roundtrip(self, tmp_path):
        kwargs = dict(clusters=[get_cluster("RI")],
                      collectives=("allgather",),
                      config=ActiveConfig(),
                      cache_dir=tmp_path)
        first = run_active_collection(**kwargs)
        assert not first.cached
        second = run_active_collection(**kwargs)
        assert second.cached
        assert second.schedule == first.schedule
        assert second.decisions == first.decisions
        assert second.core_hours == pytest.approx(first.core_hours)
        assert second.stop_reason == first.stop_reason
        assert [r.__dict__ for r in second.dataset.records] == \
            [r.__dict__ for r in first.dataset.records]

    def test_collision_with_exhaustive_key_quarantined(
            self, tmp_path, monkeypatch):
        """An active cache key whose CRC-32 digest collides with an
        exhaustive sweep's must be quarantined on load, not served."""
        monkeypatch.setattr(dataset_mod, "_cache_digest",
                            lambda key: 0xC0111DED)
        clusters = [get_cluster("RI")]
        exhaustive = collect_dataset(clusters=clusters,
                                     collectives=("allgather",),
                                     cache_dir=tmp_path)
        exhaustive_key = dataset_cache_key(clusters, ("allgather",))
        active_key = dataset_cache_key(
            clusters, ("allgather",),
            suffix=ActiveConfig().cache_suffix())
        path = dataset_cache_path(exhaustive_key, tmp_path)
        assert path == dataset_cache_path(active_key, tmp_path)
        assert path.exists()

        with use_telemetry() as (_, registry):
            loaded = load_cached_dataset(path, active_key)
        assert loaded is None
        counters = registry.counters()
        assert counters["collect.cache_key_mismatch"] == 1
        assert counters["collect.cache_quarantined"] == 1
        assert not path.exists()
        assert list(tmp_path.glob("*.corrupt*"))

        # The exhaustive campaign re-collects cleanly afterwards.
        recollected = collect_dataset(clusters=clusters,
                                      collectives=("allgather",),
                                      cache_dir=tmp_path)
        assert [r.__dict__ for r in recollected.records] == \
            [r.__dict__ for r in exhaustive.records]

    def test_active_cache_collision_survives_end_to_end(
            self, tmp_path, monkeypatch):
        """Full-loop version: the active run finds the exhaustive
        cache squatting on its digest, quarantines it, re-runs the
        acquisition loop, and leaves its own cache behind."""
        monkeypatch.setattr(dataset_mod, "_cache_digest",
                            lambda key: 0xDEADBEEF)
        clusters = [get_cluster("RI")]
        collect_dataset(clusters=clusters, collectives=("allgather",),
                        cache_dir=tmp_path)
        result = run_active_collection(clusters=clusters,
                                       collectives=("allgather",),
                                       config=ActiveConfig(),
                                       cache_dir=tmp_path)
        assert not result.cached
        assert list(tmp_path.glob("*.corrupt*"))
        replay = run_active_collection(clusters=clusters,
                                       collectives=("allgather",),
                                       config=ActiveConfig(),
                                       cache_dir=tmp_path)
        assert replay.cached
        assert replay.schedule == result.schedule

    def test_full_key_stored_in_meta(self, tmp_path):
        clusters = [get_cluster("RI")]
        run_active_collection(clusters=clusters,
                              collectives=("allgather",),
                              config=ActiveConfig(),
                              cache_dir=tmp_path)
        key = dataset_cache_key(clusters, ("allgather",),
                                suffix=ActiveConfig().cache_suffix())
        dataset = TuningDataset.load(dataset_cache_path(key, tmp_path))
        assert dataset.meta["cache_key"] == key
        assert dataset.meta["active"]["stop_reason"] in (
            "plateau", "budget", "exhausted", "max_rounds")


class TestDoctor:
    def test_decision_log_is_a_recognized_artifact(self, tmp_path):
        from repro.core.framework import diagnose_artifact

        clusters = [get_cluster("RI")]
        pool = build_pool(clusters, ("allgather",))
        result = run_active_collection(clusters=clusters,
                                       collectives=("allgather",),
                                       config=ActiveConfig(),
                                       pool=pool, use_cache=False)
        log = tmp_path / "decisions.jsonl"
        log.write_text(result.decision_log_text())
        check = diagnose_artifact(log)
        assert check.kind == "decision-log"
        assert check.status == "ok"

        torn = tmp_path / "decisions_torn.jsonl"
        torn.write_text('{"round": 1}\n{ torn')
        assert diagnose_artifact(torn).status == "corrupt"


class TestCli:
    def test_collect_active_cli(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("PML_MPI_CACHE", str(tmp_path / "cache"))
        log_path = tmp_path / "decisions.jsonl"
        out_path = tmp_path / "dataset.jsonl.gz"
        rc = main(["collect", "--active", "--clusters", "RI",
                   "--collectives", "allgather",
                   "--decision-log", str(log_path),
                   "--output", str(out_path), "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "active collection" in out
        assert "stop:" in out
        import json
        decisions = [json.loads(line)
                     for line in log_path.read_text().splitlines()]
        assert decisions and all("round" in d for d in decisions)
        assert TuningDataset.load(out_path).records
