"""Tests for Machine (placement, feasibility, round-cost evaluation)."""

import numpy as np
import pytest

from repro.hwmodel import get_cluster
from repro.simcluster import Machine, Round


@pytest.fixture(scope="module")
def machine():
    return Machine(get_cluster("Frontera"), nodes=4, ppn=8)


def _round(src, dst, size, **kw):
    return Round(src=np.asarray(src), dst=np.asarray(dst),
                 size=np.asarray(size, dtype=float), **kw)


class TestMachineBasics:
    def test_p_and_placement(self, machine):
        assert machine.p == 32
        assert machine.node_of(0) == 0
        assert machine.node_of(7) == 0
        assert machine.node_of(8) == 1
        assert machine.node_of(31) == 3

    def test_vectorized_node_of(self, machine):
        ranks = np.arange(32)
        nodes = machine.node_of(ranks)
        assert nodes.min() == 0 and nodes.max() == 3
        assert np.all(np.bincount(nodes) == 8)

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError, match="at most"):
            Machine(get_cluster("RI"), nodes=64, ppn=2)

    def test_too_large_ppn_rejected(self):
        with pytest.raises(ValueError, match="hardware threads"):
            Machine(get_cluster("Frontera"), nodes=1, ppn=500)

    def test_fits_memory(self, machine):
        assert machine.fits_memory(1024.0)
        node_bytes = 192 * 1024**3
        assert not machine.fits_memory(node_bytes / 4)


class TestRoundValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            _round([0, 1], [1], [4.0])

    def test_self_message_rejected(self):
        with pytest.raises(ValueError, match="self-messages"):
            _round([0], [0], [4.0])

    def test_zero_repeat_rejected(self):
        with pytest.raises(ValueError, match="repeat"):
            _round([0], [1], [4.0], repeat=0)

    def test_total_bytes_includes_repeat(self):
        rnd = _round([0, 1], [1, 0], [100.0, 100.0], repeat=3)
        assert rnd.total_bytes == pytest.approx(600.0)


class TestRoundCost:
    def test_empty_schedule_is_free(self, machine):
        assert machine.evaluate([]) == 0.0

    def test_intra_cheaper_than_inter(self, machine):
        intra = _round([0], [1], [1024.0])   # same node
        inter = _round([0], [8], [1024.0])   # across nodes
        assert machine.round_time(intra) < machine.round_time(inter)

    def test_cost_increases_with_size(self, machine):
        small = _round([0], [8], [1024.0])
        large = _round([0], [8], [1024.0 * 1024])
        assert machine.round_time(small) < machine.round_time(large)

    def test_latency_floor(self, machine):
        tiny = _round([0], [8], [1.0])
        assert machine.round_time(tiny) >= machine.params.alpha_inter_s

    def test_rendezvous_latency_applied(self, machine):
        eager = machine.params.eager_inter_bytes
        under = machine.round_time(_round([0], [8], [float(eager)]))
        # Strip the bandwidth difference: compare against the same size.
        over = machine.round_time(_round([0], [8], [float(eager + 1)]))
        assert over > under + 1.5 * machine.params.alpha_inter_s

    def test_parallel_messages_cheaper_than_serialized(self, machine):
        # 8 messages from one node vs 8 messages from 8 distinct ranks
        # on different nodes to different nodes: the former serializes
        # on one NIC.
        m = Machine(get_cluster("Frontera"), nodes=8, ppn=8)
        big = 1 << 20
        one_nic = _round([0] * 4, [8, 16, 24, 32], [big] * 4)
        spread = _round([0, 8, 16, 24], [32, 40, 48, 56], [big] * 4)
        assert m.round_time(spread) < m.round_time(one_nic)

    def test_copy_only_round(self, machine):
        rnd = Round(src=np.empty(0, np.int64), dst=np.empty(0, np.int64),
                    size=np.empty(0), copy_ranks=np.array([0, 1]),
                    copy_bytes=np.array([1024.0, 2048.0]))
        t = machine.round_time(rnd)
        assert 0 < t < machine.params.alpha_inter_s

    def test_repeat_multiplies_cost(self, machine):
        rnd = _round([0], [8], [4096.0])
        once = machine.evaluate([rnd])
        rnd10 = _round([0], [8], [4096.0], repeat=10)
        assert machine.evaluate([rnd10]) == pytest.approx(10 * once)

    def test_blast_slower_than_permutation_per_byte(self):
        """One round carrying k*m bytes per NIC in many flows must cost
        more than k permutation rounds of m bytes each (ignoring the
        extra latency terms) — the flow penalty at work."""
        m = Machine(get_cluster("Frontera"), nodes=2, ppn=16)
        size = 1 << 20
        ranks = np.arange(16)
        # Blast: every rank on node 0 sends to every rank on node 1.
        src = np.repeat(ranks, 16)
        dst = np.tile(ranks + 16, 16)
        blast = _round(src, dst, np.full(256, float(size)))
        perm = _round(ranks, ranks + 16, np.full(16, float(size)),
                      repeat=16)
        t_blast = m.round_time(blast)
        t_perm = m.evaluate([perm]) - 15 * m.params.alpha_inter_s * 3
        assert t_blast > t_perm
