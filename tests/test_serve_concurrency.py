"""Thread-hammer tests: concurrent access to the LRU memo and the
batched SelectionService must neither drop/duplicate decisions nor
break the serve.* counter partition.

The daemon drives one SelectionService from a thread pool (plus the
event-loop thread for the heuristic floor), so the cache, the service
batch path, and the telemetry counters all see genuine concurrency.
"""

import threading

import pytest

from repro.hwmodel import get_cluster
from repro.serve import (
    LRUCache,
    SelectionQuery,
    SelectionService,
)
from repro.serve.service import SERVE_COUNTER_KEYS
from repro.smpi.heuristics import MvapichDefaultSelector

N_THREADS = 8
ROUNDS = 40


@pytest.fixture(scope="module")
def ray_spec():
    return get_cluster("Ray")


def _run_threads(worker, n=N_THREADS):
    """Start n copies of worker behind a barrier; re-raise the first
    worker exception in the test thread."""
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(tid):
        try:
            barrier.wait()
            worker(tid)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


class TestLRUCacheHammer:
    def test_disjoint_keys_none_lost(self):
        """Each thread owns a disjoint key range in an uncontended
        (large enough) cache: every put must be readable afterwards
        and the bookkeeping must balance exactly."""
        cache = LRUCache(N_THREADS * ROUNDS)

        def worker(tid):
            for i in range(ROUNDS):
                key = (tid, i)
                cache.put(key, tid * 1000 + i)
                assert cache.get(key) == tid * 1000 + i

        _run_threads(worker)
        assert len(cache) == N_THREADS * ROUNDS
        assert cache.evictions == 0
        for tid in range(N_THREADS):
            for i in range(ROUNDS):
                assert cache.get((tid, i)) == tid * 1000 + i

    def test_contended_eviction_invariants(self):
        """All threads fight over one tiny cache: entries may be
        evicted, but size never exceeds capacity, counters balance
        (hits + misses == gets), and a successful get returns the
        exact value that key was last put with."""
        capacity = 4
        cache = LRUCache(capacity)

        def worker(tid):
            for i in range(ROUNDS):
                key = i % 10
                cache.put(key, key * 7)  # same value for a given key
                value = cache.get(key)
                if value is not None:  # may have been evicted already
                    assert value == key * 7
                assert len(cache) <= capacity

        _run_threads(worker)
        assert len(cache) <= capacity
        assert cache.hits + cache.misses == N_THREADS * ROUNDS
        total_puts = N_THREADS * ROUNDS
        assert cache.evictions <= total_puts


class TestSelectionServiceHammer:
    def _queries(self, tid, i):
        # A mix of shared shapes (cache contention) and per-thread
        # shapes (distinct entries), plus a malformed query.
        return [
            SelectionQuery("allgather", 2, 4, 1 << (i % 12)),
            SelectionQuery("alltoall", 2, 4, 1 << (tid % 8)),
            SelectionQuery("bcast", 2, 4, -5),  # invalid, never raises
        ]

    def test_no_decision_dropped_or_duplicated(self, ray_spec):
        """Every thread gets exactly its own batch's decisions back,
        positionally matched to its queries, and each decision equals
        the single-threaded reference for that query."""
        service = SelectionService(MvapichDefaultSelector(), ray_spec,
                                   cache_size=64)
        reference_service = SelectionService(
            MvapichDefaultSelector(), ray_spec, cache_size=64)
        results = {}

        def worker(tid):
            mine = []
            for i in range(ROUNDS):
                queries = self._queries(tid, i)
                decisions = service.select_batch(queries)
                assert len(decisions) == len(queries)
                for q, d in zip(queries, decisions):
                    # Positional match: the answer is for *my* query.
                    assert (d.collective, d.nodes, d.ppn,
                            d.msg_size) == (q.collective, q.nodes,
                                            q.ppn, q.msg_size)
                mine.append([d.algorithm for d in decisions])
            results[tid] = mine

        _run_threads(worker)
        assert sorted(results) == list(range(N_THREADS))
        # Decisions are deterministic: replay each thread's stream
        # serially and demand identical algorithms.
        for tid in range(N_THREADS):
            for i, algorithms in enumerate(results[tid]):
                expected = [
                    d.algorithm for d in
                    reference_service.select_batch(
                        self._queries(tid, i))]
                assert algorithms == expected

    def test_counter_partition_holds_under_hammer(self, ray_spec):
        """queries == cache_hits + deduped + cache_misses exactly,
        with the totals accounting for every submitted query."""
        service = SelectionService(MvapichDefaultSelector(), ray_spec,
                                   cache_size=1024)
        per_thread = ROUNDS * 3  # 3 queries per batch

        def worker(tid):
            for i in range(ROUNDS):
                service.select_batch(self._queries(tid, i))

        _run_threads(worker)
        counters = service.counters
        assert set(counters) == set(SERVE_COUNTER_KEYS)
        assert counters["queries"] == N_THREADS * per_thread
        assert counters["queries"] == (counters["cache_hits"]
                                       + counters["deduped"]
                                       + counters["cache_misses"])
        # The malformed query misses the cache every batch it is
        # first seen in; invalid decisions are a subset of misses.
        assert 0 < counters["invalid"] <= counters["cache_misses"]

    def test_shared_registry_with_floor_service(self, ray_spec):
        """Two services on one registry (the daemon's model + floor
        arrangement) hammered from different threads: the shared
        counters must still balance."""
        from repro.obs.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        model = SelectionService(MvapichDefaultSelector(), ray_spec,
                                 cache_size=64, registry=registry)
        floor = SelectionService(MvapichDefaultSelector(), ray_spec,
                                 cache_size=64, registry=registry)

        def worker(tid):
            mine = model if tid % 2 else floor
            for i in range(ROUNDS):
                mine.select_batch(self._queries(tid, i))

        _run_threads(worker)
        counters = registry.counters()
        assert counters["serve.queries"] == N_THREADS * ROUNDS * 3
        assert counters["serve.queries"] == (
            counters["serve.cache_hits"] + counters["serve.deduped"]
            + counters["serve.cache_misses"])
