"""Tests for user-defined cluster registration — the adopter story:
bring your own machine, benchmark it, fold it into the training set."""

import pytest

from repro.core import benchmark_config, collect_dataset, offline_train
from repro.hwmodel import (
    ClusterSpec,
    CpuSpec,
    CpuVendor,
    InfinibandGeneration,
    InterconnectFamily,
    InterconnectSpec,
    MemorySpec,
    NodeSpec,
    PcieSpec,
    all_clusters,
    cluster_features,
    get_cluster,
    register_cluster,
    unregister_cluster,
)
from repro.simcluster import Machine


def _custom_spec(name="MyLab"):
    return ClusterSpec(
        name=name,
        node=NodeSpec(
            cpu=CpuSpec("Custom EPYC 9354", CpuVendor.AMD, 3.25, 3.8,
                        cores_per_socket=32, threads_per_core=2,
                        sockets=2, numa_nodes=8, l3_cache_mib=512.0),
            memory=MemorySpec(384, 460.8),
            interconnect=InterconnectSpec(
                InterconnectFamily.INFINIBAND,
                InfinibandGeneration.HDR, 4, "ConnectX-7", 0.65),
            pcie=PcieSpec(5.0, 16),
        ),
        max_nodes=4,
        node_counts=(1, 2, 4),
        ppn_values=(1, 8, 32),
        msg_sizes=tuple(2**k for k in range(0, 16, 3)),
    )


@pytest.fixture
def custom():
    spec = register_cluster(_custom_spec())
    yield spec
    unregister_cluster(spec.name)


class TestRegistration:
    def test_lookup_after_register(self, custom):
        assert get_cluster("MyLab") is custom
        assert get_cluster("mylab") is custom

    def test_table1_name_protected(self):
        with pytest.raises(ValueError, match="Table I"):
            register_cluster(_custom_spec(name="Frontera"))

    def test_duplicate_requires_replace(self, custom):
        with pytest.raises(ValueError, match="already registered"):
            register_cluster(_custom_spec())
        register_cluster(_custom_spec(), replace=True)

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_cluster("NeverRegistered")

    def test_all_clusters_excludes_custom(self, custom):
        assert all(c.name != "MyLab" for c in all_clusters())

    def test_unregistered_lookup_fails(self):
        spec = register_cluster(_custom_spec(name="Ephemeral"))
        unregister_cluster(spec.name)
        with pytest.raises(KeyError):
            get_cluster("Ephemeral")


class TestCustomClusterWorkflow:
    def test_feature_extraction(self, custom):
        feats = cluster_features(custom)
        assert feats.cpu_max_clock_ghz == pytest.approx(3.8)
        assert feats.pcie_version == 5.0
        assert feats.link_speed_gbps == pytest.approx(50.0)

    def test_benchmarking(self, custom):
        rec = benchmark_config(custom, "alltoall", 2, 8, 512)
        assert rec.cluster == "MyLab"
        assert rec.label in rec.times

    def test_dataset_and_training(self, custom, tmp_path):
        dataset = collect_dataset(clusters=[custom],
                                  cache_dir=tmp_path)
        assert len(dataset) > 0
        assert dataset.clusters() == ("MyLab",)
        # Feature matrix must resolve the custom name via the registry.
        X = dataset.feature_matrix()
        assert X.shape[1] == 14
        selector = offline_train(dataset)
        machine = Machine(custom, 2, 8)
        assert selector.select("allgather", machine, 256)
