"""Tests for the discrete-event engine primitives."""

import pytest

from repro.simcluster.engine import (
    AllOf,
    Mailbox,
    Process,
    Resource,
    SimulationError,
    Simulator,
)


class TestSimulatorClock:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc(sim):
            yield sim.timeout(2.5)
            log.append(sim.now)
            yield sim.timeout(1.0)
            log.append(sim.now)

        Process(sim, proc(sim))
        assert sim.run() == pytest.approx(3.5)
        assert log == [pytest.approx(2.5), pytest.approx(3.5)]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(10.0)

        Process(sim, proc(sim))
        assert sim.run(until=3.0) == pytest.approx(3.0)

    def test_event_ordering_fifo_at_same_time(self):
        sim = Simulator()
        order = []

        def proc(sim, label):
            yield sim.timeout(1.0)
            order.append(label)

        for label in "abc":
            Process(sim, proc(sim, label))
        sim.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_process_receives_event_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter(sim):
            value = yield ev
            got.append(value)

        def trigger(sim):
            yield sim.timeout(1.0)
            ev.succeed("hello")

        Process(sim, waiter(sim))
        Process(sim, trigger(sim))
        sim.run()
        assert got == ["hello"]

    def test_failed_event_raises_in_waiter(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def waiter(sim):
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        def trigger(sim):
            yield sim.timeout(1.0)
            ev.fail(RuntimeError("boom"))

        Process(sim, waiter(sim))
        Process(sim, trigger(sim))
        sim.run()
        assert caught == ["boom"]

    def test_process_completion_value(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)
            return 42

        p = Process(sim, proc(sim))
        sim.run()
        assert p.triggered and p.value == 42

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def proc(sim):
            yield 5

        Process(sim, proc(sim))
        with pytest.raises(SimulationError, match="expected an Event"):
            sim.run()


class TestAllOf:
    def test_waits_for_all(self):
        sim = Simulator()
        done = []

        def proc(sim):
            t1, t2 = sim.timeout(1.0), sim.timeout(3.0)
            yield AllOf(sim, [t1, t2])
            done.append(sim.now)

        Process(sim, proc(sim))
        sim.run()
        assert done == [pytest.approx(3.0)]

    def test_empty_list_fires_immediately(self):
        sim = Simulator()
        ev = AllOf(sim, [])
        assert ev.triggered and ev.value == []


class TestResource:
    def test_serializes_users(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish = []

        def user(sim, res):
            yield from res.use(2.0)
            finish.append(sim.now)

        for _ in range(3):
            Process(sim, user(sim, res))
        sim.run()
        assert finish == [pytest.approx(2.0), pytest.approx(4.0),
                          pytest.approx(6.0)]

    def test_capacity_two_runs_pairs(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def user(sim, res):
            yield from res.use(2.0)
            finish.append(sim.now)

        for _ in range(4):
            Process(sim, user(sim, res))
        sim.run()
        assert finish == [pytest.approx(2.0)] * 2 + [pytest.approx(4.0)] * 2

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)


class TestMailbox:
    def test_put_then_get(self):
        sim = Simulator()
        box = Mailbox(sim)
        got = []

        def reader(sim, box):
            msg = yield box.get(src=1, tag=7)
            got.append(msg)

        box.put(src=1, tag=7, payload="x")
        Process(sim, reader(sim, box))
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        box = Mailbox(sim)
        got = []

        def reader(sim, box):
            msg = yield box.get(src=0, tag=0)
            got.append((sim.now, msg))

        def writer(sim, box):
            yield sim.timeout(5.0)
            box.put(0, 0, "late")

        Process(sim, reader(sim, box))
        Process(sim, writer(sim, box))
        sim.run()
        assert got == [(pytest.approx(5.0), "late")]

    def test_matching_is_per_src_and_tag(self):
        sim = Simulator()
        box = Mailbox(sim)
        got = []

        def reader(sim, box):
            a = yield box.get(src=2, tag=1)
            b = yield box.get(src=1, tag=1)
            got.extend([a, b])

        box.put(1, 1, "from1")
        box.put(2, 1, "from2")
        Process(sim, reader(sim, box))
        sim.run()
        assert got == ["from2", "from1"]

    def test_fifo_within_channel(self):
        sim = Simulator()
        box = Mailbox(sim)
        got = []

        def reader(sim, box):
            for _ in range(3):
                got.append((yield box.get(0, 0)))

        for i in range(3):
            box.put(0, 0, i)
        Process(sim, reader(sim, box))
        sim.run()
        assert got == [0, 1, 2]

    def test_undelivered_counts(self):
        sim = Simulator()
        box = Mailbox(sim)
        box.put(0, 0, "a")
        box.put(0, 1, "b")
        assert box.undelivered == 2
