"""Correctness and consistency tests for all nine collective algorithms.

Three layers of checking:

1. **Data correctness** — every rank of the data-level execution ends
   with exactly the expected blocks, for every algorithm over a grid of
   (nodes, ppn) shapes including power-of-two, odd, prime, single-node
   and one-rank-per-node cases.
2. **Schedule/trace consistency** — the vectorized schedule generator
   must describe the *same* messages the data-level execution actually
   sends (same (src, dst, bytes) multiset, same total volume).
3. **Analytic/DES agreement** — the two timing paths must agree within
   a factor bound (the DES pipelines rounds, so it can only be faster).
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwmodel import get_cluster
from repro.simcluster import Machine
from repro.smpi import ALLGATHER, ALLTOALL, algorithms, execute
from repro.smpi.collectives.base import is_power_of_two
from repro.smpi.datatypes import allgather_expected, alltoall_expected

SHAPES = [(1, 1), (1, 2), (2, 1), (2, 4), (1, 8), (4, 2), (3, 5),
          (2, 7), (5, 1), (2, 16)]

ALLGATHER_ALGOS = sorted(algorithms(ALLGATHER))
ALLTOALL_ALGOS = sorted(algorithms(ALLTOALL))


def _machine(nodes, ppn, cluster="Frontera"):
    return Machine(get_cluster(cluster), nodes, ppn)


# ---------------------------------------------------------------------
# 1. Data correctness
# ---------------------------------------------------------------------

@pytest.mark.parametrize("name", ALLGATHER_ALGOS)
@pytest.mark.parametrize("nodes,ppn", SHAPES)
def test_allgather_correct(name, nodes, ppn):
    machine = _machine(nodes, ppn)
    algo = algorithms(ALLGATHER)[name]
    result = execute(algo, machine, msg_size=64)
    expected = allgather_expected(machine.p)
    for rank, buf in enumerate(result.buffers):
        assert buf == expected, f"rank {rank} of {name} @ {nodes}x{ppn}"


@pytest.mark.parametrize("name", ALLTOALL_ALGOS)
@pytest.mark.parametrize("nodes,ppn", SHAPES)
def test_alltoall_correct(name, nodes, ppn):
    machine = _machine(nodes, ppn)
    algo = algorithms(ALLTOALL)[name]
    result = execute(algo, machine, msg_size=64)
    for rank, buf in enumerate(result.buffers):
        assert buf == alltoall_expected(rank, machine.p), \
            f"rank {rank} of {name} @ {nodes}x{ppn}"


@given(nodes=st.integers(1, 4), ppn=st.integers(1, 9),
       msg_log=st.integers(0, 14))
@settings(max_examples=25, deadline=None)
def test_allgather_property_all_algorithms(nodes, ppn, msg_log):
    machine = _machine(nodes, ppn)
    expected = allgather_expected(machine.p)
    for algo in algorithms(ALLGATHER).values():
        result = execute(algo, machine, msg_size=2 ** msg_log)
        assert all(buf == expected for buf in result.buffers), algo.name


@given(nodes=st.integers(1, 4), ppn=st.integers(1, 7),
       msg_log=st.integers(0, 14))
@settings(max_examples=25, deadline=None)
def test_alltoall_property_all_algorithms(nodes, ppn, msg_log):
    machine = _machine(nodes, ppn)
    for algo in algorithms(ALLTOALL).values():
        result = execute(algo, machine, msg_size=2 ** msg_log)
        assert all(result.buffers[r] == alltoall_expected(r, machine.p)
                   for r in range(machine.p)), algo.name


# ---------------------------------------------------------------------
# 2. Schedule matches the executed trace
# ---------------------------------------------------------------------

def _trace_counter(trace):
    return Counter((t.src, t.dst, round(t.nbytes)) for t in trace)


def _schedule_counter(schedule):
    counter: Counter = Counter()
    for rnd in schedule:
        for s, d, z in zip(rnd.src, rnd.dst, rnd.size):
            counter[(int(s), int(d), round(float(z)))] += rnd.repeat
    return counter


@pytest.mark.parametrize("collective,name", [
    (ALLGATHER, n) for n in ALLGATHER_ALGOS
] + [
    (ALLTOALL, n) for n in ALLTOALL_ALGOS
])
@pytest.mark.parametrize("nodes,ppn", [(2, 4), (3, 3), (2, 8), (1, 6)])
def test_schedule_matches_trace(collective, name, nodes, ppn):
    machine = _machine(nodes, ppn)
    algo = algorithms(collective)[name]
    msg = 128
    result = execute(algo, machine, msg, record_trace=True)
    assert _schedule_counter(algo.schedule(machine, msg)) == \
        _trace_counter(result.trace)


@given(nodes=st.integers(1, 3), ppn=st.integers(1, 6),
       msg_log=st.integers(0, 12))
@settings(max_examples=20, deadline=None)
def test_schedule_matches_trace_property(nodes, ppn, msg_log):
    machine = _machine(nodes, ppn)
    msg = 2 ** msg_log
    for collective in (ALLGATHER, ALLTOALL):
        for algo in algorithms(collective).values():
            result = execute(algo, machine, msg, record_trace=True)
            assert _schedule_counter(algo.schedule(machine, msg)) == \
                _trace_counter(result.trace), algo.name


# ---------------------------------------------------------------------
# 3. Analytic model vs discrete-event execution
# ---------------------------------------------------------------------

@pytest.mark.parametrize("collective", [ALLGATHER, ALLTOALL])
@pytest.mark.parametrize("nodes,ppn", [(2, 4), (3, 5), (2, 8)])
@pytest.mark.parametrize("msg", [64, 4096, 65536])
def test_analytic_within_factor_of_des(collective, nodes, ppn, msg):
    machine = _machine(nodes, ppn)
    for algo in algorithms(collective).values():
        est = algo.estimate(machine, msg)
        des = execute(algo, machine, msg).time_s
        # The analytic model is bulk-synchronous (no cross-round
        # pipelining), so it may overestimate the pipelined DES — but
        # both must be the same order of magnitude.
        assert est > 0 and des > 0
        assert 0.3 <= des / est <= 1.6, \
            f"{algo.name}: des={des:.3e} est={est:.3e}"


def test_analytic_ranking_correlates_with_des():
    """Across algorithms at one config, the two timing paths must
    broadly agree on ordering (Spearman > 0.5)."""
    from scipy.stats import spearmanr

    machine = _machine(2, 8)
    est, des = [], []
    for collective in (ALLGATHER, ALLTOALL):
        for msg in (64, 16384):
            for algo in algorithms(collective).values():
                est.append(algo.estimate(machine, msg))
                des.append(execute(algo, machine, msg).time_s)
    rho, _ = spearmanr(est, des)
    assert rho > 0.5


# ---------------------------------------------------------------------
# Structural expectations
# ---------------------------------------------------------------------

def test_single_rank_schedules_empty():
    machine = _machine(1, 1)
    for collective in (ALLGATHER, ALLTOALL):
        for algo in algorithms(collective).values():
            assert algo.estimate(machine, 1024) == 0.0

def test_allgather_volume_lower_bound():
    """Every allgather algorithm moves at least (p-1)*m bytes per rank."""
    machine = _machine(2, 4)
    p, m = machine.p, 512
    for algo in algorithms(ALLGATHER).values():
        total = sum(rnd.total_bytes for rnd in algo.schedule(machine, m))
        assert total >= (p - 1) * m  # summed over ranks it is p*(p-1)*m/2+

def test_ring_total_volume_is_optimal():
    """Ring sends exactly (p-1)*m per rank — the bandwidth-optimal
    volume."""
    machine = _machine(2, 4)
    p, m = machine.p, 512
    ring = algorithms(ALLGATHER)["ring"]
    total = sum(rnd.total_bytes for rnd in ring.schedule(machine, m))
    assert total == pytest.approx(p * (p - 1) * m)

def test_pairwise_total_volume_is_optimal():
    machine = _machine(2, 4)
    p, m = machine.p, 512
    pw = algorithms(ALLTOALL)["pairwise"]
    sched = pw.schedule(machine, m)
    wire = sum(rnd.total_bytes for rnd in sched)
    assert wire == pytest.approx(p * (p - 1) * m)

def test_bruck_alltoall_volume_exceeds_pairwise():
    """Bruck's store-and-forward moves more bytes — that's the price of
    its log-step latency."""
    machine = _machine(2, 8)
    m = 512
    bruck = algorithms(ALLTOALL)["bruck"]
    pw = algorithms(ALLTOALL)["pairwise"]
    vol = lambda a: sum(r.total_bytes for r in a.schedule(machine, m))
    assert vol(bruck) > vol(pw)

def test_rd_alltoall_falls_back_to_pairwise_for_odd_p():
    machine = _machine(3, 3)
    rd = algorithms(ALLTOALL)["recursive_doubling"]
    pw = algorithms(ALLTOALL)["pairwise"]
    assert not is_power_of_two(machine.p)
    assert rd.estimate(machine, 256) == pw.estimate(machine, 256)

def test_registry_labels():
    assert ALLGATHER_ALGOS == ["bruck", "rd_communication",
                               "recursive_doubling", "ring"]
    assert ALLTOALL_ALGOS == ["bruck", "inplace", "pairwise",
                              "recursive_doubling", "scatter_dest"]
