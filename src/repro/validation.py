"""Cross-model validation: analytic evaluator vs discrete-event engine.

The repository prices collectives two ways — the vectorized
bulk-synchronous round model (used for dataset generation at scale) and
the discrete-event executor (which really moves every block).  This
module quantifies their agreement so the simulator's calibration is a
reported, testable number rather than an assumption:

* per-(algorithm, config, size) timing ratios DES/analytic,
* Spearman rank correlation of algorithm orderings per configuration,
* *decision agreement*: how often both timing paths name the same
  fastest algorithm.

The validation benchmark asserts the calibration envelope recorded in
EXPERIMENTS.md; `repro.validation.validate` is also part of the public
API so downstream users can re-check after modifying the cost model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np
from scipy.stats import spearmanr

from .hwmodel.registry import get_cluster
from .simcluster.machine import Machine
from .smpi.collectives import base


@dataclass(frozen=True)
class ValidationCase:
    """One compared measurement."""

    cluster: str
    collective: str
    nodes: int
    ppn: int
    msg_size: int
    algorithm: str
    analytic_s: float
    des_s: float

    @property
    def ratio(self) -> float:
        return self.des_s / self.analytic_s


@dataclass
class ValidationReport:
    """Aggregate agreement statistics."""

    cases: list[ValidationCase] = field(default_factory=list)
    rank_correlations: list[float] = field(default_factory=list)
    decision_agreements: list[bool] = field(default_factory=list)

    @property
    def ratios(self) -> np.ndarray:
        return np.array([c.ratio for c in self.cases])

    @property
    def median_ratio(self) -> float:
        return float(np.median(self.ratios))

    @property
    def ratio_range(self) -> tuple[float, float]:
        r = self.ratios
        return float(r.min()), float(r.max())

    @property
    def mean_rank_correlation(self) -> float:
        return float(np.mean(self.rank_correlations))

    @property
    def decision_agreement_rate(self) -> float:
        return float(np.mean(self.decision_agreements))

    def summary_lines(self) -> list[str]:
        lo, hi = self.ratio_range
        return [
            f"cases: {len(self.cases)}",
            f"DES/analytic ratio: median {self.median_ratio:.3f}, "
            f"range [{lo:.3f}, {hi:.3f}]",
            f"mean per-config rank correlation: "
            f"{self.mean_rank_correlation:.3f}",
            f"fastest-algorithm agreement: "
            f"{self.decision_agreement_rate * 100:.1f}%",
        ]


def validate(clusters: tuple[str, ...] = ("Frontera", "MRI", "RI"),
             shapes: tuple[tuple[int, int], ...] = ((2, 4), (2, 8),
                                                    (3, 5), (1, 6)),
             msg_sizes: tuple[int, ...] = (64, 4096, 65536),
             collectives: tuple[str, ...] = base.COLLECTIVES
             ) -> ValidationReport:
    """Run the DES on every (cluster, shape, size, algorithm) and
    compare against the analytic model.

    Kept to small rank counts — the DES executes every message as an
    event, so this is the expensive path by design.
    """
    report = ValidationReport()
    for cname, (nodes, ppn), collective in itertools.product(
            clusters, shapes, collectives):
        spec = get_cluster(cname)
        if nodes > spec.max_nodes or \
                ppn > spec.node.cpu.threads_per_node:
            continue  # shape not representable on this cluster
        machine = Machine(spec, nodes, ppn)
        for msg in msg_sizes:
            analytic: dict[str, float] = {}
            des: dict[str, float] = {}
            for name, algo in base.algorithms(collective).items():
                analytic[name] = algo.estimate(machine, msg)
                des[name] = base.execute(algo, machine, msg).time_s
                report.cases.append(ValidationCase(
                    cname, collective, nodes, ppn, msg, name,
                    analytic[name], des[name]))
            order = sorted(analytic)
            a = [analytic[n] for n in order]
            d = [des[n] for n in order]
            rho, _ = spearmanr(a, d)
            if not np.isnan(rho):
                report.rank_correlations.append(float(rho))
            report.decision_agreements.append(
                min(analytic, key=analytic.__getitem__)
                == min(des, key=des.__getitem__))
    return report
