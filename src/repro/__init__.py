"""repro — a full reproduction of *PML-MPI: A Pre-Trained ML Framework for
Efficient Collective Algorithm Selection in MPI* (Han et al., IPDPS 2024).

Subpackages
-----------
hwmodel
    Hardware specs for the paper's 18 clusters, synthetic system probes,
    and the hardware feature-extraction script.
simcluster
    Discrete-event cluster/network simulator (the stand-in for physical
    testbeds).
smpi
    Simulated MPI library: communicators, point-to-point messaging, and
    the nine flat collective algorithms of MVAPICH, plus the
    MVAPICH/Open MPI default heuristics and tuning-table machinery.
ml
    From-scratch NumPy machine-learning library (CART, Random Forest,
    Gradient Boosting, KNN, SVM, metrics, model selection).
core
    PML-MPI itself: dataset collection, train/test splits, the offline
    training pipeline, constant-time online inference, and the
    startup-overhead models.
apps
    OSU-microbenchmark-style driver and Gromacs/MiniFE application
    proxies.
obs
    Observability: spans, metrics registry, JSONL trace export, and
    the ``pml-mpi report`` trace analyzer.
"""

import logging as _logging

__version__ = "1.0.0"

# Library users see no log output unless they configure handlers; the
# CLI's -v/--verbose flag attaches a real handler to this logger.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from . import apps, core, hwmodel, ml, obs, simcluster, smpi  # noqa: F401,E402

__all__ = ["apps", "core", "hwmodel", "ml", "obs", "simcluster", "smpi",
           "__version__"]
