"""Active-learning data collection (``pml-mpi collect --active``).

Replaces the exhaustive per-cluster benchmark sweep with an
uncertainty-driven acquisition loop: seed a stratified sample of the
feasible grid, train the per-collective ensembles on it, score every
unbenchmarked configuration with RF vote entropy / margin through the
vectorized ``predict_proba_batch`` path, and benchmark only the top-K
most informative configs per round — stopping on a validation-accuracy
plateau or a simulated core-hour budget that is never overshot.
"""

from .acquire import (
    Candidate,
    build_pool,
    candidate_features,
    rank_pool,
    stratified_seed,
)
from .budget import (
    BudgetExceededError,
    CoreHourLedger,
    dataset_core_hours,
    record_core_hours,
)
from .loop import (
    STOP_REASONS,
    ActiveConfig,
    ActiveResult,
    run_active_collection,
)

__all__ = [
    "ActiveConfig",
    "ActiveResult",
    "BudgetExceededError",
    "Candidate",
    "CoreHourLedger",
    "STOP_REASONS",
    "build_pool",
    "candidate_features",
    "dataset_core_hours",
    "rank_pool",
    "record_core_hours",
    "run_active_collection",
    "stratified_seed",
]
