"""The uncertainty-driven acquisition loop behind ``collect --active``.

Instead of exhaustively sweeping the feasible grid (the growing-
overhead regime the paper's Fig. 7 argues against), the loop:

1. benchmarks a **stratified seed** of the pool (every job shape
   represented, message sizes spread across the axis), holding part of
   it out as a validation slice;
2. trains the per-collective ensembles on what it has;
3. scores every unbenchmarked config with **RF vote entropy / margin**
   through the vectorized ``predict_proba_batch`` path;
4. benchmarks only the **top-K most informative** configs — through
   the same fault/retry ladder as the exhaustive campaign;
5. stops on a **plateau rule** (validation-accuracy delta < ε for R
   consecutive rounds), a **core-hour budget** (never overshot — the
   first unaffordable config ends the run), pool exhaustion, or a
   round cap.

Everything is a pure function of (pool order, run seed), so same-seed
runs produce byte-identical benchmark schedules and decision logs —
the differential test suite holds the loop to that, and to within 2 %
of the exhaustive sweep's test accuracy at a fraction of its simulated
core-hours.

Results are cached like exhaustive campaigns, under a cache key whose
suffix encodes the full acquisition trajectory (seed, fractions,
batch size, budget, plateau rule, model family) — and the key is
stored uncompressed in the cache header and verified on load, so an
active run can never alias an exhaustive sweep through a CRC-32
digest collision.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path

from ..core.dataset import (
    CollectiveRecord,
    TuningDataset,
    benchmark_config,
    dataset_cache_key,
    dataset_cache_path,
    load_cached_dataset,
)
from ..core.resilience import TransientCollectionError
from ..core.training import TrainedModel, train_model
from ..hwmodel.registry import all_clusters, get_cluster
from ..hwmodel.specs import ClusterSpec
from ..obs.telemetry import get_registry, get_tracer
from ..simcluster.conditions import FaultProfile
from ..smpi.collectives.base import COLLECTIVES
from .acquire import (
    Candidate,
    build_pool,
    candidate_features,
    estimated_core_hours,
    rank_pool,
)
from .acquire import stratified_seed as _stratified_seed
from .budget import CoreHourLedger, record_core_hours

log = logging.getLogger(__name__)

#: Stop reasons the loop can report.
STOP_REASONS = ("plateau", "budget", "exhausted", "max_rounds")


@dataclass(frozen=True)
class ActiveConfig:
    """Knobs of one acquisition run.

    The tuple of values *is* the acquisition trajectory: given a pool,
    every benchmark the loop schedules follows deterministically from
    them, which is why :meth:`cache_suffix` serializes them all into
    the dataset cache key.
    """

    seed: int = 0
    #: Fraction of each (cluster, collective, nodes, ppn) group
    #: benchmarked up front (at least one config per group).
    seed_fraction: float = 0.2
    #: Fraction of benchmarked configs held out as the plateau-
    #: detection validation slice (never trained on).  The slice grows
    #: with the run: every ``round(1/val_fraction)``-th seed *and*
    #: acquired config lands in it, so the plateau signal gets finer-
    #: grained — and stays representative of the acquisition region —
    #: as rounds accumulate.
    val_fraction: float = 0.25
    #: Configs benchmarked per acquisition round (top-K by score).
    batch_size: int = 16
    #: Simulated core-hour budget; ``None`` = fall back to
    #: *budget_fraction*.  An explicit value takes precedence.
    budget_core_h: float | None = None
    #: Pool-relative budget: the limit is this fraction of the
    #: *estimated* cost of benchmarking the whole pool (the analytic
    #: noise-free model — what a campaign planner knows up front).
    #: Because the cost-aware ranking defers the expensive tail of the
    #: pool, a fraction-of-estimate budget stops the run right before
    #: that tail on *any* pool shape, which makes the default
    #: configuration portable across pools of wildly different total
    #: cost (the exhaustive sweep's core-hours are dominated by its
    #: most expensive few percent of configs).  ``None`` = unlimited
    #: unless *budget_core_h* is set.
    budget_fraction: float | None = 0.2
    #: Plateau rule: stop after *plateau_patience* consecutive rounds
    #: in which this round's models fail to beat the previous round's
    #: models by more than *plateau_epsilon* — both evaluated on the
    #: *same* (current) validation slice.  The paired comparison is
    #: what makes the rule robust: a raw accuracy series oscillates
    #: with the slice's composition (one lucky round can set an
    #: unbeatable best-so-far), while the paired delta isolates what
    #: the newly acquired configs actually taught the ensemble.
    plateau_epsilon: float = 0.005
    plateau_patience: int = 6
    max_rounds: int = 30
    #: Cost-sensitivity of the acquisition ranking: candidates order by
    #: ``entropy / estimated_core_hours ** cost_weight`` (information
    #: per core-hour).  ``0.0`` ranks by raw vote entropy.
    cost_weight: float = 1.0
    #: Model family / size used for acquisition scoring (small on
    #: purpose: it is retrained every round).
    family: str = "rf"
    n_estimators: int = 24

    def __post_init__(self) -> None:
        if not 0.0 < self.seed_fraction <= 1.0:
            raise ValueError("seed_fraction must be in (0, 1]")
        if not 0.0 <= self.val_fraction < 1.0:
            raise ValueError("val_fraction must be in [0, 1)")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.plateau_epsilon < 0:
            raise ValueError("plateau_epsilon must be >= 0")
        if self.plateau_patience < 1:
            raise ValueError("plateau_patience must be >= 1")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.budget_core_h is not None and self.budget_core_h < 0:
            raise ValueError("budget_core_h must be >= 0")
        if self.budget_fraction is not None and \
                not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("budget_fraction must be in (0, 1]")
        if self.cost_weight < 0:
            raise ValueError("cost_weight must be >= 0")

    def cache_suffix(self) -> str:
        """Deterministic encoding of the acquisition trajectory."""
        budget = ("none" if self.budget_core_h is None
                  else repr(float(self.budget_core_h)))
        fraction = ("none" if self.budget_fraction is None
                    else repr(float(self.budget_fraction)))
        return ("active_seed{0}_sf{1!r}_vf{2!r}_k{3}_b{4}_bf{5}"
                "_eps{6!r}_p{7}_r{8}_w{9!r}_{10}{11}").format(
            self.seed, float(self.seed_fraction),
            float(self.val_fraction), self.batch_size, budget, fraction,
            float(self.plateau_epsilon), self.plateau_patience,
            self.max_rounds, float(self.cost_weight), self.family,
            self.n_estimators)


@dataclass
class ActiveResult:
    """Everything one acquisition run produced."""

    #: All successfully benchmarked records, in benchmark order
    #: (seed first, then per-round acquisitions).
    dataset: TuningDataset
    #: Benchmark schedule: the (cluster, collective, nodes, ppn, msg)
    #: keys of every *attempted* config, in execution order.  Dropped
    #: configs (exhausted fault retries) appear here; budget-denied
    #: ones never ran and do not.
    schedule: list[tuple[str, str, int, int, int]]
    #: Per-round decision log entries (JSON-scalar values only).
    decisions: list[dict]
    core_hours: float
    rounds: int
    stop_reason: str
    seeded: int
    acquired: int
    dropped: int
    denied: int
    val_accuracy: float | None
    #: Final per-collective models (None on a cache hit — retrain from
    #: ``dataset`` when needed).
    models: dict[str, TrainedModel] | None = None
    cached: bool = False
    budget_history: list[float] = field(default_factory=list)
    #: Effective core-hour limit the run enforced (explicit budget, or
    #: ``budget_fraction`` of the estimated pool cost); None=unlimited.
    budget_limit: float | None = None

    def decision_log_text(self) -> str:
        """Canonical byte-form of the decision log: one sorted-key
        JSON object per line.  Same-seed runs must match byte for
        byte."""
        return "".join(json.dumps(d, sort_keys=True) + "\n"
                       for d in self.decisions)

    def schedule_keys(self) -> list[list]:
        return [list(k) for k in self.schedule]

    def summary_meta(self) -> dict:
        """The trajectory summary embedded in the dataset cache."""
        return {"active": {
            "schedule": self.schedule_keys(),
            "decisions": self.decisions,
            "core_hours": self.core_hours,
            "rounds": self.rounds,
            "stop_reason": self.stop_reason,
            "seeded": self.seeded,
            "acquired": self.acquired,
            "dropped": self.dropped,
            "denied": self.denied,
            "val_accuracy": self.val_accuracy,
            "budget_history": self.budget_history,
            "budget_limit": self.budget_limit,
        }}


def _result_from_cache(dataset: TuningDataset) -> ActiveResult | None:
    summary = dataset.meta.get("active")
    if not isinstance(summary, dict):
        return None
    try:
        return ActiveResult(
            dataset=dataset,
            schedule=[tuple(k) for k in summary["schedule"]],
            decisions=list(summary["decisions"]),
            core_hours=float(summary["core_hours"]),
            rounds=int(summary["rounds"]),
            stop_reason=str(summary["stop_reason"]),
            seeded=int(summary["seeded"]),
            acquired=int(summary["acquired"]),
            dropped=int(summary["dropped"]),
            denied=int(summary["denied"]),
            val_accuracy=summary["val_accuracy"],
            models=None,
            cached=True,
            budget_history=[float(x) for x
                            in summary.get("budget_history", [])],
            budget_limit=summary.get("budget_limit"))
    except (KeyError, TypeError, ValueError):
        return None


class _Runner:
    """One acquisition run's mutable state."""

    def __init__(self, pool: list[Candidate],
                 specs: dict[str, ClusterSpec], config: ActiveConfig,
                 faults: FaultProfile | None,
                 retry, progress: bool) -> None:
        self.pool = pool
        self.specs = specs
        self.config = config
        self.faults = faults
        self.retry = retry
        self.progress = progress
        self.registry = get_registry()
        limit = config.budget_core_h
        if limit is None and config.budget_fraction is not None:
            estimate = sum(estimated_core_hours(
                specs[c.cluster], c.collective, c.nodes, c.ppn,
                c.msg_size) for c in pool)
            limit = config.budget_fraction * estimate
        self.budget_limit = limit
        self.ledger = CoreHourLedger(limit)
        self.benchmarked: set[int] = set()
        self.schedule: list[tuple[str, str, int, int, int]] = []
        self.records: dict[int, CollectiveRecord] = {}
        self.order: list[int] = []          # successful benchmark order
        self.decisions: list[dict] = []
        self.seeded = self.acquired = self.dropped = 0
        self.stop_reason: str | None = None
        self.val_set: set[int] = set()
        self.val_stride = (0 if config.val_fraction == 0
                           else max(2, int(round(1.0 / config.val_fraction))))

    def _note(self, msg: str) -> None:
        if self.progress:
            print(f"[collect --active] {msg}")

    def bench(self, index: int, phase: str) -> bool:
        """Benchmark ``pool[index]``; False ends the run (budget)."""
        cand = self.pool[index]
        try:
            record = benchmark_config(
                self.specs[cand.cluster], cand.collective, cand.nodes,
                cand.ppn, cand.msg_size, faults=self.faults,
                retry=self.retry)
        except TransientCollectionError:
            self.benchmarked.add(index)
            self.schedule.append(cand.key)
            self.dropped += 1
            self.registry.counter("collect.active.dropped").inc()
            return True
        cost = record_core_hours(record)
        if not self.ledger.can_afford(cost):
            # The simulator prices a config before committing ranks to
            # it; an unaffordable config is denied, never half-run.
            self.ledger.deny()
            self.registry.counter("collect.active.denied").inc()
            self.stop_reason = "budget"
            return False
        self.ledger.charge(cost)
        self.benchmarked.add(index)
        self.schedule.append(cand.key)
        self.records[index] = record
        self.order.append(index)
        if phase == "seed":
            self.seeded += 1
            self.registry.counter("collect.active.seeded").inc()
        else:
            self.acquired += 1
            self.registry.counter("collect.active.acquired").inc()
            # The validation slice keeps growing through acquisition,
            # so the plateau signal gains resolution round over round.
            if self.val_stride and \
                    self.acquired % self.val_stride == 0:
                self.val_set.add(index)
        return True

    def run(self) -> ActiveResult:
        config = self.config
        seed_indices = _stratified_seed(self.pool, config.seed_fraction,
                                        config.seed, specs=self.specs)
        # Validation slice: every stride-th seed position.  Collectives
        # that would lose *all* their training records to the slice get
        # them back — every collective must be trainable after seeding.
        if self.val_stride:
            self.val_set = {idx for pos, idx in enumerate(seed_indices)
                            if pos % self.val_stride == 0}
            for collective in {self.pool[i].collective
                               for i in seed_indices}:
                train_left = [i for i in seed_indices
                              if i not in self.val_set
                              and self.pool[i].collective == collective]
                if not train_left:
                    self.val_set -= {i for i in seed_indices
                                     if self.pool[i].collective
                                     == collective}
        val_set = self.val_set

        self._note(f"seeding {len(seed_indices)} of {len(self.pool)} "
                   f"configs ({len(val_set)} held out for validation)")
        with get_tracer().span("collect.active.seed",
                               configs=len(seed_indices)):
            for index in seed_indices:
                if not self.bench(index, "seed"):
                    break

        rounds = 0
        val_accuracy: float | None = None
        plateau_streak = 0
        models: dict[str, TrainedModel] = {}
        prev_models: dict[str, TrainedModel] | None = None
        rounds_counter = self.registry.counter("collect.active.rounds")

        while self.stop_reason is None:
            if rounds >= config.max_rounds:
                self.stop_reason = "max_rounds"
                break
            rounds += 1
            rounds_counter.inc()
            with get_tracer().span("collect.active.round",
                                   round=rounds) as span:
                train_records = [self.records[i] for i in self.order
                                 if i not in val_set]
                train_ds = TuningDataset(train_records)
                models = {}
                for collective in dict.fromkeys(
                        c.collective for c in self.pool):
                    if any(r.collective == collective
                           for r in train_records):
                        models[collective] = train_model(
                            train_ds, collective, family=config.family,
                            seed=config.seed,
                            params={"n_estimators": config.n_estimators})

                val_accuracy = self._validation_accuracy(models, val_set)
                if val_accuracy is not None and prev_models is not None:
                    # Paired delta: last round's models re-scored on
                    # *this* round's slice, so slice-composition noise
                    # cancels out of the improvement estimate.
                    prev_accuracy = self._validation_accuracy(
                        prev_models, val_set)
                    if prev_accuracy is not None and \
                            val_accuracy - prev_accuracy <= \
                            config.plateau_epsilon:
                        plateau_streak += 1
                    else:
                        plateau_streak = 0
                prev_models = models

                if plateau_streak >= config.plateau_patience:
                    self.stop_reason = "plateau"
                    self._log_round(rounds, val_accuracy,
                                    len(train_records), [], span)
                    break

                open_indices = [i for i in range(len(self.pool))
                                if i not in self.benchmarked]
                if not open_indices:
                    self.stop_reason = "exhausted"
                    self._log_round(rounds, val_accuracy,
                                    len(train_records), [], span)
                    break

                ranked = rank_pool(models, self.pool, open_indices,
                                   self.specs,
                                   cost_weight=config.cost_weight)
                batch = ranked[:config.batch_size]
                taken: list[dict] = []
                for index, entropy, margin in batch:
                    if not self.bench(index, "acquire"):
                        break
                    taken.append({
                        "config": list(self.pool[index].key),
                        "entropy": entropy, "margin": margin,
                    })
                self._log_round(rounds, val_accuracy,
                                len(train_records), taken, span)
                self._note(
                    f"round {rounds}: val_acc="
                    f"{'n/a' if val_accuracy is None else f'{val_accuracy:.3f}'} "
                    f"acquired {len(taken)} "
                    f"({self.ledger.spent_core_h:.4f} core-h spent)")

        dataset = TuningDataset([self.records[i] for i in self.order])
        return ActiveResult(
            dataset=dataset, schedule=self.schedule,
            decisions=self.decisions,
            core_hours=self.ledger.spent_core_h, rounds=rounds,
            stop_reason=self.stop_reason or "exhausted",
            seeded=self.seeded, acquired=self.acquired,
            dropped=self.dropped, denied=self.ledger.denied,
            val_accuracy=val_accuracy, models=models or None,
            budget_history=list(self.ledger.history),
            budget_limit=self.budget_limit)

    def _validation_accuracy(self, models: dict[str, TrainedModel],
                             val_set: set[int]) -> float | None:
        val_indices = [i for i in self.order if i in val_set]
        if not val_indices:
            return None
        correct = total = 0
        by_collective: dict[str, list[int]] = {}
        for i in val_indices:
            by_collective.setdefault(
                self.pool[i].collective, []).append(i)
        for collective, indices in by_collective.items():
            model = models.get(collective)
            if model is None:
                total += len(indices)
                continue
            X = candidate_features(self.pool, indices, self.specs)
            predicted = model.predict_batch(X)
            for pred, i in zip(predicted, indices):
                total += 1
                if pred == self.records[i].label:
                    correct += 1
        if total == 0:
            return None
        return correct / total

    def _log_round(self, round_no: int, val_accuracy: float | None,
                   trained_records: int, taken: list[dict],
                   span) -> None:
        entry = {
            "round": round_no,
            "val_accuracy": val_accuracy,
            "trained_records": trained_records,
            "acquired": taken,
            "core_hours": self.ledger.spent_core_h,
            "benchmarked": len(self.schedule),
            "dropped": self.dropped,
            "denied": self.ledger.denied,
        }
        if self.stop_reason is not None:
            entry["stop_reason"] = self.stop_reason
        self.decisions.append(entry)
        if span is not None:
            span.attributes["val_accuracy"] = val_accuracy
            span.attributes["acquired"] = len(taken)
            span.attributes["core_hours"] = self.ledger.spent_core_h


def run_active_collection(clusters: list[ClusterSpec] | None = None,
                          collectives: tuple[str, ...] = COLLECTIVES,
                          config: ActiveConfig | None = None,
                          pool: list[Candidate] | None = None,
                          faults: FaultProfile | None = None,
                          retry=None,
                          cache_dir: str | Path | None = None,
                          use_cache: bool = True,
                          progress: bool = False) -> ActiveResult:
    """Run (or replay from cache) one acquisition campaign.

    ``pool`` restricts the candidate pool to an explicit list — the
    differential tests use it to run acquisition over one side of a
    train/test split.  Explicit pools are never cached (their identity
    is not encodable in the campaign key).
    """
    config = config or ActiveConfig()
    if clusters is None:
        clusters = all_clusters()
    explicit_pool = pool is not None
    if pool is None:
        pool = build_pool(clusters, collectives)
    specs: dict[str, ClusterSpec] = {}
    for cand in pool:
        if cand.cluster not in specs:
            specs[cand.cluster] = get_cluster(cand.cluster)

    key = dataset_cache_key(clusters, collectives, faults,
                            suffix=config.cache_suffix())
    cache = dataset_cache_path(key, cache_dir)
    use_cache = use_cache and not explicit_pool
    if use_cache and cache.exists():
        dataset = load_cached_dataset(cache, key, progress=progress)
        if dataset is not None:
            result = _result_from_cache(dataset)
            if result is not None:
                return result
            # A valid dataset without a trajectory header came from an
            # exhaustive save; fall through and re-run the loop.

    with get_tracer().span("collect.active.run",
                           pool=len(pool),
                           clusters=len(specs)) as span:
        runner = _Runner(pool, specs, config, faults, retry, progress)
        result = runner.run()
        if span is not None:
            span.attributes["stop_reason"] = result.stop_reason
            span.attributes["rounds"] = result.rounds
            span.attributes["core_hours"] = result.core_hours
    log.info(
        "active collection: %d/%d configs benchmarked over %d rounds "
        "(%s), %.4f core-h", len(result.schedule), len(pool),
        result.rounds, result.stop_reason, result.core_hours)
    if use_cache:
        result.dataset.save(cache, cache_key=key,
                            extra_meta=result.summary_meta())
    return result
