"""Candidate pools, stratified seeding, and uncertainty scoring.

The acquisition loop works over a *pool* of unbenchmarked
configurations — one :class:`Candidate` per feasible
``(cluster, collective, nodes, ppn, msg_size)`` — in a canonical order
(clusters and collectives as given, then the feasibility grid's own
ordering).  Everything downstream is deterministic in that order plus
the run seed, which is what makes same-seed schedules byte-identical.

Seeding is stratified per job shape: every ``(cluster, collective,
nodes, ppn)`` group contributes at least one configuration, with its
message sizes sampled evenly across the sorted size axis (a seeded
offset rotates which sizes are picked).  That guarantees each
per-collective model can train after the seed round and that the seed
spans the small-vs-large message crossovers the tuning tables encode.

Scoring ranks the remaining pool with RF vote entropy / margin from
``predict_proba_batch`` — one vectorized PackedTrees traversal per
collective, never a per-config loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.features import ALL_FEATURE_NAMES, feature_vector
from ..hwmodel.specs import ClusterSpec
from ..ml.uncertainty import prediction_margin, vote_entropy


@dataclass(frozen=True)
class Candidate:
    """One unbenchmarked configuration in the pool."""

    cluster: str
    collective: str
    nodes: int
    ppn: int
    msg_size: int

    @property
    def key(self) -> tuple[str, str, int, int, int]:
        return (self.cluster, self.collective, self.nodes, self.ppn,
                self.msg_size)


def build_pool(clusters: list[ClusterSpec],
               collectives: tuple[str, ...]) -> list[Candidate]:
    """The canonical candidate pool: every feasible configuration of
    every (cluster, collective), in deterministic order."""
    from ..core.dataset import feasible_configs

    pool: list[Candidate] = []
    for spec in clusters:
        for collective in collectives:
            for nodes, ppn, msg in feasible_configs(spec, collective):
                pool.append(Candidate(spec.name, collective, nodes,
                                      ppn, msg))
    return pool


#: Configs whose *individual* estimated cost exceeds this fraction of
#: the whole pool's estimated cost are never seeded.  The benchmark
#: cost distribution is heavy-tailed (one huge-message, huge-rank
#: config can be ~20 % of an entire campaign), so a seed that trips
#: over the tail by stratification luck would burn the acquisition
#: budget before the first round.  Tail configs stay in the pool: the
#: cost-aware ranking can still buy them later if they are worth their
#: price in information.
SEED_COST_TAIL_FRACTION = 0.01


def stratified_seed(pool: list[Candidate], fraction: float,
                    seed: int = 0,
                    specs: dict[str, ClusterSpec] | None = None
                    ) -> list[int]:
    """Indices into *pool* forming the stratified seed sample.

    Groups by job shape ``(cluster, collective, nodes, ppn)``; each
    group contributes ``max(1, round(fraction * len(group)))``
    configurations spaced evenly along its sorted message-size axis,
    starting from a seeded per-group offset.  Returned indices are
    sorted, so the seed is benchmarked in canonical pool order.

    With *specs*, configs in the pool's estimated-cost tail
    (:data:`SEED_COST_TAIL_FRACTION`) are excluded before grouping;
    a job shape whose configs are all in the tail contributes nothing
    (acquisition can still reach it, budget permitting).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("seed fraction must be in (0, 1]")
    excluded: set[int] = set()
    if specs is not None:
        costs = [estimated_core_hours(specs[c.cluster], c.collective,
                                      c.nodes, c.ppn, c.msg_size)
                 for c in pool]
        cap = SEED_COST_TAIL_FRACTION * sum(costs)
        excluded = {i for i, cost in enumerate(costs) if cost > cap}
    groups: dict[tuple, list[int]] = {}
    for i, cand in enumerate(pool):
        if i in excluded:
            continue
        groups.setdefault(
            (cand.cluster, cand.collective, cand.nodes, cand.ppn),
            []).append(i)
    rng = np.random.default_rng(seed)
    chosen: list[int] = []
    # Group iteration order is insertion order — canonical pool order —
    # so the per-group offset draws are reproducible.
    for indices in groups.values():
        indices = sorted(indices, key=lambda i: pool[i].msg_size)
        take = max(1, int(round(fraction * len(indices))))
        take = min(take, len(indices))
        offset = int(rng.integers(len(indices)))
        if take == len(indices):
            chosen.extend(indices)
            continue
        stride = len(indices) / take
        picked = {(offset + int(round(j * stride))) % len(indices)
                  for j in range(take)}
        # Rounding collisions can merge two slots; top up from the
        # unpicked positions nearest the start to keep the count exact.
        pos = 0
        while len(picked) < take:
            if pos not in picked:
                picked.add(pos)
            pos += 1
        chosen.extend(indices[p] for p in sorted(picked))
    return sorted(chosen)


#: Memoized per-config benchmark-cost estimates (pure function of the
#: spec + config, like the feasibility grids).
_COST_CACHE: dict[tuple, float] = {}


def estimated_core_hours(spec: ClusterSpec, collective: str,
                         nodes: int, ppn: int, msg_size: int) -> float:
    """Estimated core-hours of benchmarking one configuration, from
    the analytic (noise-free) cost model — what a real campaign
    planner would predict from message size and rank count *before*
    committing an allocation.  Never consumes a measurement."""
    from ..simcluster.machine import Machine
    from ..smpi.collectives import base
    from ..smpi.tuning import DEFAULT_ITERATIONS

    key = (spec, collective, nodes, ppn, msg_size)
    cached = _COST_CACHE.get(key)
    if cached is not None:
        return cached
    machine = Machine(spec, nodes, ppn)
    total = sum(algo.estimate(machine, msg_size)
                for algo in base.algorithms(collective).values())
    cost = nodes * ppn * total * DEFAULT_ITERATIONS / 3600.0
    if len(_COST_CACHE) < 65536:
        _COST_CACHE[key] = cost
    return cost


def candidate_features(pool: list[Candidate], indices: list[int],
                       specs: dict[str, ClusterSpec]) -> np.ndarray:
    """Full 14-column feature rows for ``pool[i] for i in indices``.

    Hardware features are extracted once per cluster (same memo shape
    as :meth:`TuningDataset.feature_matrix`)."""
    cache: dict[str, np.ndarray] = {}
    out = np.empty((len(indices), len(ALL_FEATURE_NAMES)))
    for row, i in enumerate(indices):
        cand = pool[i]
        hw = cache.get(cand.cluster)
        if hw is None:
            hw = cache[cand.cluster] = feature_vector(
                specs[cand.cluster], 1, 1, 0)[3:]
        out[row, :3] = (float(cand.nodes), float(cand.ppn),
                        float(cand.msg_size))
        out[row, 3:] = hw
    return out


def rank_pool(models: dict, pool: list[Candidate],
              open_indices: list[int],
              specs: dict[str, ClusterSpec],
              cost_weight: float = 1.0
              ) -> list[tuple[int, float, float]]:
    """Rank the open (unbenchmarked) pool by ensemble uncertainty.

    Returns ``(pool_index, entropy, margin)`` triples, most informative
    first.  Candidates are grouped per collective and scored through
    one ``predict_proba_batch`` call each.

    With ``cost_weight > 0`` the ranking is cost-sensitive: the
    primary key is ``entropy / estimated_core_hours ** cost_weight`` —
    information *per core-hour*, the quantity the acquisition budget
    actually buys.  Without it (``cost_weight=0``) raw vote entropy
    ranks first.  Ties break by margin ascending, then pool index
    ascending — fully deterministic either way.  Collectives without a
    trained model (possible only with an empty seed group, which
    stratified seeding rules out) rank their candidates *first*,
    maximally uncertain.
    """
    by_collective: dict[str, list[int]] = {}
    for i in open_indices:
        by_collective.setdefault(pool[i].collective, []).append(i)
    scored: list[tuple[float, float, int, float]] = []
    unscored: list[int] = []
    for collective, indices in by_collective.items():
        model = models.get(collective)
        if model is None:
            unscored.extend(indices)
            continue
        X = candidate_features(pool, indices, specs)
        proba = model.predict_proba_batch(X)
        entropy = vote_entropy(proba)
        margin = prediction_margin(proba)
        for j, i in enumerate(indices):
            score = float(entropy[j])
            if cost_weight > 0.0 and score > 0.0:
                cand = pool[i]
                cost = estimated_core_hours(
                    specs[cand.cluster], cand.collective, cand.nodes,
                    cand.ppn, cand.msg_size)
                score = score / max(cost, 1e-12) ** cost_weight
            scored.append((score, float(margin[j]), i,
                           float(entropy[j])))
    scored.sort(key=lambda t: (-t[0], t[1], t[2]))
    return [(i, float("inf"), 0.0) for i in sorted(unscored)] + \
        [(i, entropy, margin) for score, margin, i, entropy in scored]
