"""Simulated core-hour accounting for the acquisition loop.

A benchmarked configuration costs what the real campaign would pay for
it: every candidate algorithm is timed for
:data:`~repro.smpi.tuning.DEFAULT_ITERATIONS` iterations on
``nodes * ppn`` ranks, so one record's cost is::

    nodes * ppn * sum(per-algorithm time) * iterations / 3600  core-hours

The ledger enforces two invariants the property tests pin down:

* spending is **monotone** — ``charge`` only ever increases
  ``spent_core_h``;
* the budget is **never overshot** — a config whose cost would push
  spending past the limit is *denied* (and, in the loop, ends the
  run), it is never partially charged.

Denial is checked *before* charging, which is what makes a smaller
budget's benchmark schedule a strict prefix of a larger one's: the
loop walks the same deterministic schedule and simply stops at the
first config it cannot afford.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..smpi.tuning import DEFAULT_ITERATIONS
from ..core.dataset import CollectiveRecord


def record_core_hours(record: CollectiveRecord,
                      iterations: int = DEFAULT_ITERATIONS) -> float:
    """Simulated core-hours one benchmarked configuration consumed."""
    ranks = record.nodes * record.ppn
    return ranks * sum(record.times.values()) * iterations / 3600.0


def dataset_core_hours(records, iterations: int = DEFAULT_ITERATIONS
                       ) -> float:
    """Total simulated core-hours of a benchmark campaign."""
    return sum(record_core_hours(r, iterations) for r in records)


class BudgetExceededError(RuntimeError):
    """Raised when a charge would overshoot the ledger's limit."""


@dataclass
class CoreHourLedger:
    """Monotone core-hour ledger with a hard, never-overshot limit.

    ``limit_core_h=None`` means unlimited (the plateau rule or pool
    exhaustion must end the run instead).
    """

    limit_core_h: float | None = None
    spent_core_h: float = 0.0
    denied: int = 0
    #: Spending after each successful charge — the monotone trajectory
    #: the decision log commits to.
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.limit_core_h is not None and self.limit_core_h < 0:
            raise ValueError("budget must be >= 0")

    @property
    def unlimited(self) -> bool:
        return self.limit_core_h is None

    def remaining(self) -> float:
        if self.limit_core_h is None:
            return float("inf")
        return max(0.0, self.limit_core_h - self.spent_core_h)

    def can_afford(self, cost_core_h: float) -> bool:
        if cost_core_h < 0:
            raise ValueError("cost must be >= 0")
        if self.limit_core_h is None:
            return True
        return self.spent_core_h + cost_core_h <= self.limit_core_h

    def charge(self, cost_core_h: float) -> float:
        """Charge one config's cost; returns the new total.

        Raises :class:`BudgetExceededError` instead of overshooting —
        callers must gate on :meth:`can_afford` first (and count the
        denial via :meth:`deny`).
        """
        if not self.can_afford(cost_core_h):
            raise BudgetExceededError(
                f"charging {cost_core_h:.6f} core-h would overshoot "
                f"the {self.limit_core_h:.6f} core-h budget "
                f"(spent {self.spent_core_h:.6f})")
        self.spent_core_h += cost_core_h
        self.history.append(self.spent_core_h)
        return self.spent_core_h

    def deny(self) -> None:
        self.denied += 1
