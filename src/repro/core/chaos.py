"""Chaos/soak harness for the runtime guard layer.

Fires tens of thousands of adversarial queries at a
:class:`~repro.smpi.guard.GuardedSelector` — fuzzed job shapes,
malformed inputs, far-out-of-distribution sizes, a fault-injected
inner selector (:class:`FlakySelector`, driven by a seeded
:class:`~repro.simcluster.conditions.FaultProfile`), corrupt-model
labels, and scripted failure storms that trip the circuit breaker —
and asserts the guard's invariants:

* nothing but typed :class:`~repro.smpi.heuristics.InvalidQueryError`
  ever escapes the guard, and only for malformed queries;
* every answered query returns a registry algorithm that is *feasible*
  for the queried communicator shape;
* the breaker completes at least one open → half-open → closed cycle
  across the scripted storms;
* the guard's health counters reconcile exactly with the query count.

Everything is a pure function of ``seed``: the breaker runs on a
query-tick clock, fault injection is seeded, and the query stream is
drawn from a seeded generator — so a failure reproduces exactly.
Exposed as ``pml-mpi chaos`` and wired into ``scripts/smoke.sh``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..hwmodel.registry import get_cluster
from ..simcluster.conditions import FaultProfile
from ..simcluster.machine import Machine
from ..smpi.collectives import base
from ..smpi.guard import (
    GuardedSelector,
    InvalidQueryError,
    extract_envelopes,
)
from ..obs.telemetry import get_registry, get_tracer
from ..smpi.heuristics import AlgorithmSelector
from .dataset import collect_dataset
from .inference import PretrainedSelector
from .resilience import CircuitBreaker, TransientCollectionError
from .training import train_model

#: Collectives the harness trains models for (the paper's pair).
CHAOS_COLLECTIVES = ("allgather", "alltoall")
#: Training cluster (small grid -> fast, cached collection).
CHAOS_TRAIN_CLUSTER = "RI"

#: A label no registry knows — what a corrupted model bundle emits.
CORRUPT_LABEL = "__corrupted_label__"


def _rng(seed: int, *parts: object) -> np.random.Generator:
    token = "|".join(str(p) for p in ("chaos", seed, *parts))
    return np.random.default_rng(zlib.crc32(token.encode()))


class FlakySelector(AlgorithmSelector):
    """Fault-injecting wrapper around the inner (model) selector.

    Per call, seeded on the call index: raise a transient failure
    (via the :class:`FaultProfile`), emit a corrupt label, emit a
    deliberately infeasible power-of-two-only algorithm, or answer
    honestly.  ``force_fail`` scripts a failure storm (every call
    raises) so the harness can trip the breaker deterministically.
    """

    def __init__(self, inner: AlgorithmSelector, faults: FaultProfile,
                 garbage_rate: float = 0.02,
                 infeasible_rate: float = 0.05, seed: int = 0) -> None:
        self.inner = inner
        self.faults = faults
        self.garbage_rate = garbage_rate
        self.infeasible_rate = infeasible_rate
        self.seed = seed
        self.calls = 0
        self.force_fail = False

    def _infeasible_name(self, collective: str) -> str | None:
        for name, algo in sorted(base.algorithms(collective).items()):
            if algo.requires_power_of_two:
                return name
        return None

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        i = self.calls
        self.calls += 1
        if self.force_fail or self.faults.attempt_fails(
                "chaos-select", attempt=i):
            raise TransientCollectionError(
                f"injected selector failure (call {i})")
        u = float(_rng(self.seed, "mode", i).uniform())
        if u < self.garbage_rate:
            return CORRUPT_LABEL
        if u < self.garbage_rate + self.infeasible_rate:
            bad = self._infeasible_name(collective)
            if bad is not None:
                return bad
        return self.inner.select(collective, machine, msg_size)


@dataclass
class _BogusMachine:
    """Adversarial stand-in probing the guard's input validation."""

    nodes: Any
    ppn: Any


@dataclass
class ChaosReport:
    """Outcome of one chaos run; ``ok`` is the pass/fail verdict."""

    queries: int
    seed: int
    wall_s: float = 0.0
    invalid_rejected: int = 0
    unguarded_exceptions: int = 0
    infeasible_served: int = 0
    breaker_cycles: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    breaker_transitions: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "queries": self.queries,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "invalid_rejected": self.invalid_rejected,
            "unguarded_exceptions": self.unguarded_exceptions,
            "infeasible_served": self.infeasible_served,
            "breaker_cycles": self.breaker_cycles,
            "counters": dict(self.counters),
            "breaker_transitions": dict(self.breaker_transitions),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"queries:              {self.queries}",
            f"seed:                 {self.seed}",
            f"wall:                 {self.wall_s:.2f} s",
            f"invalid rejected:     {self.invalid_rejected}",
            f"unguarded exceptions: {self.unguarded_exceptions}",
            f"infeasible served:    {self.infeasible_served}",
            f"breaker cycles:       {self.breaker_cycles}",
        ]
        for name in sorted(self.counters):
            lines.append(f"  {name:<22} {self.counters[name]}")
        for key in sorted(self.breaker_transitions):
            lines.append(f"  breaker {key:<14} "
                         f"{self.breaker_transitions[key]}")
        for v in self.violations[:20]:
            lines.append(f"VIOLATION: {v}")
        if len(self.violations) > 20:
            lines.append(f"... {len(self.violations) - 20} more")
        lines.append("CHAOS OK" if self.ok else "CHAOS FAILED")
        return "\n".join(lines)


def build_chaos_selector(seed: int = 0,
                         failure_rate: float = 0.02,
                         garbage_rate: float = 0.02,
                         infeasible_rate: float = 0.05,
                         breaker_threshold: int = 5,
                         recovery_ticks: float = 150.0,
                         n_estimators: int = 20,
                         clock=None
                         ) -> tuple[GuardedSelector, FlakySelector]:
    """A guarded, fault-injected selector for the harness (and tests).

    Trains harness-sized models (``n_estimators`` trees) on the cached
    RI dataset, wraps them in a :class:`FlakySelector`, and guards the
    result with a breaker on the given ``clock`` (defaults to wall
    time; the harness passes a query-tick counter for determinism).
    """
    spec = get_cluster(CHAOS_TRAIN_CLUSTER)
    dataset = collect_dataset(clusters=[spec],
                              collectives=CHAOS_COLLECTIVES,
                              progress=False)
    models = {coll: train_model(dataset, coll, seed=seed,
                                params={"n_estimators": n_estimators})
              for coll in CHAOS_COLLECTIVES}
    pretrained = PretrainedSelector(models)
    flaky = FlakySelector(
        pretrained,
        FaultProfile(failure_rate=failure_rate, seed=seed),
        garbage_rate=garbage_rate, infeasible_rate=infeasible_rate,
        seed=seed)
    breaker_kwargs: dict[str, Any] = dict(
        failure_threshold=breaker_threshold,
        recovery_timeout_s=recovery_ticks)
    if clock is not None:
        breaker_kwargs["clock"] = clock
    # The guard wraps the *flaky* selector, which has no ``models``
    # attribute — lift the envelopes off the real pretrained models.
    guard = GuardedSelector(
        flaky, breaker=CircuitBreaker(**breaker_kwargs),
        envelopes=extract_envelopes(pretrained))
    return guard, flaky


def _invalid_query(rng: np.random.Generator, machine: Machine
                   ) -> tuple[str, Any, Any]:
    """One malformed (collective, machine, msg_size) query."""
    kind = int(rng.integers(5))
    if kind == 0:
        return "allgather", machine, -int(rng.integers(1, 1 << 20))
    if kind == 1:
        return "allgather", machine, 0
    if kind == 2:
        return "no_such_collective", machine, 1024
    if kind == 3:
        return "alltoall", _BogusMachine(nodes=0, ppn=8), 1024
    return "alltoall", _BogusMachine(
        nodes=2, ppn=-int(rng.integers(1, 64))), 4096


def run_chaos(queries: int = 10_000, seed: int = 0,
              failure_rate: float = 0.02, garbage_rate: float = 0.02,
              infeasible_rate: float = 0.05,
              invalid_fraction: float = 0.1, ood_fraction: float = 0.1,
              storm_length: int = 60, breaker_threshold: int = 5,
              recovery_ticks: float = 150.0,
              progress: bool = False) -> ChaosReport:
    """Soak the guard layer with *queries* adversarial queries.

    Two scripted failure storms (at 30% and 65% of the run) force the
    inner selector to fail on every call for ``storm_length`` queries,
    driving the breaker open; the query-tick clock then walks it
    through half-open recovery.  Returns a :class:`ChaosReport`; the
    run itself never raises on guard violations — they are recorded so
    CI can print all of them.
    """
    if queries < 1:
        raise ValueError("queries must be >= 1")
    tick = [0.0]
    guard, flaky = build_chaos_selector(
        seed=seed, failure_rate=failure_rate, garbage_rate=garbage_rate,
        infeasible_rate=infeasible_rate,
        breaker_threshold=breaker_threshold,
        recovery_ticks=recovery_ticks, clock=lambda: tick[0])
    report = ChaosReport(queries=queries, seed=seed)

    # Query machines: in-distribution RI shapes, remap-bait odd shapes
    # (p=6/12 invite power-of-two-only predictions), and far-OOD giants.
    ri = get_cluster(CHAOS_TRAIN_CLUSTER)
    rome = get_cluster("Rome")
    machines = [Machine(ri, 2, 4), Machine(ri, 2, 8),
                Machine(rome, 3, 2), Machine(rome, 3, 4),
                Machine(rome, 6, 2)]
    ood_machines = [Machine(get_cluster("Frontera"), 2048, 16),
                    Machine(get_cluster("Frontera"), 512, 56)]

    storms = []
    for frac in (0.30, 0.65):
        start = int(queries * frac)
        storms.append((start, start + storm_length))

    t0 = time.perf_counter()
    expected_invalid = 0
    tracer = get_tracer()
    soak = tracer.start_span("chaos.soak", queries=queries, seed=seed) \
        if tracer.enabled else None
    for i in range(queries):
        tick[0] = float(i)
        flaky.force_fail = any(a <= i < b for a, b in storms)
        rng = _rng(seed, "query", i)
        u = float(rng.uniform())
        collective = CHAOS_COLLECTIVES[int(rng.integers(
            len(CHAOS_COLLECTIVES)))]
        if flaky.force_fail:
            # Storm queries must reach the inner selector to trip the
            # breaker, so keep them well-formed and in-distribution.
            machine, msg_size = machines[0], int(rng.integers(1, 1 << 16))
        elif u < invalid_fraction:
            expected_invalid += 1
            collective, machine, msg_size = _invalid_query(
                rng, machines[int(rng.integers(len(machines)))])
            try:
                guard.select(collective, machine, msg_size)
            except InvalidQueryError:
                report.invalid_rejected += 1
            except Exception as exc:
                report.unguarded_exceptions += 1
                report.violations.append(
                    f"query {i}: invalid input leaked "
                    f"{type(exc).__name__}: {exc}")
            else:
                report.violations.append(
                    f"query {i}: invalid input accepted "
                    f"({collective!r}, msg={msg_size!r})")
            continue
        elif u < invalid_fraction + ood_fraction:
            machine = ood_machines[int(rng.integers(len(ood_machines)))]
            msg_size = int(rng.integers(1 << 24, 1 << 28)) \
                if rng.uniform() < 0.5 else int(rng.integers(1, 1 << 20))
        else:
            machine = machines[int(rng.integers(len(machines)))]
            msg_size = int(2 ** rng.uniform(0.0, 21.0))
        try:
            algo = guard.select(collective, machine, msg_size)
        except Exception as exc:
            report.unguarded_exceptions += 1
            report.violations.append(
                f"query {i}: unguarded {type(exc).__name__}: {exc}")
            continue
        p = machine.nodes * machine.ppn
        try:
            feasible = base.is_feasible(collective, algo, p)
        except KeyError:
            feasible = False
        if not feasible:
            report.infeasible_served += 1
            report.violations.append(
                f"query {i}: served infeasible/unknown {algo!r} for "
                f"{collective} at p={p}")
        if progress and (i + 1) % 1000 == 0:
            print(f"  {i + 1}/{queries} queries, "
                  f"{len(report.violations)} violations")

    report.wall_s = time.perf_counter() - t0
    report.counters = dict(guard.counters)
    report.breaker_transitions = guard.breaker.transition_counts()
    report.breaker_cycles = guard.breaker.cycles()
    if soak is not None:
        soak.attributes["violations"] = len(report.violations)
        tracer.finish_span(soak)
    # Mirror the guard's per-instance counters into the ambient
    # registry so a traced chaos run exports them alongside the spans.
    registry = get_registry()
    for name, value in report.counters.items():
        registry.counter(f"chaos.guard.{name}").inc(value)

    # -- cross-cutting invariants ---------------------------------------
    c = guard.counters
    partition = (c["invalid"] + c["served_model"] + c["remapped"]
                 + c["ood_fallback"] + c["breaker_fallback"]
                 + c["error_fallback"])
    if partition != c["queries"] or c["queries"] != queries:
        report.violations.append(
            f"counters do not reconcile: partition={partition}, "
            f"queries counter={c['queries']}, fired={queries}")
    if c["invalid"] != expected_invalid:
        report.violations.append(
            f"invalid counter {c['invalid']} != expected "
            f"{expected_invalid}")
    if storms and storms[0][1] < queries and report.breaker_cycles < 1:
        report.violations.append(
            "breaker never completed an open->half-open->closed cycle")
    return report


# ---------------------------------------------------------------------------
# Daemon soak (``pml-mpi chaos --daemon``)
# ---------------------------------------------------------------------------

#: Daemon error codes a storm client may legitimately receive.
ALLOWED_DAEMON_ERRORS = ("overloaded", "draining")


@dataclass
class DaemonChaosReport:
    """Outcome of one daemon soak; ``ok`` is the pass/fail verdict."""

    seed: int
    clients: int
    requests_per_client: int
    wall_s: float = 0.0
    requests_sent: int = 0
    ok_responses: int = 0
    deadline_floored: int = 0
    shed: int = 0
    invalid_decisions: int = 0
    reloads_observed: int = 0
    scrapes: int = 0
    phases: list[str] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "wall_s": self.wall_s,
            "requests_sent": self.requests_sent,
            "ok_responses": self.ok_responses,
            "deadline_floored": self.deadline_floored,
            "shed": self.shed,
            "invalid_decisions": self.invalid_decisions,
            "reloads_observed": self.reloads_observed,
            "scrapes": self.scrapes,
            "phases": list(self.phases),
            "counters": dict(self.counters),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"seed:               {self.seed}",
            f"clients:            {self.clients} x "
            f"{self.requests_per_client} requests",
            f"wall:               {self.wall_s:.2f} s",
            f"requests sent:      {self.requests_sent}",
            f"ok responses:       {self.ok_responses}",
            f"deadline-floored:   {self.deadline_floored}",
            f"shed (overloaded):  {self.shed}",
            f"invalid decisions:  {self.invalid_decisions}",
            f"reloads observed:   {self.reloads_observed}",
            f"scrapes answered:   {self.scrapes}",
        ]
        for phase in self.phases:
            lines.append(f"  phase: {phase}")
        for name in sorted(self.counters):
            if name.startswith("serve.daemon."):
                lines.append(f"  {name:<32} {self.counters[name]}")
        for v in self.violations[:20]:
            lines.append(f"VIOLATION: {v}")
        if len(self.violations) > 20:
            lines.append(f"... {len(self.violations) - 20} more")
        lines.append("DAEMON CHAOS OK" if self.ok
                     else "DAEMON CHAOS FAILED")
        return "\n".join(lines)


def _train_chaos_bundle(path, seed: int, n_estimators: int = 8) -> None:
    """Write a small RI bundle (the harness's hot-swappable artifact)."""
    from .bundle import save_selector

    spec = get_cluster(CHAOS_TRAIN_CLUSTER)
    dataset = collect_dataset(clusters=[spec],
                              collectives=CHAOS_COLLECTIVES,
                              progress=False)
    models = {coll: train_model(dataset, coll, seed=seed,
                                params={"n_estimators": n_estimators})
              for coll in CHAOS_COLLECTIVES}
    save_selector(PretrainedSelector(models), path)


def _daemon_env() -> dict[str, str]:
    """Subprocess env whose PYTHONPATH can import this very ``repro``."""
    import os

    import repro

    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return env


def _start_daemon(bundle: Path, socket_path: Path, state_dir: Path,
                  ready: Path, log_path: Path):
    """Launch ``pml-mpi serve`` as a real subprocess (SIGKILL-able)."""
    import subprocess
    import sys

    cmd = [sys.executable, "-m", "repro.cli", "serve",
           CHAOS_TRAIN_CLUSTER,
           "--bundle", str(bundle),
           "--state-dir", str(state_dir),
           "--socket", str(socket_path),
           "--ready-file", str(ready),
           "--reload-poll-s", "0.1",
           "--max-inflight", "2",
           "--deadline-ms", "10000",
           "--drain-timeout-s", "5"]
    log = open(log_path, "ab")
    try:
        return subprocess.Popen(cmd, stdout=log,
                                stderr=subprocess.STDOUT,
                                env=_daemon_env())
    finally:
        log.close()  # the child holds its own duplicated fd


def _wait_ready(ready: Path, proc, timeout_s: float = 120.0
                ) -> dict[str, Any] | None:
    """Poll for the daemon's readiness record; ``None`` on death or
    timeout."""
    import json

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if ready.exists():
            try:
                return json.loads(ready.read_text())
            except (OSError, json.JSONDecodeError):
                pass  # mid-write; retry
        if proc.poll() is not None:
            return None
        time.sleep(0.05)
    return None


def _daemon_partition_violations(counters: dict[str, int],
                                 context: str,
                                 quiescent: bool) -> list[str]:
    """Counter-partition invariants over one ``stats`` snapshot.

    The daemon partition holds at *every* observation (terminal
    counters are bumped atomically with ``requests``); the serve/guard
    partitions only at quiescence (a mid-batch service has counted the
    query but not yet its outcome).
    """
    out: list[str] = []
    d = {k: counters.get(f"serve.daemon.{k}", 0)
         for k in ("requests", "ok", "deadline_floor", "bad_request",
                   "overloaded", "draining", "internal")}
    parts = (d["ok"] + d["deadline_floor"] + d["bad_request"]
             + d["overloaded"] + d["draining"] + d["internal"])
    if parts != d["requests"]:
        out.append(f"{context}: daemon partition {parts} != "
                   f"requests {d['requests']} ({d})")
    if d["internal"]:
        out.append(f"{context}: internal errors served: "
                   f"{d['internal']}")
    if not quiescent:
        return out
    s = {k: counters.get(f"serve.{k}", 0)
         for k in ("queries", "cache_hits", "deduped", "cache_misses")}
    if s["cache_hits"] + s["deduped"] + s["cache_misses"] \
            != s["queries"]:
        out.append(f"{context}: serve partition does not reconcile "
                   f"({s})")
    g = {k: counters.get(f"guard.{k}", 0)
         for k in ("queries", "invalid", "served_model", "remapped",
                   "ood_fallback", "breaker_fallback",
                   "error_fallback")}
    if (g["invalid"] + g["served_model"] + g["remapped"]
            + g["ood_fallback"] + g["breaker_fallback"]
            + g["error_fallback"]) != g["queries"]:
        out.append(f"{context}: guard partition does not reconcile "
                   f"({g})")
    return out


class _StormStats:
    """Thread-safe tally shared by the storm clients."""

    def __init__(self) -> None:
        import threading

        self.lock = threading.Lock()
        self.sent = 0
        self.ok = 0
        self.floored = 0
        self.shed = 0
        self.invalid = 0
        self.violations: list[str] = []

    def violation(self, message: str) -> None:
        with self.lock:
            self.violations.append(message)


def _check_select_response(response: dict[str, Any], n_queries: int,
                           context: str, stats: _StormStats) -> None:
    decisions = response.get("decisions")
    if not isinstance(decisions, list) or len(decisions) != n_queries:
        stats.violation(
            f"{context}: expected {n_queries} decisions, got "
            f"{type(decisions).__name__}")
        return
    if "snapshot" not in response:
        stats.violation(f"{context}: response has no snapshot version")
    for j, d in enumerate(decisions):
        invalid = d.get("action") == "invalid"
        if (d.get("algorithm") is None) != invalid:
            stats.violation(
                f"{context}: decision {j} breaks the algorithm/action "
                f"invariant: {d!r}")
        if invalid:
            with stats.lock:
                stats.invalid += 1


def _storm_worker(socket_path: Path, cid: int, requests: int,
                  seed: int, stats: _StormStats) -> None:
    """One storm client: a seeded mix of valid batches, semantically
    invalid queries, tiny-deadline requests, pings and stats calls.
    Transport errors and non-allowed error codes are violations — a
    serving daemon never slams the door on a well-behaved client."""
    from ..serve.client import DaemonClient, DaemonError

    try:
        client = DaemonClient(socket_path, timeout_s=60.0)
    except OSError as exc:
        stats.violation(f"client {cid}: cannot connect: {exc}")
        return
    try:
        for i in range(requests):
            rng = _rng(seed, "daemon-client", cid, i)
            u = float(rng.uniform())
            context = f"client {cid} request {i}"
            with stats.lock:
                stats.sent += 1
            try:
                if u < 0.08:
                    client.ping()
                elif u < 0.16:
                    response = client.stats()
                    for v in _daemon_partition_violations(
                            response.get("counters", {}), context,
                            quiescent=False):
                        stats.violation(v)
                elif u < 0.28:
                    # Semantic junk must come back as invalid
                    # *decisions*, never as a protocol error.
                    response = client.select([{
                        "collective": "allgather", "nodes": 2,
                        "ppn": 8,
                        "msg_size": -int(rng.integers(1, 1 << 20)),
                    }])
                    _check_select_response(response, 1, context, stats)
                elif u < 0.40:
                    queries = _valid_queries(rng, 1)
                    response = client.select(queries,
                                             deadline_ms=0.001)
                    _check_select_response(response, len(queries),
                                           context, stats)
                    if response.get("degraded") == "deadline-floor":
                        with stats.lock:
                            stats.floored += 1
                else:
                    queries = _valid_queries(
                        rng, int(rng.integers(1, 9)))
                    response = client.select(queries)
                    _check_select_response(response, len(queries),
                                           context, stats)
                with stats.lock:
                    stats.ok += 1
            except DaemonError as exc:
                if exc.code in ALLOWED_DAEMON_ERRORS:
                    with stats.lock:
                        stats.shed += 1
                else:
                    stats.violation(
                        f"{context}: daemon error [{exc.code}] "
                        f"{exc.detail}")
            except Exception as exc:
                stats.violation(
                    f"{context}: transport failure "
                    f"{type(exc).__name__}: {exc}")
    finally:
        client.close()


def _valid_queries(rng: np.random.Generator,
                   n: int) -> list[dict[str, Any]]:
    """Well-formed RI-shaped query dicts (in-distribution sizes)."""
    return [{
        "collective": CHAOS_COLLECTIVES[int(rng.integers(
            len(CHAOS_COLLECTIVES)))],
        "nodes": 2,
        "ppn": int(rng.choice([4, 8])),
        "msg_size": int(2 ** rng.integers(0, 21)),
    } for _ in range(n)]


def _poll_stats(socket_path: Path, predicate, timeout_s: float = 30.0
                ) -> dict[str, Any] | None:
    """Fresh-connection stats polls until *predicate* accepts one."""
    from ..serve.client import DaemonClient

    deadline = time.monotonic() + timeout_s
    last: dict[str, Any] | None = None
    while time.monotonic() < deadline:
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                last = client.stats()
        except Exception:
            last = None
        if last is not None and predicate(last):
            return last
        time.sleep(0.1)
    return None


#: Counters a ``stats`` probe increments about *itself* — its fresh
#: connection, plus the request/ok pair bumped in the dispatch
#: ``finally`` after the response snapshot is built.  The quiescence
#: comparison must ignore them or two consecutive polls always differ
#: by exactly the poll's own accounting.
_STATS_SELF_COUNTERS = frozenset(
    {"serve.daemon.connections", "serve.daemon.requests",
     "serve.daemon.ok"})


def _poll_quiescent(socket_path: Path, timeout_s: float = 30.0
                    ) -> dict[str, Any] | None:
    """Deadline-bounded wait for daemon quiescence: zero in-flight
    requests and a counter set that stopped moving between two
    consecutive observations (abandoned deadline batches still count
    their serve.*/guard.* outcomes after the floored response went
    out, so a single inflight==0 snapshot is not enough).  The stats
    probes' own request accounting is excluded from the comparison."""
    prev: list[dict[str, Any] | None] = [None]

    def workload(s: dict[str, Any]) -> dict[str, Any]:
        return {k: v for k, v in (s.get("counters") or {}).items()
                if k not in _STATS_SELF_COUNTERS}

    def settled(s: dict[str, Any]) -> bool:
        before, prev[0] = prev[0], s
        if s.get("inflight", 0) != 0:
            return False
        return before is not None \
            and workload(before) == workload(s)

    return _poll_stats(socket_path, settled, timeout_s=timeout_s)


#: Terminal counters of the daemon partition; in any internally
#: consistent Prometheus scrape their ``_total`` samples must sum to
#: ``pml_serve_daemon_requests_total`` exactly (the exposition is
#: rendered synchronously on the dispatch thread).
_DAEMON_TERMINALS = ("ok", "deadline_floor", "bad_request",
                     "overloaded", "draining", "internal")


def _scrape_once(client: Any, context: str, stats: _StormStats) -> bool:
    """One observation of the live introspection plane: ``metrics``,
    ``tail`` and ``health`` over an existing connection.

    Checks the scrape-under-storm invariants: the Prometheus export
    must parse, its daemon-partition totals must reconcile *within the
    single scrape* (terminal counters sum to requests, zero internal
    errors), the tail must be a bounded list of well-formed events,
    and the health verdict must come from the closed set.  Returns
    True when the three ops all answered (violations may still have
    been recorded about their payloads)."""
    from ..obs.expo import parse_prometheus
    from ..obs.live import EVENT_KINDS

    try:
        metrics = client.metrics()
        tail = client.tail(16)
        health = client.health()
    except Exception as exc:
        stats.violation(f"{context}: introspection op failed "
                        f"{type(exc).__name__}: {exc}")
        return False
    try:
        samples = parse_prometheus(metrics.get("body", ""))
    except ValueError as exc:
        stats.violation(f"{context}: unparseable exposition: {exc}")
        return True
    requests = samples.get("pml_serve_daemon_requests_total", 0)
    terminals = {k: samples.get(f"pml_serve_daemon_{k}_total", 0)
                 for k in _DAEMON_TERMINALS}
    if sum(terminals.values()) != requests:
        stats.violation(
            f"{context}: exposition partition {terminals} does not "
            f"sum to requests {requests}")
    if terminals["internal"]:
        stats.violation(f"{context}: exposition shows "
                        f"{terminals['internal']} internal errors")
    events = tail.get("events")
    if not isinstance(events, list) or len(events) > 16:
        stats.violation(
            f"{context}: tail did not return a bounded event list: "
            f"{type(events).__name__}")
    else:
        for event in events:
            if event.get("kind") not in EVENT_KINDS \
                    or not isinstance(event.get("tick"), int):
                stats.violation(
                    f"{context}: malformed tail event {event!r}")
                break
        if tail.get("total", 0) < len(events):
            stats.violation(
                f"{context}: tail total {tail.get('total')} < "
                f"{len(events)} returned events")
    if health.get("verdict") not in ("ok", "warn", "page"):
        stats.violation(f"{context}: health verdict "
                        f"{health.get('verdict')!r} not in closed set")
    return True


def _scrape_worker(socket_path: Path, stop: Any, stats: _StormStats,
                   counted: list[int]) -> None:
    """Scrape loop run alongside the client storm: fresh connection
    per iteration (a scraper reconnects, it does not hold a socket
    open across reloads), counting only scrapes where all three ops
    answered.  Connection refusals are tolerated — the daemon may be
    shedding — but an accepted connection must answer."""
    from ..serve.client import DaemonClient

    i = 0
    while not stop.is_set():
        i += 1
        try:
            client = DaemonClient(socket_path, timeout_s=30.0)
        except OSError:
            time.sleep(0.05)
            continue
        try:
            if _scrape_once(client, f"scrape {i}", stats):
                counted[0] += 1
        finally:
            client.close()
        time.sleep(0.02)


def run_daemon_chaos(seed: int = 0, clients: int = 4,
                     requests_per_client: int = 40,
                     progress: bool = False) -> DaemonChaosReport:
    """End-to-end soak of the serving daemon, as a real subprocess.

    Phases: boot from a freshly trained bundle → concurrent client
    storm (valid/invalid/tiny-deadline/ping/stats mix) with a
    mid-storm atomic hot-swap to a retrained bundle → corrupt-bundle
    swap (reload must reject, old snapshot keeps serving) → SIGKILL →
    crash-safe restart in the same state dir (stale lock recovered,
    the killer bundle quarantined, heuristic floor serving) →
    graceful ``shutdown`` drain.  Violations are recorded, never
    raised, so CI prints all of them.
    """
    import json
    import os
    import shutil
    import subprocess
    import tempfile
    import threading

    from ..obs.expo import parse_prometheus
    from ..serve.client import DaemonClient, DaemonError
    from .resilience import atomic_write_text

    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    report = DaemonChaosReport(seed=seed, clients=clients,
                               requests_per_client=requests_per_client)
    t0 = time.perf_counter()
    tmp = Path(tempfile.mkdtemp(prefix="pml-daemon-chaos-"))
    proc = None

    def phase(name: str) -> None:
        report.phases.append(name)
        if progress:
            print(f"  phase: {name}")

    try:
        bundle = tmp / "bundle.json"
        next_bundle = tmp / "bundle.v2.json"
        socket_path = tmp / "daemon.sock"
        state_dir = tmp / "state"
        ready = tmp / "ready.json"
        log_path = tmp / "daemon.log"

        phase("train bundles (v1, v2)")
        _train_chaos_bundle(bundle, seed=seed)
        _train_chaos_bundle(next_bundle, seed=seed + 1)
        if file_checksum_equal(bundle, next_bundle):
            report.violations.append(
                "v1 and v2 bundles are byte-identical; hot-swap "
                "cannot be observed")

        phase("boot daemon")
        proc = _start_daemon(bundle, socket_path, state_dir, ready,
                             log_path)
        boot = _wait_ready(ready, proc)
        if boot is None:
            report.violations.append(
                "daemon never became ready: "
                + _tail(log_path))
            return report
        v0 = int(boot.get("snapshot", 0))
        if boot.get("source") != "bundle":
            report.violations.append(
                f"boot source {boot.get('source')!r}, expected "
                f"'bundle'")

        phase(f"client storm ({clients} x {requests_per_client})")
        stats = _StormStats()
        threads = [
            threading.Thread(
                target=_storm_worker,
                args=(socket_path, cid, requests_per_client, seed,
                      stats),
                name=f"storm-{cid}")
            for cid in range(clients)]
        for t in threads:
            t.start()

        phase("mid-storm scrape loop (metrics/tail/health)")
        scrape_stop = threading.Event()
        scrape_count = [0]
        scraper = threading.Thread(
            target=_scrape_worker,
            args=(socket_path, scrape_stop, stats, scrape_count),
            name="scraper")
        scraper.start()

        phase("mid-storm hot-reload (atomic swap to v2)")
        # Deadline-bounded poll instead of a fixed sleep: swap once the
        # storm is demonstrably underway (every client has landed at
        # least one request).  A finished storm also satisfies this —
        # the swap is still observed through the store's checksum poll.
        _poll_stats(
            socket_path,
            lambda s: s.get("counters", {}).get(
                "serve.daemon.requests", 0) >= clients)
        os.replace(next_bundle, bundle)
        swapped = _poll_stats(
            socket_path,
            lambda s: int(s["snapshot"]["version"]) > v0)
        if swapped is None:
            report.violations.append(
                "hot-reload to the v2 bundle was never observed")
        else:
            report.reloads_observed += 1

        for t in threads:
            t.join()
        scrape_stop.set()
        scraper.join()
        report.scrapes = scrape_count[0]
        if report.scrapes < 1:
            report.violations.append(
                "no introspection scrape was answered during the "
                "storm window")
        report.requests_sent = stats.sent
        report.ok_responses = stats.ok
        report.deadline_floored = stats.floored
        report.shed = stats.shed
        report.invalid_decisions = stats.invalid
        copied_violations = len(stats.violations)
        report.violations.extend(stats.violations[:copied_violations])

        phase("quiescent partition check")
        quiet = _poll_quiescent(socket_path, timeout_s=30.0)
        if quiet is None:
            report.violations.append("stats unavailable after storm")
        else:
            report.violations.extend(_daemon_partition_violations(
                quiet.get("counters", {}), "post-storm",
                quiescent=True))

        phase("quiescent exposition cross-check")
        # At quiescence the Prometheus export must agree *exactly* with
        # the stats counters: over one connection, a `metrics` scrape
        # issued right after `stats` sees precisely the stats request's
        # own accounting (+1 request, +1 ok) on top of the snapshot,
        # because the exposition is rendered on the dispatch thread
        # before the scrape's own increments land.
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                before = client.stats().get("counters", {})
                body = client.metrics().get("body", "")
                samples = parse_prometheus(body)
                expect = {
                    "requests": before.get(
                        "serve.daemon.requests", 0) + 1,
                    "ok": before.get("serve.daemon.ok", 0) + 1}
                for key in ("requests", *_DAEMON_TERMINALS):
                    want = expect.get(key, before.get(
                        f"serve.daemon.{key}", 0))
                    got = samples.get(
                        f"pml_serve_daemon_{key}_total", 0)
                    if got != want:
                        report.violations.append(
                            f"quiescent scrape: exposition "
                            f"serve.daemon.{key} = {got}, stats "
                            f"imply {want}")
        except Exception as exc:
            report.violations.append(
                f"quiescent exposition cross-check failed: "
                f"{type(exc).__name__}: {exc}")

        phase("corrupt-bundle swap (reload must reject)")
        atomic_write_text(bundle, '{"broken')
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                result = client.reload()
                if result.get("status") != "rejected":
                    report.violations.append(
                        f"corrupt reload not rejected: {result!r}")
                # The storm may have tripped the admission breaker;
                # retry through its cooldown (recovery_timeout_s plus
                # one half-open probe) under a hard deadline instead of
                # sleeping a fixed interval.
                queries = _valid_queries(_rng(seed, "post-corrupt"), 4)
                deadline = time.monotonic() + 30.0
                while True:
                    try:
                        response = client.select(queries)
                        break
                    except DaemonError as exc:
                        if exc.code != "overloaded" \
                                or time.monotonic() >= deadline:
                            raise
                        time.sleep(0.1)
                _check_select_response(response, 4, "post-corrupt",
                                       stats)
        except Exception as exc:
            report.violations.append(
                f"daemon unusable after corrupt swap: "
                f"{type(exc).__name__}: {exc}")

        phase("SIGKILL daemon")
        proc.kill()
        proc.wait(timeout=30)

        phase("crash-safe restart (same state dir, corrupt bundle)")
        ready.unlink(missing_ok=True)
        proc = _start_daemon(bundle, socket_path, state_dir, ready,
                             log_path)
        reboot = _wait_ready(ready, proc)
        if reboot is None:
            report.violations.append(
                "daemon did not recover after SIGKILL: "
                + _tail(log_path))
            return report
        if reboot.get("source") != "heuristic-floor":
            report.violations.append(
                f"restart source {reboot.get('source')!r}, expected "
                f"'heuristic-floor' (corrupt bundle must not load)")
        if bundle.exists():
            report.violations.append(
                "corrupt bundle was not quarantined at boot")
        if not any(p.name.startswith("bundle.json.corrupt")
                   for p in tmp.iterdir()):
            report.violations.append(
                "no *.corrupt quarantine file after crash restart")
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                after = client.stats()
                counters = after.get("counters", {})
                if counters.get("serve.daemon.crash_recovered", 0) < 1:
                    report.violations.append(
                        "restart did not count crash_recovered")
                if counters.get("serve.daemon.quarantined_boot", 0) < 1:
                    report.violations.append(
                        "restart did not count quarantined_boot")
                response = client.select(_valid_queries(
                    _rng(seed, "post-restart"), 4))
                _check_select_response(response, 4, "post-restart",
                                       stats)
                report.violations.extend(
                    _daemon_partition_violations(
                        client.stats().get("counters", {}),
                        "post-restart", quiescent=True))
                # The introspection plane must come back with the
                # process: a scrape burst against the restarted
                # daemon, same invariants as the mid-storm loop.
                for j in range(3):
                    if _scrape_once(client,
                                    f"post-restart scrape {j}",
                                    stats):
                        report.scrapes += 1
        except Exception as exc:
            report.violations.append(
                f"restarted daemon unusable: "
                f"{type(exc).__name__}: {exc}")

        phase("protocol garbage (must answer bad-request)")
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                client._file.write(b"this is not json\n")
                client._file.flush()
                raw = client._file.readline()
                answer = json.loads(raw) if raw else {}
                code = (answer.get("error") or {}).get("code")
                if answer.get("ok") is not False \
                        or code != "bad-request":
                    report.violations.append(
                        f"garbage line answered with {answer!r}")
        except Exception as exc:
            report.violations.append(
                f"garbage line killed the connection: "
                f"{type(exc).__name__}: {exc}")

        phase("graceful shutdown (drain)")
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                client.shutdown()
        except Exception as exc:
            report.violations.append(
                f"shutdown op failed: {type(exc).__name__}: {exc}")
        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=30)
            report.violations.append(
                "daemon did not exit within 30 s of shutdown")
        else:
            if rc != 0:
                report.violations.append(
                    f"drained daemon exited with rc={rc}: "
                    + _tail(log_path))
        if socket_path.exists():
            report.violations.append(
                "socket file left behind after drain")
        proc = None
        # Post-storm checks reuse the storm tally object; pick up any
        # violations they appended after the first copy.
        report.violations.extend(stats.violations[copied_violations:])
        report.counters = dict(
            (quiet or {}).get("counters", {})) if quiet else {}
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        report.wall_s = time.perf_counter() - t0
        # Mirror headline tallies into the ambient registry so a
        # traced soak exports them alongside the spans.
        registry = get_registry()
        registry.counter("chaos.daemon.requests").inc(
            report.requests_sent)
        registry.counter("chaos.daemon.violations").inc(
            len(report.violations))
        shutil.rmtree(tmp, ignore_errors=True)
    return report


def _tail(log_path: Path, lines: int = 12) -> str:
    try:
        return " | ".join(
            log_path.read_text(errors="replace").splitlines()[-lines:])
    except OSError:
        return "(no daemon log)"


def file_checksum_equal(a: Path, b: Path) -> bool:
    """Byte-equality of two files (missing file counts as unequal)."""
    try:
        return a.read_bytes() == b.read_bytes()
    except OSError:
        return False


# ---------------------------------------------------------------------------
# Adaptation soak: the online loop under poisoned feedback, drift
# storms, a deliberately-worse challenger, and mid-promotion SIGKILL
# ---------------------------------------------------------------------------

#: Degraded network reality for drift injection: heavy background
#: load, jitter, and halved link width shift the latency/bandwidth
#: trade-off enough to flip the fastest algorithm on a quarter of the
#: RI grid (so a model trained on the clean fabric accrues regret).
DRIFT_CONDITIONS_KW = {"background_load": 0.6, "latency_jitter": 1.0,
                       "link_width_factor": 0.5}


def synthesize_feedback(spec, selector, conditions=None, tick0: int = 0,
                        repeat: int = 1,
                        collectives=CHAOS_COLLECTIVES):
    """Runtime feedback rows for every feasible grid point: *selector*
    picks as if deployed (it sees the clean machine description), the
    "fabric" — optionally degraded by *conditions* — measures every
    algorithm.  Returns ``(records, next_tick)``.

    This is harness/simulation territory (it leans on
    :func:`measured_time`), which is why it lives here and not in
    ``repro.adapt``: the production loop only ever reads measured
    times out of feedback rows.
    """
    from ..adapt.feedback import FeedbackRecord
    from ..simcluster.conditions import machine_with_conditions
    from ..smpi.tuning import measured_time
    from .dataset import feasible_configs

    rows = []
    tick = tick0
    for _ in range(repeat):
        for coll in collectives:
            names = sorted(base.algorithm_names(coll))
            for nodes, ppn, msg in feasible_configs(spec, coll):
                machine = Machine(spec, nodes, ppn)
                fabric = machine_with_conditions(machine, conditions) \
                    if conditions is not None else machine
                chosen = selector.select(coll, machine, msg)
                times = {a: measured_time(fabric, coll, a, msg)
                         for a in names}
                rows.append(FeedbackRecord(
                    cluster=spec.name, collective=coll, nodes=nodes,
                    ppn=ppn, msg_size=msg, algorithm=chosen,
                    times=times, tick=tick))
                tick += 1
    return rows, tick


@dataclass
class AdaptChaosReport:
    """Everything one adaptation soak observed."""

    seed: int
    wall_s: float = 0.0
    phases: list[str] = field(default_factory=list)
    verdicts: list[str] = field(default_factory=list)
    reloads_observed: int = 0
    decision_log_identical: bool = False
    counters: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "wall_s": self.wall_s,
            "phases": list(self.phases),
            "verdicts": list(self.verdicts),
            "reloads_observed": self.reloads_observed,
            "decision_log_identical": self.decision_log_identical,
            "counters": dict(self.counters),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"seed:                 {self.seed}",
            f"wall:                 {self.wall_s:.2f} s",
            f"verdict sequence:     {' -> '.join(self.verdicts)}",
            f"daemon reloads seen:  {self.reloads_observed}",
            f"decision log replay:  "
            f"{'byte-identical' if self.decision_log_identical else 'DIVERGED'}",
        ]
        for phase in self.phases:
            lines.append(f"  phase: {phase}")
        for name in sorted(self.counters):
            if name.startswith(("adapt.", "guard.champion.",
                                "guard.challenger.")):
                lines.append(f"  {name:<36} {self.counters[name]}")
        for v in self.violations[:20]:
            lines.append(f"VIOLATION: {v}")
        if len(self.violations) > 20:
            lines.append(f"... {len(self.violations) - 20} more")
        lines.append("ADAPT CHAOS OK" if self.ok
                     else "ADAPT CHAOS FAILED")
        return "\n".join(lines)


def _guard_namespace_violations(counters: dict[str, int],
                                namespace: str,
                                context: str) -> list[str]:
    """The guard-ladder partition for one counter namespace."""
    g = {k: counters.get(f"{namespace}.{k}", 0)
         for k in ("queries", "invalid", "served_model", "remapped",
                   "ood_fallback", "breaker_fallback",
                   "error_fallback")}
    total = (g["invalid"] + g["served_model"] + g["remapped"]
             + g["ood_fallback"] + g["breaker_fallback"]
             + g["error_fallback"])
    if total != g["queries"]:
        return [f"{context}: {namespace} partition {total} != "
                f"queries {g['queries']} ({g})"]
    return []


def run_adapt_chaos(seed: int = 0,
                    progress: bool = False) -> AdaptChaosReport:
    """End-to-end soak of the online adaptation loop.

    Phases: train champion → boot the real daemon on its bundle →
    **poisoned feedback** (quarantined, loop survives) → stable
    feedback (no drift) → **drift storm** (degraded-fabric feedback →
    Page–Hinkley alarm → challenger trained → shadow win → promotion,
    observed by the daemon as a hot reload) → probation confirmation →
    **deliberately-worse challenger** (gate must reject it; then a
    forced promotion of it must auto-demote on probation regret, with
    the champion restored and the offender quarantined) →
    **mid-promotion SIGKILL** (a real subprocess dies between the
    bundle swap and the transaction commit; recovery restores the
    champion and quarantines the half-promoted challenger) → a
    **determinism replay** (the same feedback log folded twice from
    fresh state writes byte-identical decision logs) → quiescent
    counter-partition checks over ``adapt.*`` / ``serve.daemon.*`` /
    both shadow-guard namespaces → graceful drain.

    Violations are recorded, never raised.
    """
    import json
    import shutil
    import subprocess
    import sys
    import tempfile

    from ..adapt import (
        AdaptConfig,
        AdaptationLoop,
        FeedbackLog,
        VERDICTS,
    )
    from ..adapt.gate import ChampionChallengerGate
    from ..obs.telemetry import MetricsRegistry, use_telemetry
    from ..serve.client import DaemonClient
    from ..serve.reload import file_crc32
    from ..simcluster.conditions import NetworkConditions
    from .bundle import load_selector, save_selector
    from .dataset import TuningDataset

    report = AdaptChaosReport(seed=seed)
    t0 = time.perf_counter()
    tmp = Path(tempfile.mkdtemp(prefix="pml-adapt-chaos-"))
    registry = MetricsRegistry()
    proc = None
    client_stats = _StormStats()

    def phase(name: str) -> None:
        report.phases.append(name)
        if progress:
            print(f"  phase: {name}")

    def run_and_record(loop) -> Any:
        r = loop.run_once()
        report.verdicts.append(r.verdict)
        return r

    def expect(condition: bool, message: str) -> None:
        if not condition:
            report.violations.append(message)

    def probe_daemon(socket_path: Path, context: str) -> None:
        """A few valid selects — any client-visible exception is a
        violation (the whole point of the guarded rollout)."""
        try:
            with DaemonClient(socket_path, timeout_s=30.0) as client:
                response = client.select(_valid_queries(
                    _rng(seed, "adapt-probe", context), 4))
                _check_select_response(response, 4, context,
                                       client_stats)
        except Exception as exc:
            client_stats.violation(
                f"{context}: client-visible failure "
                f"{type(exc).__name__}: {exc}")

    def await_serving(socket_path: Path, crc: str | None,
                      context: str) -> None:
        """The daemon must converge onto the bundle with this CRC."""
        got = _poll_stats(
            socket_path,
            lambda s: s.get("snapshot", {}).get("checksum") == crc)
        if got is None:
            report.violations.append(
                f"{context}: daemon never converged onto checksum "
                f"{crc}")
        else:
            report.reloads_observed += 1

    try:
        with use_telemetry(get_tracer(), registry):
            spec = get_cluster(CHAOS_TRAIN_CLUSTER)
            conditions = NetworkConditions(**DRIFT_CONDITIONS_KW)
            bundle = tmp / "bundle.json"
            dataset_path = tmp / "dataset.jsonl"
            feedback_path = tmp / "feedback.jsonl"
            state_dir = tmp / "state"
            socket_path = tmp / "daemon.sock"
            ready = tmp / "ready.json"
            log_path = tmp / "daemon.log"

            phase("train champion bundle + dataset")
            dataset = collect_dataset(clusters=[spec],
                                      collectives=CHAOS_COLLECTIVES,
                                      progress=False)
            dataset.save(dataset_path)
            models = {coll: train_model(dataset, coll, seed=seed,
                                        params={"n_estimators": 8})
                      for coll in CHAOS_COLLECTIVES}
            champion = PretrainedSelector(models)
            save_selector(champion, bundle)
            champion_bytes = bundle.read_bytes()
            champion_crc = file_crc32(bundle)

            cfg = AdaptConfig(
                cluster=CHAOS_TRAIN_CLUSTER, bundle_path=bundle,
                feedback_path=feedback_path, state_dir=state_dir,
                dataset_path=dataset_path, window=600,
                model_params={"n_estimators": 8}, seed=seed,
                probation_rows=20)
            loop = AdaptationLoop(cfg)
            log = FeedbackLog(feedback_path)

            phase("boot daemon on champion")
            proc = _start_daemon(bundle, socket_path, state_dir / "srv",
                                 ready, log_path)
            boot = _wait_ready(ready, proc)
            if boot is None:
                report.violations.append(
                    "daemon never became ready: " + _tail(log_path))
                return report
            probe_daemon(socket_path, "post-boot")

            phase("poisoned feedback (quarantine, loop survives)")
            feedback_path.write_text("{ not json at all\n")
            r = run_and_record(loop)
            expect(r.verdict == "no_feedback",
                   f"poisoned feedback verdict {r.verdict!r}")
            expect(r.quarantined is not None
                   and Path(r.quarantined).exists(),
                   "poisoned feedback was not quarantined")
            expect(bundle.read_bytes() == champion_bytes,
                   "poisoned feedback disturbed the serving bundle")
            probe_daemon(socket_path, "post-poison")

            phase("stable feedback (no drift)")
            rows, tick = synthesize_feedback(spec, champion,
                                             conditions=None, tick0=0)
            log.append(rows)
            r = run_and_record(loop)
            expect(r.verdict == "stable",
                   f"stable feedback verdict {r.verdict!r}")
            expect(bundle.read_bytes() == champion_bytes,
                   "stable feedback swapped the bundle")

            phase("drift storm -> challenger -> promotion")
            rows, tick = synthesize_feedback(spec, champion,
                                             conditions=conditions,
                                             tick0=tick, repeat=2)
            log.append(rows)
            r = run_and_record(loop)
            expect(r.verdict == "promoted",
                   f"drift storm verdict {r.verdict!r}: {r.detail}")
            expect(bundle.read_bytes() != champion_bytes,
                   "promotion did not change the serving bundle")
            expect((state_dir / "champion.backup.json").exists(),
                   "promotion left no champion backup")
            promoted_crc = file_crc32(bundle)
            await_serving(socket_path, promoted_crc, "post-promotion")
            probe_daemon(socket_path, "post-promotion")
            try:
                lineage = load_selector(bundle).models[
                    CHAOS_COLLECTIVES[0]].metadata.get("lineage")
                expect(isinstance(lineage, dict)
                       and lineage.get("parent_checksum")
                       == champion_crc,
                       f"promoted bundle lineage wrong: {lineage!r}")
            except Exception as exc:
                report.violations.append(
                    f"promoted bundle unreadable: {exc}")

            phase("probation confirmation")
            promoted = load_selector(bundle)
            rows, tick = synthesize_feedback(spec, promoted,
                                             conditions=conditions,
                                             tick0=tick)
            log.append(rows)
            r = run_and_record(loop)
            expect(r.verdict == "confirmed",
                   f"probation verdict {r.verdict!r}: {r.detail}")
            confirmed_bytes = bundle.read_bytes()

            phase("deliberately-worse challenger: gate must reject")
            # Labels inverted (1/t): the model learns to pick the
            # *slowest* algorithm for every cell.
            from .dataset import CollectiveRecord
            inverted = TuningDataset([
                CollectiveRecord(
                    cluster=f.cluster, collective=f.collective,
                    nodes=f.nodes, ppn=f.ppn, msg_size=f.msg_size,
                    times={a: 1.0 / t for a, t in f.times.items()})
                for f in rows])
            bad = PretrainedSelector({
                coll: train_model(inverted, coll, seed=seed,
                                  params={"n_estimators": 4})
                for coll in CHAOS_COLLECTIVES})
            from ..adapt.gate import shadow_evaluate
            shadow = shadow_evaluate(promoted, bad, rows[-60:], spec)
            expect(not shadow.promote,
                   f"gate promoted a worse challenger: "
                   f"{shadow.to_dict()}")
            expect(bundle.read_bytes() == confirmed_bytes,
                   "rejected challenger still changed the bundle")

            phase("forced promotion of worse challenger -> auto-demote")
            gate = ChampionChallengerGate(bundle, state_dir,
                                          registry=registry)
            staged = tmp / "bad-challenger.json"
            save_selector(bad, staged)
            gate.promote(staged, tick=tick)
            # A gamed shadow evaluation would have recorded a rosy
            # promise; probation must catch the lie on real feedback.
            (state_dir / "adapt_state.json").write_text(json.dumps(
                {"phase": "probation", "fence_tick": tick - 1,
                 "baseline_regret": 0.0}, sort_keys=True,
                separators=(",", ":")) + "\n")
            bad_crc = file_crc32(bundle)
            await_serving(socket_path, bad_crc, "post-forced-promotion")
            probe_daemon(socket_path, "post-forced-promotion")
            bad_serving = load_selector(bundle)
            rows, tick = synthesize_feedback(spec, bad_serving,
                                             conditions=conditions,
                                             tick0=tick)
            log.append(rows)
            r = run_and_record(loop)
            expect(r.verdict == "demoted",
                   f"worse-promotion verdict {r.verdict!r}: {r.detail}")
            expect(bundle.read_bytes() == confirmed_bytes,
                   "auto-demotion did not restore the champion")
            expect(r.demoted is not None
                   and Path(r.demoted).exists(),
                   "demoted challenger was not quarantined")
            await_serving(socket_path, file_crc32(bundle),
                          "post-demotion")
            probe_daemon(socket_path, "post-demotion")

            phase("mid-promotion SIGKILL -> recovery")
            save_selector(bad, staged)
            src_dir = str(Path(__file__).resolve().parents[2])
            # The subprocess takes the adapt lock (like a real sidecar
            # run would), performs the real promote() up to and
            # including the bundle swap, then SIGKILLs itself — dying
            # with the transaction uncommitted *and* the lock held.
            script = (
                "import os, sys\n"
                f"sys.path.insert(0, {src_dir!r})\n"
                "import repro.adapt.gate as g\n"
                "from repro.core.resilience import FileLock\n"
                f"lock = FileLock({str(state_dir / 'adapt.lock')!r})\n"
                "lock.acquire()\n"
                "real_replace = g.os.replace\n"
                "def crash_replace(a, b):\n"
                "    real_replace(a, b)\n"
                "    os.kill(os.getpid(), 9)\n"
                "g.os.replace = crash_replace\n"
                f"gate = g.ChampionChallengerGate({str(bundle)!r}, "
                f"{str(state_dir)!r})\n"
                f"gate.promote({str(staged)!r}, tick=10 ** 6)\n")
            done = subprocess.run([sys.executable, "-c", script],
                                  env=_daemon_env(), capture_output=True,
                                  timeout=120)
            expect(done.returncode == -9,
                   f"SIGKILL subprocess exited rc={done.returncode}: "
                   f"{done.stderr.decode(errors='replace')[-200:]}")
            expect((state_dir / "promotion.json").exists(),
                   "killed promotion left no sentinel")
            expect((state_dir / "adapt.lock").exists(),
                   "killed promotion left no stale lock to break")
            r = run_and_record(loop)
            expect(r.verdict == "recovered",
                   f"post-SIGKILL verdict {r.verdict!r}: {r.detail}")
            expect(registry.counters().get("adapt.lock.broken", 0) >= 1,
                   "stale adapt lock was not broken on recovery")
            expect(bundle.read_bytes() == confirmed_bytes,
                   "recovery did not restore the champion bundle")
            expect(not (state_dir / "promotion.json").exists(),
                   "recovery left the promotion sentinel behind")
            expect(any(p.name.startswith("bundle.json.corrupt")
                       for p in tmp.iterdir()),
                   "half-promoted challenger was not quarantined")
            await_serving(socket_path, file_crc32(bundle),
                          "post-recovery")
            probe_daemon(socket_path, "post-recovery")

            phase("determinism replay (two fresh folds, same log)")
            digests = []
            for replica in ("a", "b"):
                rdir = tmp / f"replica-{replica}"
                rdir.mkdir()
                rbundle = rdir / "bundle.json"
                rbundle.write_bytes(champion_bytes)
                rcfg = AdaptConfig(
                    cluster=CHAOS_TRAIN_CLUSTER, bundle_path=rbundle,
                    feedback_path=feedback_path,
                    state_dir=rdir / "state",
                    dataset_path=dataset_path, window=600,
                    model_params={"n_estimators": 8}, seed=seed,
                    probation_rows=20)
                rloop = AdaptationLoop(rcfg)
                for _ in range(2):
                    rloop.run_once()
                digests.append((
                    (rdir / "state" / "adapt_decisions.jsonl")
                    .read_bytes(),
                    rbundle.read_bytes()))
            report.decision_log_identical = \
                digests[0][0] == digests[1][0]
            expect(report.decision_log_identical,
                   "decision logs diverged between identical replays")
            expect(digests[0][1] == digests[1][1],
                   "serving bundles diverged between identical replays")

            phase("counter partitions (adapt / guards / daemon)")
            counters = registry.counters()
            report.counters = dict(counters)
            runs = counters.get("adapt.runs", 0)
            verdict_sum = sum(
                counters.get(f"adapt.verdict.{v}", 0)
                for v in VERDICTS)
            expect(runs == verdict_sum and runs > 0,
                   f"adapt.runs {runs} != verdict sum {verdict_sum}")
            loads = counters.get("adapt.feedback.loads", 0)
            expect(loads == counters.get("adapt.feedback.ok", 0)
                   + counters.get("adapt.feedback.quarantined", 0),
                   "adapt.feedback.loads does not partition")
            evals = counters.get("adapt.gate.evaluations", 0)
            expect(evals == counters.get("adapt.gate.accepted", 0)
                   + counters.get("adapt.gate.rejected", 0),
                   "adapt.gate.evaluations does not partition")
            for ns in ("guard.champion", "guard.challenger"):
                report.violations.extend(_guard_namespace_violations(
                    counters, ns, "quiescent"))
            quiet = _poll_quiescent(socket_path, timeout_s=30.0)
            if quiet is None:
                report.violations.append(
                    "daemon stats unavailable at quiescence")
            else:
                report.violations.extend(_daemon_partition_violations(
                    quiet.get("counters", {}), "quiescent",
                    quiescent=True))

            phase("graceful shutdown (drain)")
            try:
                with DaemonClient(socket_path, timeout_s=30.0) as c:
                    c.shutdown()
                rc = proc.wait(timeout=30)
                expect(rc == 0,
                       f"drained daemon exited rc={rc}: "
                       + _tail(log_path))
                proc = None
            except Exception as exc:
                report.violations.append(
                    f"drain failed: {type(exc).__name__}: {exc}")

            report.violations.extend(client_stats.violations)
            expect(client_stats.invalid == 0,
                   f"{client_stats.invalid} probe queries answered "
                   f"invalid")
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
        report.wall_s = time.perf_counter() - t0
        ambient = get_registry()
        ambient.counter("chaos.adapt.phases").inc(len(report.phases))
        ambient.counter("chaos.adapt.violations").inc(
            len(report.violations))
        shutil.rmtree(tmp, ignore_errors=True)
    return report
