"""Chaos/soak harness for the runtime guard layer.

Fires tens of thousands of adversarial queries at a
:class:`~repro.smpi.guard.GuardedSelector` — fuzzed job shapes,
malformed inputs, far-out-of-distribution sizes, a fault-injected
inner selector (:class:`FlakySelector`, driven by a seeded
:class:`~repro.simcluster.conditions.FaultProfile`), corrupt-model
labels, and scripted failure storms that trip the circuit breaker —
and asserts the guard's invariants:

* nothing but typed :class:`~repro.smpi.heuristics.InvalidQueryError`
  ever escapes the guard, and only for malformed queries;
* every answered query returns a registry algorithm that is *feasible*
  for the queried communicator shape;
* the breaker completes at least one open → half-open → closed cycle
  across the scripted storms;
* the guard's health counters reconcile exactly with the query count.

Everything is a pure function of ``seed``: the breaker runs on a
query-tick clock, fault injection is seeded, and the query stream is
drawn from a seeded generator — so a failure reproduces exactly.
Exposed as ``pml-mpi chaos`` and wired into ``scripts/smoke.sh``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..hwmodel.registry import get_cluster
from ..simcluster.conditions import FaultProfile
from ..simcluster.machine import Machine
from ..smpi.collectives import base
from ..smpi.guard import (
    GuardedSelector,
    InvalidQueryError,
    extract_envelopes,
)
from ..obs.telemetry import get_registry, get_tracer
from ..smpi.heuristics import AlgorithmSelector
from .dataset import collect_dataset
from .inference import PretrainedSelector
from .resilience import CircuitBreaker, TransientCollectionError
from .training import train_model

#: Collectives the harness trains models for (the paper's pair).
CHAOS_COLLECTIVES = ("allgather", "alltoall")
#: Training cluster (small grid -> fast, cached collection).
CHAOS_TRAIN_CLUSTER = "RI"

#: A label no registry knows — what a corrupted model bundle emits.
CORRUPT_LABEL = "__corrupted_label__"


def _rng(seed: int, *parts: object) -> np.random.Generator:
    token = "|".join(str(p) for p in ("chaos", seed, *parts))
    return np.random.default_rng(zlib.crc32(token.encode()))


class FlakySelector(AlgorithmSelector):
    """Fault-injecting wrapper around the inner (model) selector.

    Per call, seeded on the call index: raise a transient failure
    (via the :class:`FaultProfile`), emit a corrupt label, emit a
    deliberately infeasible power-of-two-only algorithm, or answer
    honestly.  ``force_fail`` scripts a failure storm (every call
    raises) so the harness can trip the breaker deterministically.
    """

    def __init__(self, inner: AlgorithmSelector, faults: FaultProfile,
                 garbage_rate: float = 0.02,
                 infeasible_rate: float = 0.05, seed: int = 0) -> None:
        self.inner = inner
        self.faults = faults
        self.garbage_rate = garbage_rate
        self.infeasible_rate = infeasible_rate
        self.seed = seed
        self.calls = 0
        self.force_fail = False

    def _infeasible_name(self, collective: str) -> str | None:
        for name, algo in sorted(base.algorithms(collective).items()):
            if algo.requires_power_of_two:
                return name
        return None

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        i = self.calls
        self.calls += 1
        if self.force_fail or self.faults.attempt_fails(
                "chaos-select", attempt=i):
            raise TransientCollectionError(
                f"injected selector failure (call {i})")
        u = float(_rng(self.seed, "mode", i).uniform())
        if u < self.garbage_rate:
            return CORRUPT_LABEL
        if u < self.garbage_rate + self.infeasible_rate:
            bad = self._infeasible_name(collective)
            if bad is not None:
                return bad
        return self.inner.select(collective, machine, msg_size)


@dataclass
class _BogusMachine:
    """Adversarial stand-in probing the guard's input validation."""

    nodes: Any
    ppn: Any


@dataclass
class ChaosReport:
    """Outcome of one chaos run; ``ok`` is the pass/fail verdict."""

    queries: int
    seed: int
    wall_s: float = 0.0
    invalid_rejected: int = 0
    unguarded_exceptions: int = 0
    infeasible_served: int = 0
    breaker_cycles: int = 0
    counters: dict[str, int] = field(default_factory=dict)
    breaker_transitions: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "queries": self.queries,
            "seed": self.seed,
            "wall_s": self.wall_s,
            "invalid_rejected": self.invalid_rejected,
            "unguarded_exceptions": self.unguarded_exceptions,
            "infeasible_served": self.infeasible_served,
            "breaker_cycles": self.breaker_cycles,
            "counters": dict(self.counters),
            "breaker_transitions": dict(self.breaker_transitions),
            "violations": list(self.violations),
            "ok": self.ok,
        }

    def describe(self) -> str:
        lines = [
            f"queries:              {self.queries}",
            f"seed:                 {self.seed}",
            f"wall:                 {self.wall_s:.2f} s",
            f"invalid rejected:     {self.invalid_rejected}",
            f"unguarded exceptions: {self.unguarded_exceptions}",
            f"infeasible served:    {self.infeasible_served}",
            f"breaker cycles:       {self.breaker_cycles}",
        ]
        for name in sorted(self.counters):
            lines.append(f"  {name:<22} {self.counters[name]}")
        for key in sorted(self.breaker_transitions):
            lines.append(f"  breaker {key:<14} "
                         f"{self.breaker_transitions[key]}")
        for v in self.violations[:20]:
            lines.append(f"VIOLATION: {v}")
        if len(self.violations) > 20:
            lines.append(f"... {len(self.violations) - 20} more")
        lines.append("CHAOS OK" if self.ok else "CHAOS FAILED")
        return "\n".join(lines)


def build_chaos_selector(seed: int = 0,
                         failure_rate: float = 0.02,
                         garbage_rate: float = 0.02,
                         infeasible_rate: float = 0.05,
                         breaker_threshold: int = 5,
                         recovery_ticks: float = 150.0,
                         n_estimators: int = 20,
                         clock=None
                         ) -> tuple[GuardedSelector, FlakySelector]:
    """A guarded, fault-injected selector for the harness (and tests).

    Trains harness-sized models (``n_estimators`` trees) on the cached
    RI dataset, wraps them in a :class:`FlakySelector`, and guards the
    result with a breaker on the given ``clock`` (defaults to wall
    time; the harness passes a query-tick counter for determinism).
    """
    spec = get_cluster(CHAOS_TRAIN_CLUSTER)
    dataset = collect_dataset(clusters=[spec],
                              collectives=CHAOS_COLLECTIVES,
                              progress=False)
    models = {coll: train_model(dataset, coll, seed=seed,
                                params={"n_estimators": n_estimators})
              for coll in CHAOS_COLLECTIVES}
    pretrained = PretrainedSelector(models)
    flaky = FlakySelector(
        pretrained,
        FaultProfile(failure_rate=failure_rate, seed=seed),
        garbage_rate=garbage_rate, infeasible_rate=infeasible_rate,
        seed=seed)
    breaker_kwargs: dict[str, Any] = dict(
        failure_threshold=breaker_threshold,
        recovery_timeout_s=recovery_ticks)
    if clock is not None:
        breaker_kwargs["clock"] = clock
    # The guard wraps the *flaky* selector, which has no ``models``
    # attribute — lift the envelopes off the real pretrained models.
    guard = GuardedSelector(
        flaky, breaker=CircuitBreaker(**breaker_kwargs),
        envelopes=extract_envelopes(pretrained))
    return guard, flaky


def _invalid_query(rng: np.random.Generator, machine: Machine
                   ) -> tuple[str, Any, Any]:
    """One malformed (collective, machine, msg_size) query."""
    kind = int(rng.integers(5))
    if kind == 0:
        return "allgather", machine, -int(rng.integers(1, 1 << 20))
    if kind == 1:
        return "allgather", machine, 0
    if kind == 2:
        return "no_such_collective", machine, 1024
    if kind == 3:
        return "alltoall", _BogusMachine(nodes=0, ppn=8), 1024
    return "alltoall", _BogusMachine(
        nodes=2, ppn=-int(rng.integers(1, 64))), 4096


def run_chaos(queries: int = 10_000, seed: int = 0,
              failure_rate: float = 0.02, garbage_rate: float = 0.02,
              infeasible_rate: float = 0.05,
              invalid_fraction: float = 0.1, ood_fraction: float = 0.1,
              storm_length: int = 60, breaker_threshold: int = 5,
              recovery_ticks: float = 150.0,
              progress: bool = False) -> ChaosReport:
    """Soak the guard layer with *queries* adversarial queries.

    Two scripted failure storms (at 30% and 65% of the run) force the
    inner selector to fail on every call for ``storm_length`` queries,
    driving the breaker open; the query-tick clock then walks it
    through half-open recovery.  Returns a :class:`ChaosReport`; the
    run itself never raises on guard violations — they are recorded so
    CI can print all of them.
    """
    if queries < 1:
        raise ValueError("queries must be >= 1")
    tick = [0.0]
    guard, flaky = build_chaos_selector(
        seed=seed, failure_rate=failure_rate, garbage_rate=garbage_rate,
        infeasible_rate=infeasible_rate,
        breaker_threshold=breaker_threshold,
        recovery_ticks=recovery_ticks, clock=lambda: tick[0])
    report = ChaosReport(queries=queries, seed=seed)

    # Query machines: in-distribution RI shapes, remap-bait odd shapes
    # (p=6/12 invite power-of-two-only predictions), and far-OOD giants.
    ri = get_cluster(CHAOS_TRAIN_CLUSTER)
    rome = get_cluster("Rome")
    machines = [Machine(ri, 2, 4), Machine(ri, 2, 8),
                Machine(rome, 3, 2), Machine(rome, 3, 4),
                Machine(rome, 6, 2)]
    ood_machines = [Machine(get_cluster("Frontera"), 2048, 16),
                    Machine(get_cluster("Frontera"), 512, 56)]

    storms = []
    for frac in (0.30, 0.65):
        start = int(queries * frac)
        storms.append((start, start + storm_length))

    t0 = time.perf_counter()
    expected_invalid = 0
    tracer = get_tracer()
    soak = tracer.start_span("chaos.soak", queries=queries, seed=seed) \
        if tracer.enabled else None
    for i in range(queries):
        tick[0] = float(i)
        flaky.force_fail = any(a <= i < b for a, b in storms)
        rng = _rng(seed, "query", i)
        u = float(rng.uniform())
        collective = CHAOS_COLLECTIVES[int(rng.integers(
            len(CHAOS_COLLECTIVES)))]
        if flaky.force_fail:
            # Storm queries must reach the inner selector to trip the
            # breaker, so keep them well-formed and in-distribution.
            machine, msg_size = machines[0], int(rng.integers(1, 1 << 16))
        elif u < invalid_fraction:
            expected_invalid += 1
            collective, machine, msg_size = _invalid_query(
                rng, machines[int(rng.integers(len(machines)))])
            try:
                guard.select(collective, machine, msg_size)
            except InvalidQueryError:
                report.invalid_rejected += 1
            except Exception as exc:
                report.unguarded_exceptions += 1
                report.violations.append(
                    f"query {i}: invalid input leaked "
                    f"{type(exc).__name__}: {exc}")
            else:
                report.violations.append(
                    f"query {i}: invalid input accepted "
                    f"({collective!r}, msg={msg_size!r})")
            continue
        elif u < invalid_fraction + ood_fraction:
            machine = ood_machines[int(rng.integers(len(ood_machines)))]
            msg_size = int(rng.integers(1 << 24, 1 << 28)) \
                if rng.uniform() < 0.5 else int(rng.integers(1, 1 << 20))
        else:
            machine = machines[int(rng.integers(len(machines)))]
            msg_size = int(2 ** rng.uniform(0.0, 21.0))
        try:
            algo = guard.select(collective, machine, msg_size)
        except Exception as exc:
            report.unguarded_exceptions += 1
            report.violations.append(
                f"query {i}: unguarded {type(exc).__name__}: {exc}")
            continue
        p = machine.nodes * machine.ppn
        try:
            feasible = base.is_feasible(collective, algo, p)
        except KeyError:
            feasible = False
        if not feasible:
            report.infeasible_served += 1
            report.violations.append(
                f"query {i}: served infeasible/unknown {algo!r} for "
                f"{collective} at p={p}")
        if progress and (i + 1) % 1000 == 0:
            print(f"  {i + 1}/{queries} queries, "
                  f"{len(report.violations)} violations")

    report.wall_s = time.perf_counter() - t0
    report.counters = dict(guard.counters)
    report.breaker_transitions = guard.breaker.transition_counts()
    report.breaker_cycles = guard.breaker.cycles()
    if soak is not None:
        soak.attributes["violations"] = len(report.violations)
        tracer.finish_span(soak)
    # Mirror the guard's per-instance counters into the ambient
    # registry so a traced chaos run exports them alongside the spans.
    registry = get_registry()
    for name, value in report.counters.items():
        registry.counter(f"chaos.guard.{name}").inc(value)

    # -- cross-cutting invariants ---------------------------------------
    c = guard.counters
    partition = (c["invalid"] + c["served_model"] + c["remapped"]
                 + c["ood_fallback"] + c["breaker_fallback"]
                 + c["error_fallback"])
    if partition != c["queries"] or c["queries"] != queries:
        report.violations.append(
            f"counters do not reconcile: partition={partition}, "
            f"queries counter={c['queries']}, fired={queries}")
    if c["invalid"] != expected_invalid:
        report.violations.append(
            f"invalid counter {c['invalid']} != expected "
            f"{expected_invalid}")
    if storms and storms[0][1] < queries and report.breaker_cycles < 1:
        report.violations.append(
            "breaker never completed an open->half-open->closed cycle")
    return report
