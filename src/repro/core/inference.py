"""Online inference (paper Fig. 4): constant-time tuning-table
generation for a new cluster from the pre-trained model.

``PretrainedSelector`` answers per-call queries (one model inference);
``generate_tuning_table`` runs the compile-time flow — extract the new
cluster's hardware features, batch-infer the full (nodes, ppn, msg)
grid in one ``predict`` call, and emit the JSON tuning table the MPI
runtime will look up in O(1).
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..hwmodel.specs import ClusterSpec
from ..obs.telemetry import get_registry, get_tracer
from ..simcluster.machine import Machine
from ..smpi.heuristics import AlgorithmSelector, validate_query
from ..smpi.tuning import TuningTable
from .features import feature_block, feature_matrix, feature_vector
from .training import TrainedModel

log = logging.getLogger(__name__)


class PretrainedSelector(AlgorithmSelector):
    """Algorithm selector backed by pre-trained per-collective models."""

    def __init__(self, models: dict[str, TrainedModel]) -> None:
        for collective, model in models.items():
            if model.collective != collective:
                raise ValueError(
                    f"model for {model.collective} registered under "
                    f"{collective}")
        self.models = dict(models)

    def select(self, collective: str, machine: Machine,
               msg_size: int) -> str:
        validate_query(collective, machine, msg_size)
        try:
            model = self.models[collective]
        except KeyError:
            raise KeyError(
                f"no pre-trained model for {collective}; have "
                f"{', '.join(self.models)}") from None
        X = feature_vector(machine.spec, machine.nodes, machine.ppn,
                           msg_size)[None, :]
        return str(model.predict(X)[0])

    def select_batch(self, queries: list[tuple[str, Machine, int]]
                     ) -> list[str]:
        """Vectorized batch selection: one ``predict_batch`` call per
        distinct collective instead of one model inference per query.

        Element-wise identical to the scalar loop — same validation
        (first invalid query raises), same per-row feature vectors,
        same packed-tree predictions.
        """
        for collective, machine, msg_size in queries:
            validate_query(collective, machine, msg_size)
            if collective not in self.models:
                raise KeyError(
                    f"no pre-trained model for {collective}; have "
                    f"{', '.join(self.models)}")
        out: list[str | None] = [None] * len(queries)
        by_collective: dict[str, list[int]] = {}
        for i, (collective, _, _) in enumerate(queries):
            by_collective.setdefault(collective, []).append(i)
        for collective, idx in by_collective.items():
            rows = [(queries[i][1].spec, queries[i][1].nodes,
                     queries[i][1].ppn, queries[i][2]) for i in idx]
            predictions = self.models[collective].predict_batch(
                feature_matrix(rows))
            for i, algo in zip(idx, predictions):
                out[i] = str(algo)
        return out  # type: ignore[return-value]

    def select_block(self, spec: ClusterSpec, collectives: np.ndarray,
                     nodes: np.ndarray, ppn: np.ndarray,
                     msg_size: np.ndarray) -> np.ndarray:
        """Columnar selection over prevalidated rows for one cluster:
        one :func:`feature_block` build and one ``predict_batch`` per
        distinct collective, no per-row Python work.  Predictions are
        identical to :meth:`select_batch` (same float64 feature values,
        same packed-tree traversal); like it, raises ``KeyError`` when
        any row's collective has no model."""
        out = np.empty(len(msg_size), dtype=object)
        for collective in dict.fromkeys(collectives.tolist()):
            if collective not in self.models:
                raise KeyError(
                    f"no pre-trained model for {collective}; have "
                    f"{', '.join(self.models)}")
        for collective in self.models:
            rows = collectives == collective
            if not rows.any():
                continue
            X = feature_block(spec, nodes[rows], ppn[rows],
                              msg_size[rows])
            out[rows] = self.models[collective].predict_batch(X)
        return out

    def describe(self) -> str:
        families = {c: m.family for c, m in self.models.items()}
        return f"PretrainedSelector({families})"


@dataclass
class InferenceReport:
    """Outcome of one compile-time tuning-table generation."""

    table: TuningTable
    n_configs: int
    wall_seconds: float


def generate_tuning_table(selector: PretrainedSelector, spec: ClusterSpec,
                          collectives: tuple[str, ...] | None = None,
                          node_counts: tuple[int, ...] | None = None,
                          ppn_values: tuple[int, ...] | None = None,
                          msg_sizes: tuple[int, ...] | None = None
                          ) -> InferenceReport:
    """Batch inference over a cluster's configuration grid.

    Defaults to the cluster's own sampled grid (Table I), which is also
    what the paper's framework enumerates at MPI compile time.  The
    wall-clock time of this call is the *entire* per-cluster startup
    overhead of PML-MPI (Fig. 7's flat line).
    """
    if collectives is None:
        collectives = tuple(selector.models)
    # `is None` (not truthiness): an explicitly-passed empty grid must
    # raise "no valid configurations", never silently fall back to the
    # cluster's full default grid.
    if node_counts is None:
        node_counts = spec.node_counts
    if ppn_values is None:
        ppn_values = spec.ppn_values
    if msg_sizes is None:
        msg_sizes = spec.msg_sizes

    t0 = time.perf_counter()
    tracer = get_tracer()
    with tracer.span("tune.generate_table", cluster=spec.name) as top:
        table = TuningTable(cluster=spec.name)
        n_configs = 0
        configs = [(nodes, ppn, msg)
                   for nodes in node_counts
                   for ppn in ppn_values if nodes * ppn >= 2
                   for msg in msg_sizes]
        if not configs:
            raise ValueError(f"no valid configurations for {spec.name}")
        rows = [(spec, nodes, ppn, msg) for nodes, ppn, msg in configs]
        X = feature_matrix(rows)
        for collective in collectives:
            model = selector.models[collective]
            with tracer.span("tune.predict", collective=collective,
                             configs=len(configs)):
                predictions = model.predict_batch(X)
            for (nodes, ppn, msg), algo in zip(configs, predictions):
                # TuningTable.add validates the predicted name, so a
                # degraded model emitting garbage labels fails loudly
                # here (and the setup_cluster ladder degrades to its
                # fallback) instead of shipping a nonsensical table.
                table.add(collective, nodes, ppn, msg, str(algo))
            n_configs += len(configs)
        table.validate()
        if top is not None:
            top.attributes["entries"] = n_configs
    get_registry().gauge("tune.table_entries").set(n_configs)
    wall = time.perf_counter() - t0
    log.info("generated tuning table for %s: %d entries in %.3fs",
             spec.name, n_configs, wall)
    return InferenceReport(table=table, n_configs=n_configs,
                           wall_seconds=wall)


def inference_latency(selector: PretrainedSelector, spec: ClusterSpec,
                      repeats: int = 5) -> float:
    """Median wall time of a full tuning-table generation (seconds) —
    the quantity plotted for the proposed framework in Figs. 1/7."""
    times = []
    for _ in range(repeats):
        report = generate_tuning_table(selector, spec)
        times.append(report.wall_seconds)
    return float(np.median(times))
