"""Feature-vector assembly and top-k selection (paper Section V-A).

The full feature set has 14 entries: 3 MPI-specific (#nodes, PPN,
message size) + 11 hardware features from
:mod:`repro.hwmodel.extract`.  The paper ranks them by Random-Forest
Gini importance and keeps the top 5 per collective to avoid
overfitting; :func:`select_top_k` reproduces that step.
"""

from __future__ import annotations

import numpy as np

from ..hwmodel.extract import HARDWARE_FEATURE_NAMES, cluster_features
from ..hwmodel.specs import ClusterSpec

#: MPI-specific feature names, canonical order.
MPI_FEATURE_NAMES: tuple[str, ...] = ("num_nodes", "ppn", "msg_size")

#: Full 14-feature name list (MPI-specific first, as in the paper).
ALL_FEATURE_NAMES: tuple[str, ...] = MPI_FEATURE_NAMES + \
    HARDWARE_FEATURE_NAMES

#: Number of features kept after importance ranking (paper Section V-A).
DEFAULT_TOP_K = 5


def feature_vector(spec: ClusterSpec, nodes: int, ppn: int,
                   msg_size: int) -> np.ndarray:
    """The 14-entry feature vector of one benchmark configuration.

    Hardware features go through the full probe->parse extraction path.
    """
    hw = cluster_features(spec).as_vector()
    return np.array([float(nodes), float(ppn), float(msg_size)] + hw)


def feature_matrix(rows: list[tuple[ClusterSpec, int, int, int]]
                   ) -> np.ndarray:
    """Stack feature vectors for many configurations; hardware features
    are extracted once per distinct cluster.

    The extraction memo is keyed on the spec *object*, not its name:
    two specs sharing a name but differing in hardware (e.g. a
    degraded-NetParams variant) must not alias each other's feature
    rows.  Distinct-but-equal spec objects extract once each, which is
    only a speed matter, never a correctness one.
    """
    cache: dict[int, list[float]] = {}
    out = np.empty((len(rows), len(ALL_FEATURE_NAMES)))
    for i, (spec, nodes, ppn, msg) in enumerate(rows):
        hw = cache.get(id(spec))
        if hw is None:
            hw = cache[id(spec)] = cluster_features(spec).as_vector()
        out[i, :3] = (float(nodes), float(ppn), float(msg))
        out[i, 3:] = hw
    return out


def feature_block(spec: ClusterSpec, nodes: np.ndarray, ppn: np.ndarray,
                  msg_size: np.ndarray) -> np.ndarray:
    """Columnar :func:`feature_matrix`: one cluster, whole-array MPI
    columns, hardware features extracted once and broadcast.  Produces
    float64 values identical to the per-row path (both go through the
    same int -> float64 conversion)."""
    hw = cluster_features(spec).as_vector()
    out = np.empty((len(nodes), len(ALL_FEATURE_NAMES)))
    out[:, 0] = nodes
    out[:, 1] = ppn
    out[:, 2] = msg_size
    out[:, 3:] = hw
    return out


def feature_indices(names: tuple[str, ...] | list[str]) -> np.ndarray:
    """Column indices of the named features in the canonical order."""
    idx = []
    for name in names:
        try:
            idx.append(ALL_FEATURE_NAMES.index(name))
        except ValueError:
            raise KeyError(
                f"unknown feature {name!r}; known: "
                f"{', '.join(ALL_FEATURE_NAMES)}") from None
    return np.asarray(idx, dtype=np.int64)


def select_top_k(importances: np.ndarray, k: int = DEFAULT_TOP_K,
                 names: tuple[str, ...] = ALL_FEATURE_NAMES
                 ) -> tuple[str, ...]:
    """Names of the k most important features, importance-descending.

    Ties broken by canonical feature order for determinism.
    """
    importances = np.asarray(importances)
    if len(importances) != len(names):
        raise ValueError(
            f"{len(importances)} importances for {len(names)} features")
    if not 1 <= k <= len(names):
        raise ValueError(f"k={k} out of range for {len(names)} features")
    order = np.argsort(-importances, kind="stable")[:k]
    return tuple(names[i] for i in order)
