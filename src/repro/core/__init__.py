"""PML-MPI core: dataset collection, splits, offline training, online
inference, the compile-time framework, and startup-overhead models."""

from .bundle import (
    dump_trained_model,
    load_selector,
    load_trained_model,
    save_selector,
)
from .dataset import (
    CollectiveRecord,
    TuningDataset,
    benchmark_config,
    collect_dataset,
    feasible_configs,
)
from .features import (
    ALL_FEATURE_NAMES,
    DEFAULT_TOP_K,
    MPI_FEATURE_NAMES,
    feature_matrix,
    feature_vector,
    select_top_k,
)
from .framework import PmlMpiFramework, offline_train
from .inference import (
    InferenceReport,
    PretrainedSelector,
    generate_tuning_table,
    inference_latency,
)
from .overhead import (
    acclaim_core_hours,
    microbenchmark_core_hours,
    overhead_curves,
    pml_core_hours,
)
from .splits import (
    DEFAULT_HELDOUT_CLUSTERS,
    cluster_split,
    node_split,
    random_split,
    split_dataset,
)
from .training import (
    MODEL_FAMILIES,
    TrainedModel,
    compare_models,
    feature_importance_report,
    rank_features,
    train_model,
)

__all__ = [
    "ALL_FEATURE_NAMES",
    "DEFAULT_HELDOUT_CLUSTERS",
    "DEFAULT_TOP_K",
    "MODEL_FAMILIES",
    "MPI_FEATURE_NAMES",
    "CollectiveRecord",
    "InferenceReport",
    "PmlMpiFramework",
    "PretrainedSelector",
    "TrainedModel",
    "TuningDataset",
    "acclaim_core_hours",
    "benchmark_config",
    "cluster_split",
    "collect_dataset",
    "compare_models",
    "dump_trained_model",
    "load_selector",
    "load_trained_model",
    "save_selector",
    "feasible_configs",
    "feature_importance_report",
    "feature_matrix",
    "feature_vector",
    "generate_tuning_table",
    "inference_latency",
    "microbenchmark_core_hours",
    "node_split",
    "offline_train",
    "overhead_curves",
    "pml_core_hours",
    "random_split",
    "rank_features",
    "select_top_k",
    "split_dataset",
    "train_model",
]
