"""The end-to-end PML-MPI framework (paper Figs. 3 and 4).

Offline (done once, by the library vendor)::

    dataset  = collect_dataset()              # Table I campaign
    selector = offline_train(dataset)         # pre-trained models

Online (at MPI-library compile time on each new cluster)::

    framework = PmlMpiFramework(selector, table_dir="/etc/mpi/tuning")
    runtime_selector = framework.setup_cluster(spec)

``setup_cluster`` implements Fig. 4 exactly: if a tuning table for the
cluster already exists it is loaded and the ML path is bypassed;
otherwise hardware features are extracted, the pre-trained model is
batch-inferred over the configuration grid, and the resulting JSON
table is stored for every subsequent compilation.
"""

from __future__ import annotations

from pathlib import Path

from ..hwmodel.specs import ClusterSpec
from ..smpi.collectives.base import COLLECTIVES
from ..smpi.tuning import TableSelector, TuningTable
from .dataset import TuningDataset
from .inference import PretrainedSelector, generate_tuning_table
from .training import TrainedModel, train_model


def offline_train(dataset: TuningDataset, family: str = "rf",
                  collectives: tuple[str, ...] = COLLECTIVES,
                  tune: bool = False, seed: int = 0) -> PretrainedSelector:
    """Train the shipped per-collective models (offline stage, Fig. 3)."""
    models: dict[str, TrainedModel] = {}
    for collective in collectives:
        models[collective] = train_model(dataset, collective,
                                         family=family, tune=tune,
                                         seed=seed)
    return PretrainedSelector(models)


class PmlMpiFramework:
    """Compile-time tuning-table management (online stage, Fig. 4)."""

    def __init__(self, selector: PretrainedSelector,
                 table_dir: str | Path) -> None:
        self.selector = selector
        self.table_dir = Path(table_dir)
        self.table_dir.mkdir(parents=True, exist_ok=True)

    def table_path(self, cluster_name: str) -> Path:
        safe = cluster_name.replace(" ", "_").replace("/", "_")
        return self.table_dir / f"{safe}.tuning.json"

    def has_table(self, cluster_name: str) -> bool:
        return self.table_path(cluster_name).exists()

    def setup_cluster(self, spec: ClusterSpec,
                      force_regenerate: bool = False) -> TableSelector:
        """Fig. 4: existing table -> load it; otherwise extract features,
        infer, persist, and return the constant-time table selector."""
        path = self.table_path(spec.name)
        if path.exists() and not force_regenerate:
            table = TuningTable.load(path)
            if table.cluster != spec.name:
                raise ValueError(
                    f"table at {path} belongs to {table.cluster!r}, "
                    f"expected {spec.name!r}")
            return TableSelector(table)
        report = generate_tuning_table(self.selector, spec)
        report.table.save(path)
        return TableSelector(report.table)
