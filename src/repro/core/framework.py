"""The end-to-end PML-MPI framework (paper Figs. 3 and 4).

Offline (done once, by the library vendor)::

    dataset  = collect_dataset()              # Table I campaign
    selector = offline_train(dataset)         # pre-trained models

Online (at MPI-library compile time on each new cluster)::

    framework = PmlMpiFramework(selector, table_dir="/etc/mpi/tuning")
    runtime_selector = framework.setup_cluster(spec)

``setup_cluster`` implements Fig. 4 with a degradation ladder, because
it runs on machines the vendor never saw:

1. **cached-table** — a valid tuning table already exists; load it and
   bypass the ML path (the paper's fast path).
2. **regenerated** — no table, or the cached one is corrupt/stale/from
   another cluster (it is quarantined to ``*.corrupt``, never deleted);
   extract hardware features, batch-infer the grid, and persist the
   table atomically — retrying transient failures.
3. **heuristic-fallback** — regeneration keeps failing; hand back the
   hardware-oblivious MVAPICH default heuristic so the MPI build still
   completes with a working (if suboptimal) selector.

The rung taken, retry counts and quarantined files are recorded in a
:class:`~repro.core.resilience.HealthReport` (``last_report``), and an
inter-process file lock serializes concurrent compile-time setups on
the same table directory.  ``doctor_directory`` is the audit half:
validate every artifact in a directory (the ``pml-mpi doctor``
subcommand).
"""

from __future__ import annotations

import logging
from pathlib import Path

from ..hwmodel.specs import ClusterSpec
from ..obs.telemetry import get_registry, get_tracer
from ..obs.trace_io import load_trace
from ..simcluster.conditions import FaultProfile
from ..smpi.collectives.base import COLLECTIVES
from ..smpi.heuristics import AlgorithmSelector, MvapichDefaultSelector
from ..smpi.tuning import TableSelector, TuningTable
from .bundle import load_selector
from .dataset import TuningDataset
from .inference import PretrainedSelector, generate_tuning_table
from .resilience import (
    RUNG_CACHED,
    RUNG_FALLBACK,
    RUNG_REGENERATED,
    ArtifactCheck,
    ArtifactError,
    CorruptArtifactError,
    FileLock,
    HealthReport,
    RetryPolicy,
    StaleArtifactError,
    TransientCollectionError,
    quarantine,
)
from .training import TrainedModel, train_model

log = logging.getLogger(__name__)


def offline_train(dataset: TuningDataset, family: str = "rf",
                  collectives: tuple[str, ...] = COLLECTIVES,
                  tune: bool = False, seed: int = 0,
                  n_jobs: int | None = None) -> PretrainedSelector:
    """Train the shipped per-collective models (offline stage, Fig. 3).

    ``n_jobs`` fans ensemble fitting (and tuning) over a process pool;
    results are bit-identical to a serial run."""
    models: dict[str, TrainedModel] = {}
    for collective in collectives:
        models[collective] = train_model(dataset, collective,
                                         family=family, tune=tune,
                                         seed=seed, n_jobs=n_jobs)
    return PretrainedSelector(models)


class PmlMpiFramework:
    """Compile-time tuning-table management (online stage, Fig. 4)."""

    def __init__(self, selector: PretrainedSelector,
                 table_dir: str | Path,
                 retry: RetryPolicy | None = None,
                 fallback: AlgorithmSelector | None = None,
                 lock_timeout_s: float = 30.0) -> None:
        self.selector = selector
        self.table_dir = Path(table_dir)
        self.table_dir.mkdir(parents=True, exist_ok=True)
        self.retry = retry if retry is not None else \
            RetryPolicy(max_attempts=3, base_delay_s=0.02)
        self.fallback = fallback if fallback is not None else \
            MvapichDefaultSelector()
        self.lock_timeout_s = lock_timeout_s
        #: HealthReport of the most recent ``setup_cluster`` call.
        self.last_report: HealthReport | None = None

    def _safe_name(self, cluster_name: str) -> str:
        return cluster_name.replace(" ", "_").replace("/", "_")

    def table_path(self, cluster_name: str) -> Path:
        return self.table_dir / f"{self._safe_name(cluster_name)}.tuning.json"

    def lock_path(self, cluster_name: str) -> Path:
        return self.table_dir / f".{self._safe_name(cluster_name)}.lock"

    def has_table(self, cluster_name: str) -> bool:
        return self.table_path(cluster_name).exists()

    def setup_cluster(self, spec: ClusterSpec,
                      force_regenerate: bool = False,
                      faults: FaultProfile | None = None
                      ) -> AlgorithmSelector:
        """Fig. 4 with graceful degradation; never raises on bad
        artifacts or transient failures — see the module docstring for
        the ladder.  The full :class:`HealthReport` is available as
        ``last_report`` (or use :meth:`setup_cluster_with_report`)."""
        selector, _ = self.setup_cluster_with_report(
            spec, force_regenerate=force_regenerate, faults=faults)
        return selector

    def setup_cluster_with_report(
            self, spec: ClusterSpec, force_regenerate: bool = False,
            faults: FaultProfile | None = None
    ) -> tuple[AlgorithmSelector, HealthReport]:
        """The ladder itself, returning ``(selector, health report)``."""
        report = HealthReport(cluster=spec.name)
        self.last_report = report
        with FileLock(self.lock_path(spec.name),
                      timeout_s=self.lock_timeout_s):
            selector = self._run_ladder(spec, force_regenerate, faults,
                                        report)
        return selector, report

    # -- ladder rungs ----------------------------------------------------

    def _run_ladder(self, spec: ClusterSpec, force_regenerate: bool,
                    faults: FaultProfile | None,
                    report: HealthReport) -> AlgorithmSelector:
        path = self.table_path(spec.name)
        with get_tracer().span("tune.setup_cluster",
                               cluster=spec.name) as span:
            if path.exists() and not force_regenerate:
                selector = self._try_cached(spec, path, report)
                if selector is not None:
                    report.rung = RUNG_CACHED
                    return self._finish_rung(report, span, selector)
            selector = self._try_regenerate(spec, path, faults, report)
            if selector is not None:
                report.rung = RUNG_REGENERATED
                return self._finish_rung(report, span, selector)
            report.rung = RUNG_FALLBACK
            log.warning("setup for %s degraded to heuristic fallback "
                        "after %d attempts", spec.name, report.attempts)
            return self._finish_rung(report, span, self.fallback)

    @staticmethod
    def _finish_rung(report: HealthReport, span,
                     selector: AlgorithmSelector) -> AlgorithmSelector:
        """Record which ladder rung won on the span and the registry."""
        if span is not None:
            span.attributes["rung"] = report.rung
        get_registry().counter(f"tune.rung.{report.rung}").inc()
        return selector

    def _try_cached(self, spec: ClusterSpec, path: Path,
                    report: HealthReport) -> TableSelector | None:
        """Rung 1: a cached table, trusted only after validation.

        A mismatched cluster name, checksum failure or structural
        problem quarantines the file (``*.corrupt``) instead of
        crashing the MPI build — the very scenario Fig. 4 cannot
        afford to brick."""
        try:
            table = TuningTable.load(path)
            if table.cluster != spec.name:
                raise StaleArtifactError(
                    f"table at {path} belongs to {table.cluster!r}, "
                    f"expected {spec.name!r}")
            return TableSelector(table)
        except ArtifactError as exc:
            log.warning("cached table for %s rejected: %s",
                        spec.name, exc)
            report.record_error(str(exc))
            report.record_quarantine(quarantine(path))
            return None

    def _try_regenerate(self, spec: ClusterSpec, path: Path,
                        faults: FaultProfile | None,
                        report: HealthReport) -> TableSelector | None:
        """Rung 2: regenerate from the pretrained model with retries."""
        attempt_box = [0]

        def generate() -> TuningTable:
            attempt_box[0] += 1
            if faults is not None and faults.attempt_fails(
                    "setup_cluster", spec.name, attempt=attempt_box[0]):
                raise TransientCollectionError(
                    f"injected transient failure generating table for "
                    f"{spec.name} (attempt {attempt_box[0]})")
            return generate_tuning_table(self.selector, spec).table

        def note(attempt: int, exc: BaseException) -> None:
            report.record_error(f"attempt {attempt}: {exc}")

        try:
            table = self.retry.call(
                generate, retry_on=(TransientCollectionError,),
                on_retry=note)
        except TransientCollectionError:
            report.attempts = attempt_box[0]
            return None
        except Exception as exc:  # degraded model, bad grid, ...
            report.attempts = attempt_box[0]
            report.record_error(
                f"table generation failed unrecoverably: {exc}")
            return None
        report.attempts = attempt_box[0]
        try:
            table.save(path)
        except OSError as exc:
            # The selector still works this build; only persistence
            # for the *next* compilation was lost.
            report.record_error(f"could not persist table: {exc}")
        return TableSelector(table)


# ---------------------------------------------------------------------------
# Artifact doctor (the ``pml-mpi doctor`` subcommand)
# ---------------------------------------------------------------------------

def diagnose_artifact(path: str | Path) -> ArtifactCheck:
    """Validate one on-disk artifact, classifying it by shape.

    Never raises: every problem is folded into the returned
    :class:`ArtifactCheck` status (``ok`` / ``corrupt`` / ``stale`` /
    ``quarantined`` / ``orphan-tmp`` / ``unknown``).
    """
    path = Path(path)
    name = path.name
    if ".corrupt" in name:
        return ArtifactCheck(str(path), "quarantined", "quarantined",
                             "kept for post-mortem")
    if name.endswith(".tmp"):
        return ArtifactCheck(str(path), "tmp", "orphan-tmp",
                             "leftover from an interrupted write")
    if name.endswith(".lock"):
        return ArtifactCheck(str(path), "lock", "ok",
                             "setup serialization lock")

    if name.endswith(".tuning.json"):
        kind, loader = "tuning-table", \
            lambda: TuningTable.load(path).validate()
    elif name.endswith((".jsonl.gz", ".gz")):
        kind, loader = "dataset-cache", lambda: TuningDataset.load(path)
    elif name.endswith(".jsonl") and "decisions" in name:
        # Decision logs (active collection, select-batch, adapt) are
        # headerless sorted-key JSON lines, replayed byte-for-byte by
        # determinism checks — not traces, which carry a __meta__ row.
        kind, loader = "decision-log", lambda: _load_decision_log(path)
    elif name.endswith(".jsonl"):
        kind, loader = "trace", lambda: load_trace(path)
    elif name.endswith(".json"):
        kind, loader = "bundle", lambda: load_selector(path)
    else:
        return ArtifactCheck(str(path), "unknown", "unknown",
                             "not a PML-MPI artifact")
    try:
        artifact = loader()
    except StaleArtifactError as exc:
        return ArtifactCheck(str(path), kind, "stale", str(exc))
    except (ArtifactError, FileNotFoundError) as exc:
        return ArtifactCheck(str(path), kind, "corrupt", str(exc))
    detail = _trace_slo_detail(artifact) if kind == "trace" else ""
    return ArtifactCheck(str(path), kind, "ok", detail)


def _load_decision_log(path: Path) -> list[dict]:
    """Strict decision-log load: every line must be one JSON object."""
    import json

    rows = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise CorruptArtifactError(
                f"decision log {path}: line {lineno} is not JSON "
                f"({exc})") from exc
        if not isinstance(row, dict):
            raise CorruptArtifactError(
                f"decision log {path}: line {lineno} is not a JSON "
                f"object")
        rows.append(row)
    return rows


def _trace_slo_detail(trace) -> str:
    """SLO compliance summary for a valid trace (empty when the trace
    carries none of the serving plane's instruments).  Violations are
    surfaced in the check detail, not as errors: a faithfully recorded
    bad day is a healthy artifact."""
    from ..obs.slo import DEFAULT_SLOS, evaluate_compliance
    histograms = {name: {int(e): c for e, c in h["buckets"].items()}
                  for name, h in trace.histograms().items()}
    rows = [evaluate_compliance(spec, trace.counters(), histograms)
            for spec in DEFAULT_SLOS]
    rows = [row for row in rows if row["total"]]
    return "; ".join(
        f"SLO {row['name']} "
        f"{'met' if row['met'] else 'VIOLATED'} "
        f"({row['compliance']:.4f} vs {row['objective']:.3f})"
        for row in rows)


def doctor_directory(directory: str | Path,
                     bundle: str | Path | None = None) -> HealthReport:
    """Validate every artifact under *directory* (non-recursive).

    Returns a :class:`HealthReport` whose ``checks`` list one entry per
    file; ``healthy`` is False when anything is corrupt, stale, or a
    leftover temp file.  With *bundle* set, additionally cross-checks
    every tuning table in the directory against that model bundle
    (:func:`cross_check_deployment`) and folds the results in.
    """
    directory = Path(directory)
    report = HealthReport()
    for path in sorted(directory.iterdir()):
        if path.is_dir():
            continue
        check = diagnose_artifact(path)
        report.checks.append(check)
        if check.status in ("corrupt", "stale", "orphan-tmp"):
            report.record_error(f"{check.path}: {check.status}"
                                + (f" — {check.detail}" if check.detail
                                   else ""))
        if check.status == "quarantined":
            report.record_quarantine(check.path)
    if bundle is not None:
        cross = cross_check_deployment(bundle, directory)
        report.checks.extend(cross.checks)
        report.errors.extend(cross.errors)
        report.counters.update(cross.counters)
    return report


def _model_label_space(model: TrainedModel) -> frozenset[str] | None:
    """The label set the fitted classifier can ever emit, when the
    estimator exposes it (``classes_``); ``None`` when it does not."""
    classes = getattr(model.model, "classes_", None)
    if classes is None:
        return None
    try:
        return frozenset(str(c) for c in classes)
    except TypeError:
        return None


def cross_check_deployment(bundle_path: str | Path,
                           table_dir: str | Path) -> HealthReport:
    """Consistency check across a deployment: model bundle vs. the
    tuning tables generated from it (``pml-mpi doctor --bundle``).

    A table that loads cleanly can still be inconsistent with the
    shipped bundle — built for a collective the bundle has no model
    for, filed under the wrong cluster name, or containing algorithm
    labels the fitted classifier could never have emitted (a tampered
    or hand-edited table).  Each table gets one ``cross-check``
    :class:`ArtifactCheck`; every inconsistency is also recorded as an
    error, so ``healthy`` reflects the whole deployment.
    """
    bundle_path = Path(bundle_path)
    table_dir = Path(table_dir)
    report = HealthReport()
    try:
        selector = load_selector(bundle_path)
    except (ArtifactError, FileNotFoundError) as exc:
        report.checks.append(ArtifactCheck(
            str(bundle_path), "bundle", "corrupt", str(exc)))
        report.record_error(f"{bundle_path}: cannot cross-check "
                            f"against bundle — {exc}")
        return report
    report.checks.append(ArtifactCheck(str(bundle_path), "bundle", "ok"))
    label_spaces = {coll: _model_label_space(model)
                    for coll, model in selector.models.items()}

    tables = sorted(table_dir.glob("*.tuning.json"))
    report.counters["cross_checked_tables"] = len(tables)
    for path in tables:
        problems: list[str] = []
        try:
            table = TuningTable.load(path)
            table.validate()
        except ArtifactError:
            # doctor_directory already reports the load failure; the
            # cross-check only covers tables that load.
            continue
        expected_stem = path.name[:-len(".tuning.json")]
        if table.cluster.replace(" ", "_").replace("/", "_") \
                != expected_stem:
            problems.append(
                f"filed as {expected_stem!r} but table belongs to "
                f"cluster {table.cluster!r}")
        for coll, configs in table.entries.items():
            if coll not in selector.models:
                problems.append(
                    f"table has {coll} entries but the bundle has no "
                    f"{coll} model (models: "
                    f"{', '.join(sorted(selector.models))})")
                continue
            labels = label_spaces.get(coll)
            foreign = sorted(
                {algo for bps in configs.values() for _, algo in bps}
                - labels) if labels is not None else []
            if foreign:
                problems.append(
                    f"{coll} entries use labels the bundled model "
                    f"cannot emit: {', '.join(foreign)}")
        status = "ok" if not problems else "stale"
        check = ArtifactCheck(str(path), "cross-check", status,
                              "; ".join(problems))
        report.checks.append(check)
        for problem in problems:
            report.record_error(f"{path}: {problem}")
    return report
