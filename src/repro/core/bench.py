"""Reproducible micro-benchmark harness for the framework's hot paths.

Times the operations that dominate PML-MPI's end-to-end cost —
ensemble training, batch inference, compile-time tuning-table
generation, runtime table lookup, and batched selection serving (both
the scalar-ladder batch and the columnar block pipeline) — plus the
``active_collect`` entry, which records the simulated core-hours the
active-learning acquisition loop needs to match the exhaustive
sweep's accuracy — and writes a machine-readable
``BENCH_results.json`` with the schema::

    { "<benchmark name>": {"wall_s": <float>, "config": {...}} }

Each entry's ``config`` records the parameters that make the number
interpretable (rows, trees, jobs, lookup counts, observed ratios), so
two runs of the harness can be compared without reading the code.

The harness never *asserts* speedups — on a single-core container a
process pool is pure overhead — it records what it measured.  What it
*does* verify is correctness: the parallel forest fit must produce
bit-identical predictions and importances to the serial one, and the
lookup benchmark records the per-lookup cost ratio between a small and
a large table (near 1.0 when lookup is independent of stored-config
count, as the bisect + memoized-nearest design guarantees).
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import numpy as np

from ..hwmodel.registry import get_cluster
from ..obs.telemetry import get_tracer
from ..smpi.collectives import base
from ..smpi.tuning import TuningTable
from .dataset import collect_dataset
from .inference import generate_tuning_table
from .resilience import atomic_write_text

#: Runtime lookups timed against each table (the paper's O(1) claim).
DEFAULT_LOOKUPS = 1_000_000
#: Lookups in ``--quick`` mode (smoke tests, CI).
QUICK_LOOKUPS = 50_000

#: Cluster / collective the data-dependent benchmarks draw from; RI is
#: the smallest campaign in the registry, so collection stays cheap.
BENCH_CLUSTER = "RI"
BENCH_COLLECTIVE = "allgather"


def _time_once(fn) -> float:
    """One wall-clock timing of ``fn()`` with collection suspended —
    the ``timeit`` convention — so a generational GC pause landing
    inside the run doesn't masquerade as a slower hot path.  Starts
    from a freshly collected heap and restores the collector after."""
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time over *repeats* calls (noise-robust)."""
    return min(_time_once(fn) for _ in range(repeats))


def _best_of_paired(fns: list, repeats: int) -> list[float]:
    """Minimum wall time per closure, timed *interleaved*: each round
    times every closure once, in order, after one untimed warm-up pass.

    Ratios between entries (speedup claims) are what this protects —
    timing all repeats of A and then all of B lets a CPU-frequency or
    cache-state drift between the two phases skew A/B; round-robin
    sampling exposes both to the same machine state."""
    for fn in fns:
        fn()  # warm-up: lazy imports, memoized tables, branch caches
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            best[i] = min(best[i], _time_once(fn))
    return best


def _bench_dataset():
    return collect_dataset(clusters=[get_cluster(BENCH_CLUSTER)],
                           collectives=(BENCH_COLLECTIVE,),
                           use_cache=False)


def _grow_rows(X: np.ndarray, y: np.ndarray,
               target_rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Tile a small campaign matrix up to *target_rows* rows — the
    fit benchmark needs enough work for a process pool to be worth
    engaging at all (42 rows never is)."""
    if len(X) >= target_rows:
        return X, y
    reps = -(-target_rows // len(X))  # ceil division
    return (np.tile(X, (reps, 1))[:target_rows],
            np.tile(y, reps)[:target_rows])


def _forest_benchmarks(X: np.ndarray, y: np.ndarray, jobs: int,
                       repeats: int, n_estimators: int,
                       predict_rows: int,
                       fit_rows: int) -> dict[str, dict]:
    from ..ml.forest import RandomForestClassifier
    from ..ml.parallel import resolve_n_jobs

    X_fit, y_fit = _grow_rows(X, y, fit_rows)

    def fit(n_jobs):
        rf = RandomForestClassifier(n_estimators=n_estimators,
                                    random_state=0, n_jobs=n_jobs)
        rf.fit(X_fit, y_fit)
        return rf

    serial_s = _best_of(lambda: fit(1), repeats)
    # The adaptive gate caps workers at the core count and the
    # available work; when it resolves to 1 the "parallel" fit runs
    # the *identical* serial code path (no pool), so timing it again
    # would only measure noise — the speedup is 1.0 by construction.
    effective_jobs = resolve_n_jobs(
        jobs, work_units=len(X_fit) * n_estimators)
    if effective_jobs > 1:
        parallel_s = _best_of(lambda: fit(jobs), repeats)
    else:
        parallel_s = serial_s

    rf_serial, rf_parallel = fit(1), fit(jobs)
    bit_identical = bool(
        np.array_equal(rf_serial.predict(X_fit), rf_parallel.predict(X_fit))
        and np.allclose(rf_serial.feature_importances_,
                        rf_parallel.feature_importances_))

    reps = max(1, -(-predict_rows // len(X)))  # ceil division
    X_big = np.tile(X, (reps, 1))[:predict_rows]
    predict_s = _best_of(lambda: rf_serial.predict(X_big), repeats)

    base_cfg = {"n_estimators": n_estimators, "n_rows": int(len(X_fit))}
    return {
        "forest_fit_serial": {
            "wall_s": serial_s,
            "config": {**base_cfg, "n_jobs": 1},
        },
        "forest_fit_parallel": {
            "wall_s": parallel_s,
            "config": {**base_cfg, "n_jobs": jobs,
                       "effective_jobs": effective_jobs,
                       "pool_engaged": effective_jobs > 1,
                       "bit_identical_to_serial": bit_identical,
                       "speedup_vs_serial": serial_s / parallel_s
                       if parallel_s > 0 else float("inf")},
        },
        "forest_predict_batch": {
            "wall_s": predict_s,
            "config": {"n_estimators": n_estimators,
                       "n_rows": int(len(X)),
                       "predict_rows": int(len(X_big))},
        },
    }


def _table_generation_benchmark(selector, repeats: int) -> dict[str, dict]:
    spec = get_cluster(BENCH_CLUSTER)
    report = None

    def gen():
        nonlocal report
        report = generate_tuning_table(selector, spec)

    wall = _best_of(gen, repeats)
    return {
        "table_generation": {
            "wall_s": wall,
            "config": {"cluster": spec.name,
                       "collective": BENCH_COLLECTIVE,
                       "n_configs": report.n_configs},
        },
    }


def _synthetic_table(n_nodes: int, n_ppn: int,
                     n_breakpoints: int) -> TuningTable:
    """A table with ``n_nodes * n_ppn`` configs of *n_breakpoints*
    breakpoints each, cycling through real algorithm names."""
    algos = sorted(base.algorithm_names(BENCH_COLLECTIVE))
    table = TuningTable(cluster="bench")
    for i in range(n_nodes):
        for j in range(n_ppn):
            nodes, ppn = 2 ** i, 2 ** j
            for k in range(n_breakpoints):
                table.add(BENCH_COLLECTIVE, nodes, ppn, 2 ** (k + 3),
                          algos[(i + j + k) % len(algos)])
    return table


def _lookup_benchmark(lookups: int, repeats: int) -> dict[str, dict]:
    small = _synthetic_table(2, 2, 8)        # 4 configs
    large = _synthetic_table(16, 16, 32)     # 256 configs
    # Query mix: exact hits, nearest-config misses, and a spread of
    # message sizes (including past the last breakpoint).
    rng = np.random.default_rng(0)
    queries = [(int(2 ** rng.integers(0, 6)), int(2 ** rng.integers(0, 6)),
                int(2 ** rng.integers(0, 40)))
               for _ in range(512)]

    def run(table: TuningTable) -> float:
        table.lookup(BENCH_COLLECTIVE, 2, 2, 64)  # freeze outside timing
        lookup = table.lookup
        n_q = len(queries)

        def body():
            for i in range(lookups):
                nodes, ppn, msg = queries[i % n_q]
                lookup(BENCH_COLLECTIVE, nodes, ppn, msg)

        return _best_of(body, repeats)

    small_s, large_s = run(small), run(large)
    small_cfgs = sum(len(c) for c in small.entries.values())
    large_cfgs = sum(len(c) for c in large.entries.values())
    return {
        "table_lookup": {
            "wall_s": large_s,
            "config": {
                "lookups": lookups,
                "stored_configs": large_cfgs,
                "small_table_configs": small_cfgs,
                "small_table_wall_s": small_s,
                # ~1.0 when lookup cost is independent of table size;
                # would approach large_cfgs / small_cfgs (64x) if
                # lookups scanned the stored configs linearly.
                "per_lookup_ratio_large_vs_small":
                    large_s / small_s if small_s > 0 else float("inf"),
            },
        },
    }


def _batch_selection_benchmark(selector, repeats: int, n_queries: int,
                               scalar_queries: int) -> dict[str, dict]:
    """Single-query guard loop vs one cold service batch over the same
    query stream — the serving layer's headline number.

    The scalar side is timed on a prefix of *scalar_queries* queries
    (a full 10k scalar pass would dominate the harness wall time) and
    compared per-query; ``identical_to_scalar`` verifies the batch
    decisions match the scalar ladder on that prefix.
    """
    from ..serve import SelectionQuery, SelectionService
    from ..simcluster.machine import Machine
    from ..smpi.guard import GuardedSelector

    spec = get_cluster(BENCH_CLUSTER)
    rng = np.random.default_rng(0)
    shapes = [(int(nodes), int(ppn))
              for nodes in spec.node_counts
              for ppn in spec.ppn_values if nodes * ppn >= 2]
    queries: list[SelectionQuery] = []
    machines: dict[tuple[int, int], Machine] = {}
    for _ in range(n_queries):
        nodes, ppn = shapes[int(rng.integers(len(shapes)))]
        exp = int(rng.integers(6, 21))
        msg = int(2 ** exp + rng.integers(0, 2 ** exp))
        queries.append(SelectionQuery(BENCH_COLLECTIVE, nodes, ppn, msg))
        if (nodes, ppn) not in machines:
            machines[(nodes, ppn)] = Machine(spec, nodes, ppn)
    prefix = queries[:scalar_queries]

    def scalar() -> list[str]:
        guard = GuardedSelector(selector)
        return [guard.select(q.collective,
                             machines[(q.nodes, q.ppn)], q.msg_size)
                for q in prefix]

    def batch():
        # Cold service each repeat: the memo never carries over, so
        # the number reflects dedup + vectorized inference, not a
        # pre-warmed cache.  quantize=False keeps decisions
        # query-exact for the identity check below.
        service = SelectionService(GuardedSelector(selector), spec,
                                   cache_size=len(queries),
                                   quantize=False)
        return service.select_batch(queries)

    def columnar():
        # Same cold-service discipline as ``batch`` so the two numbers
        # are directly comparable; the block path never builds a
        # per-row Python object between validation and scatter.
        service = SelectionService(GuardedSelector(selector), spec,
                                   cache_size=len(queries),
                                   quantize=False)
        return service.select_block(queries).to_decisions()

    scalar_s = _best_of(scalar, repeats)
    # The headline claim is the batch->columnar *ratio*, so those two
    # closures are timed interleaved (see _best_of_paired) rather than
    # in separate phases.
    batch_s, columnar_s = _best_of_paired([batch, columnar],
                                          max(repeats, 5))
    identical = ([d.algorithm for d in batch()[:len(prefix)]]
                 == scalar())
    columnar_identical = bool(identical and [
        (d.algorithm, d.action, d.detail, d.cached)
        for d in columnar()
    ] == [
        (d.algorithm, d.action, d.detail, d.cached)
        for d in batch()
    ])
    scalar_per_query = scalar_s / len(prefix)
    batch_per_query = batch_s / len(queries)
    columnar_per_query = columnar_s / len(queries)
    return {
        "serve_batch_columnar": {
            "wall_s": columnar_s,
            "config": {
                "cluster": spec.name,
                "collective": BENCH_COLLECTIVE,
                "n_queries": len(queries),
                "serve_batch_wall_s": batch_s,
                # Identity is checked two ways: columnar decisions are
                # tuple-equal to the scalar-ladder batch on all rows,
                # and that batch matches the raw guard loop on the
                # scalar prefix.
                "identical_to_scalar": columnar_identical,
                "speedup_vs_serve_batch":
                    batch_per_query / columnar_per_query
                    if columnar_per_query > 0 else float("inf"),
                "speedup_vs_scalar":
                    scalar_per_query / columnar_per_query
                    if columnar_per_query > 0 else float("inf"),
            },
        },
        "serve_batch": {
            "wall_s": batch_s,
            "config": {
                "cluster": spec.name,
                "collective": BENCH_COLLECTIVE,
                "n_queries": len(queries),
                "distinct_keys": len({(q.nodes, q.ppn, q.msg_size)
                                      for q in queries}),
                "scalar_queries": len(prefix),
                "scalar_wall_s": scalar_s,
                "identical_to_scalar": bool(identical),
                "speedup_batch_vs_scalar":
                    scalar_per_query / batch_per_query
                    if batch_per_query > 0 else float("inf"),
            },
        },
    }


def _flight_recorder_benchmark(selector, repeats: int, n_queries: int,
                               block: int = 64) -> dict[str, dict]:
    """Columnar serving with the flight recorder enabled vs disabled.

    The observability acceptance bar: recording one structured event
    per served block must cost < 5 % on the hot path.  The stream is
    served in daemon-sized blocks (one ``select_block`` — and thus one
    ``record()`` — per *block*, not per query), and the two sides are
    timed interleaved so machine noise hits both equally.  Overhead is
    reported as ``on/off - 1``; small negative values are timer noise.
    """
    from ..obs.live import FlightRecorder, use_recorder
    from ..serve import SelectionQuery, SelectionService
    from ..smpi.guard import GuardedSelector

    spec = get_cluster(BENCH_CLUSTER)
    rng = np.random.default_rng(1)
    shapes = [(int(nodes), int(ppn))
              for nodes in spec.node_counts
              for ppn in spec.ppn_values if nodes * ppn >= 2]
    queries = []
    for _ in range(n_queries):
        nodes, ppn = shapes[int(rng.integers(len(shapes)))]
        exp = int(rng.integers(6, 21))
        msg = int(2 ** exp + rng.integers(0, 2 ** exp))
        queries.append(SelectionQuery(BENCH_COLLECTIVE, nodes, ppn, msg))
    blocks = [queries[i:i + block]
              for i in range(0, len(queries), block)]

    def serve_blocks():
        # Cold service per repeat, warm across blocks — the daemon's
        # shape: one long-lived service, many small batches.
        service = SelectionService(GuardedSelector(selector), spec,
                                   cache_size=len(queries),
                                   quantize=False)
        for chunk in blocks:
            service.select_block(chunk)

    def enabled():
        with use_recorder(FlightRecorder(capacity=256)):
            serve_blocks()

    on_s, off_s = _best_of_paired([enabled, serve_blocks],
                                  max(repeats, 5))
    overhead = (on_s / off_s - 1.0) if off_s > 0 else 0.0
    return {
        "flight_recorder_overhead": {
            "wall_s": on_s,
            "config": {
                "cluster": spec.name,
                "collective": BENCH_COLLECTIVE,
                "n_queries": len(queries),
                "block": block,
                "blocks": len(blocks),
                "capacity": 256,
                "base_wall_s": off_s,
                "overhead_frac": overhead,
            },
        },
    }


def _split_accuracy(train_ds, test_ds, collectives) -> float:
    """Test accuracy of per-collective models fit on *train_ds*.

    Records are trained in canonical (cluster, collective, nodes, ppn,
    msg) order so exhaustive and active campaigns — which benchmark
    the same configs in different orders — fit identical forests."""
    from .dataset import TuningDataset
    from .training import train_model

    train_ds = TuningDataset(sorted(
        train_ds.records,
        key=lambda r: (r.cluster, r.collective, r.nodes, r.ppn,
                       r.msg_size)))
    correct = total = 0
    for collective in collectives:
        test = [r for r in test_ds.records
                if r.collective == collective]
        if not test:
            continue
        total += len(test)
        if not any(r.collective == collective
                   for r in train_ds.records):
            continue
        model = train_model(train_ds, collective, family="rf", seed=0)
        sub = TuningDataset(test)
        predicted = model.predict(sub.feature_matrix())
        correct += int(np.sum(predicted == sub.labels()))
    return correct / total if total else 0.0


def _active_collect_benchmark(quick: bool) -> dict[str, dict]:
    """Core-hours-to-accuracy of the active-learning acquisition loop
    vs the exhaustive sweep it replaces (the paper's growing-overhead
    argument, quantified).

    Both campaigns are fully deterministic (simulated measurements,
    seeded acquisition), so the recorded ratios are machine-independent
    facts about the loop, not timings — ``wall_s`` records how long
    the acquisition run itself took on this machine.
    """
    from ..active import (
        ActiveConfig,
        Candidate,
        dataset_core_hours,
        run_active_collection,
    )
    from .splits import split_dataset

    collectives = (("allgather",) if quick
                   else ("allgather", "alltoall"))
    clusters = [get_cluster("RI"), get_cluster("Ray")]
    full = collect_dataset(clusters=clusters, collectives=collectives,
                           use_cache=False)
    train_ds, test_ds = split_dataset(full, "random")
    pool = [Candidate(r.cluster, r.collective, r.nodes, r.ppn,
                      r.msg_size) for r in train_ds.records]

    result = None

    def acquire():
        nonlocal result
        result = run_active_collection(
            clusters=clusters, collectives=collectives,
            config=ActiveConfig(), pool=pool, use_cache=False)

    wall = _time_once(acquire)
    exhaustive_ch = dataset_core_hours(train_ds.records)
    exhaustive_acc = _split_accuracy(train_ds, test_ds, collectives)
    active_acc = _split_accuracy(result.dataset, test_ds, collectives)
    return {
        "active_collect": {
            "wall_s": wall,
            "config": {
                "clusters": [s.name for s in clusters],
                "collectives": list(collectives),
                "split": "random",
                "pool_configs": len(pool),
                "benchmarked": len(result.schedule),
                "rounds": result.rounds,
                "stop_reason": result.stop_reason,
                "exhaustive_core_hours": exhaustive_ch,
                "active_core_hours": result.core_hours,
                # The headline pair the CI gate holds the loop to:
                # spend <= half the core-hours, stay within 2 % of the
                # exhaustive sweep's test accuracy.
                "core_hours_ratio": result.core_hours / exhaustive_ch
                if exhaustive_ch > 0 else float("inf"),
                "saving_vs_exhaustive": exhaustive_ch / result.core_hours
                if result.core_hours > 0 else float("inf"),
                "exhaustive_accuracy": exhaustive_acc,
                "active_accuracy": active_acc,
                "accuracy_gap": exhaustive_acc - active_acc,
            },
        },
    }


def run_benchmarks(quick: bool = False, jobs: int = 4, repeats: int = 3,
                   lookups: int | None = None,
                   progress: bool = False) -> dict[str, dict]:
    """Run every benchmark; returns the results mapping."""
    if lookups is None:
        lookups = QUICK_LOOKUPS if quick else DEFAULT_LOOKUPS
    n_estimators = 16 if quick else 100
    predict_rows = 5_000 if quick else 50_000
    #: Rows the fit benchmark is grown to: large enough that, on a
    #: multi-core machine, the adaptive gate engages the pool and the
    #: parallel fit genuinely wins.
    fit_rows = 256 if quick else 2_048
    repeats = max(1, repeats if not quick else 1)

    def note(msg: str) -> None:
        if progress:
            print(f"[bench] {msg}")

    note(f"collecting {BENCH_CLUSTER}/{BENCH_COLLECTIVE} dataset")
    dataset = _bench_dataset()
    sub = dataset.filter(collective=BENCH_COLLECTIVE)
    X, y = sub.feature_matrix(), sub.labels()

    from .framework import offline_train
    note("training the bench selector")
    selector = offline_train(dataset, family="rf",
                             collectives=(BENCH_COLLECTIVE,),
                             n_jobs=jobs)

    tracer = get_tracer()
    results: dict[str, dict] = {}
    note(f"forest fit/predict ({n_estimators} trees, jobs={jobs})")
    with tracer.span("bench.forest", trees=n_estimators, jobs=jobs):
        results.update(_forest_benchmarks(X, y, jobs, repeats,
                                          n_estimators, predict_rows,
                                          fit_rows))
    note("tuning-table generation")
    with tracer.span("bench.table_generation"):
        results.update(_table_generation_benchmark(selector, repeats))
    note(f"table lookup ({lookups} lookups)")
    with tracer.span("bench.lookup", lookups=lookups):
        results.update(_lookup_benchmark(lookups, repeats))
    n_queries = 2_000 if quick else 10_000
    scalar_queries = 500 if quick else 2_000
    note(f"batched selection service ({n_queries} queries)")
    with tracer.span("bench.serve_batch", queries=n_queries):
        results.update(_batch_selection_benchmark(
            selector, repeats, n_queries, scalar_queries))
    note("flight-recorder overhead (columnar blocks)")
    with tracer.span("bench.flight_recorder", queries=n_queries):
        results.update(_flight_recorder_benchmark(
            selector, repeats, n_queries))
    note("active-learning collection vs exhaustive sweep")
    with tracer.span("bench.active_collect"):
        results.update(_active_collect_benchmark(quick))
    return results


def validate_bench_results(results: object) -> dict[str, dict]:
    """Check the ``name -> {wall_s, config}`` schema; raises
    ``ValueError`` with the offending entry on any violation."""
    if not isinstance(results, dict) or not results:
        raise ValueError("bench results must be a non-empty JSON object")
    for name, entry in results.items():
        if not isinstance(name, str):
            raise ValueError(f"benchmark name {name!r} is not a string")
        if not isinstance(entry, dict):
            raise ValueError(f"{name}: entry is not an object")
        extra = set(entry) - {"wall_s", "config"}
        if extra or set(entry) != {"wall_s", "config"}:
            raise ValueError(
                f"{name}: entry keys {sorted(entry)} != "
                f"['config', 'wall_s']")
        wall = entry["wall_s"]
        if isinstance(wall, bool) or not isinstance(wall, (int, float)) \
                or not wall >= 0:
            raise ValueError(f"{name}: wall_s {wall!r} is not a "
                             f"non-negative number")
        if not isinstance(entry["config"], dict):
            raise ValueError(f"{name}: config is not an object")
    return results


def validate_bench_file(path: str | Path) -> dict[str, dict]:
    """Load and schema-check a ``BENCH_results.json``."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"bench results are not valid JSON: {exc}") \
            from None
    return validate_bench_results(payload)


def write_bench_results(results: dict[str, dict],
                        path: str | Path) -> Path:
    """Validate and atomically write the results file."""
    validate_bench_results(results)
    return atomic_write_text(Path(path),
                             json.dumps(results, indent=2) + "\n")
