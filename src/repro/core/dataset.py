"""Dataset collection: the paper's Table I benchmark campaign, run on
the simulator.

For every cluster in the registry and every (collective, #nodes, PPN,
message size) in its sampled grid, all candidate algorithms are measured
(OMB-style averaged iterations, :func:`repro.smpi.tuning.measured_time`)
and the fastest becomes the record's label.  Configurations with fewer
than two ranks, or whose buffers do not fit node memory, are dropped —
the same holes that keep the paper's per-cluster sample counts slightly
below the full grid.

Collection over 18 clusters takes a couple of minutes, so results are
cached as gzipped JSON-lines under ``~/.cache/pml_mpi`` (override with
``PML_MPI_CACHE`` or the ``cache_dir`` argument).
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..hwmodel.registry import all_clusters, get_cluster
from ..hwmodel.specs import ClusterSpec
from ..simcluster.machine import Machine
from ..smpi.collectives import base
from ..smpi.collectives.base import COLLECTIVES
from ..smpi.tuning import measured_time
from .features import ALL_FEATURE_NAMES, feature_vector

#: Bump when the cost model or grids change incompatibly.
DATASET_VERSION = "1"


@dataclass(frozen=True)
class CollectiveRecord:
    """One benchmarked configuration with per-algorithm timings."""

    cluster: str
    collective: str
    nodes: int
    ppn: int
    msg_size: int
    times: dict[str, float]  # algorithm -> measured seconds

    @property
    def label(self) -> str:
        """The fastest algorithm (the classification target)."""
        return min(self.times, key=self.times.__getitem__)

    @property
    def best_time(self) -> float:
        return min(self.times.values())


@dataclass
class TuningDataset:
    """A list of records plus feature-matrix assembly."""

    records: list[CollectiveRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    # -- filtering -------------------------------------------------------
    def filter(self, collective: str | None = None,
               clusters: set[str] | None = None,
               max_nodes: int | None = None,
               min_nodes: int | None = None) -> "TuningDataset":
        """Subset by collective, cluster membership, or node range."""
        out = []
        for r in self.records:
            if collective is not None and r.collective != collective:
                continue
            if clusters is not None and r.cluster not in clusters:
                continue
            if max_nodes is not None and r.nodes > max_nodes:
                continue
            if min_nodes is not None and r.nodes < min_nodes:
                continue
            out.append(r)
        return TuningDataset(out)

    def clusters(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.cluster, None)
        return tuple(seen)

    def counts_by_cluster(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.cluster] = out.get(r.cluster, 0) + 1
        return out

    def label_distribution(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + 1
        return dict(sorted(out.items()))

    # -- matrix form -------------------------------------------------------
    def feature_matrix(self) -> np.ndarray:
        """(n, 14) matrix in :data:`ALL_FEATURE_NAMES` order."""
        cache: dict[str, np.ndarray] = {}
        out = np.empty((len(self.records), len(ALL_FEATURE_NAMES)))
        for i, r in enumerate(self.records):
            if r.cluster not in cache:
                cache[r.cluster] = feature_vector(
                    get_cluster(r.cluster), 1, 1, 0)[3:]
            out[i, :3] = (float(r.nodes), float(r.ppn), float(r.msg_size))
            out[i, 3:] = cache[r.cluster]
        return out

    def labels(self) -> np.ndarray:
        return np.array([r.label for r in self.records])

    # -- (de)serialization -------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with gzip.open(path, "wt") as fh:
            for r in self.records:
                fh.write(json.dumps({
                    "cluster": r.cluster, "collective": r.collective,
                    "nodes": r.nodes, "ppn": r.ppn,
                    "msg_size": r.msg_size, "times": r.times,
                }) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TuningDataset":
        records = []
        with gzip.open(Path(path), "rt") as fh:
            for line in fh:
                d = json.loads(line)
                records.append(CollectiveRecord(
                    cluster=d["cluster"], collective=d["collective"],
                    nodes=int(d["nodes"]), ppn=int(d["ppn"]),
                    msg_size=int(d["msg_size"]),
                    times={k: float(v) for k, v in d["times"].items()}))
        return cls(records)


def feasible_configs(spec: ClusterSpec, collective: str
                     ) -> list[tuple[int, int, int]]:
    """The (nodes, ppn, msg) grid of one cluster after feasibility
    filtering (>= 2 ranks; buffers fit memory for every algorithm)."""
    out = []
    algos = list(base.algorithms(collective).values())
    for nodes in spec.node_counts:
        for ppn in spec.ppn_values:
            p = nodes * ppn
            if p < 2:
                continue
            machine = Machine(spec, nodes, ppn)
            for msg in spec.msg_sizes:
                need = max(a.buffer_bytes(p, msg) for a in algos)
                if machine.fits_memory(need):
                    out.append((nodes, ppn, msg))
    return out


def benchmark_config(spec: ClusterSpec, collective: str, nodes: int,
                     ppn: int, msg_size: int) -> CollectiveRecord:
    """Measure every algorithm of *collective* at one configuration."""
    machine = Machine(spec, nodes, ppn)
    times = {
        name: measured_time(machine, collective, name, msg_size)
        for name in base.algorithm_names(collective)
    }
    return CollectiveRecord(spec.name, collective, nodes, ppn,
                            msg_size, times)


def _cache_dir(cache_dir: str | Path | None) -> Path:
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("PML_MPI_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "pml_mpi"


def _collect_chunk(spec: ClusterSpec,
                   collective: str) -> list[CollectiveRecord]:
    """Benchmark one (cluster, collective) — the unit of parallelism.

    Top-level so it pickles into worker processes; measurements are
    pure functions of the configuration, so parallel collection is
    bit-identical to serial.
    """
    return [benchmark_config(spec, collective, nodes, ppn, msg)
            for nodes, ppn, msg in feasible_configs(spec, collective)]


def collect_dataset(clusters: list[ClusterSpec] | None = None,
                    collectives: tuple[str, ...] = COLLECTIVES,
                    cache_dir: str | Path | None = None,
                    use_cache: bool = True,
                    progress: bool = False,
                    workers: int | None = None) -> TuningDataset:
    """The full Table I campaign (cached after the first run).

    ``workers`` > 1 fans the (cluster, collective) chunks out over a
    process pool; results are concatenated in deterministic chunk order
    regardless of completion order.
    """
    if clusters is None:
        clusters = all_clusters()
    key = "-".join(sorted(c.name.replace(" ", "_") for c in clusters)) \
        + "-" + "-".join(collectives)
    digest = zlib.crc32(key.encode())
    cache = _cache_dir(cache_dir) / \
        f"dataset_v{DATASET_VERSION}_{digest:08x}.jsonl.gz"
    if use_cache and cache.exists():
        return TuningDataset.load(cache)

    chunks = [(spec, collective) for spec in clusters
              for collective in collectives]
    records: list[CollectiveRecord] = []
    if workers is not None and workers > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_collect_chunk, spec, coll)
                       for spec, coll in chunks]
            for (spec, coll), future in zip(chunks, futures):
                chunk = future.result()
                if progress:
                    print(f"[collect] {spec.name}: {coll} "
                          f"({len(chunk)} configs)")
                records.extend(chunk)
    else:
        for spec, coll in chunks:
            chunk = _collect_chunk(spec, coll)
            if progress:
                print(f"[collect] {spec.name}: {coll} "
                      f"({len(chunk)} configs)")
            records.extend(chunk)
    dataset = TuningDataset(records)
    if use_cache:
        dataset.save(cache)
    return dataset
