"""Dataset collection: the paper's Table I benchmark campaign, run on
the simulator.

For every cluster in the registry and every (collective, #nodes, PPN,
message size) in its sampled grid, all candidate algorithms are measured
(OMB-style averaged iterations, :func:`repro.smpi.tuning.measured_time`)
and the fastest becomes the record's label.  Configurations with fewer
than two ranks, or whose buffers do not fit node memory, are dropped —
the same holes that keep the paper's per-cluster sample counts slightly
below the full grid.

Collection over 18 clusters takes a couple of minutes, so results are
cached as gzipped JSON-lines under ``~/.cache/pml_mpi`` (override with
``PML_MPI_CACHE`` or the ``cache_dir`` argument).
"""

from __future__ import annotations

import gzip
import json
import logging
import math
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..hwmodel.registry import all_clusters, get_cluster
from ..hwmodel.specs import ClusterSpec
from ..obs.telemetry import get_registry, get_tracer
from ..simcluster.conditions import FaultProfile
from ..simcluster.machine import Machine
from ..smpi.collectives import base
from ..smpi.collectives.base import COLLECTIVES
from ..smpi.tuning import measured_time
from .features import ALL_FEATURE_NAMES, feature_vector
from .resilience import (
    CorruptArtifactError,
    RetryPolicy,
    StaleArtifactError,
    TransientCollectionError,
    atomic_commit,
    checksum_lines,
    quarantine,
    tmp_path_for,
)

log = logging.getLogger(__name__)

#: Bump when the cost model or grids change incompatibly.
DATASET_VERSION = "1"
DATASET_FORMAT = "pml-mpi/dataset"

#: Default retry behavior for fault-injected collection: backoff is
#: kept at zero delay because the "fabric" here is simulated — the
#: retry *structure* (fresh attempt, new luck) is what matters.
DEFAULT_COLLECTION_RETRY = RetryPolicy(max_attempts=6, base_delay_s=0.0,
                                       jitter=0.0)


@dataclass(frozen=True)
class CollectiveRecord:
    """One benchmarked configuration with per-algorithm timings."""

    cluster: str
    collective: str
    nodes: int
    ppn: int
    msg_size: int
    times: dict[str, float]  # algorithm -> measured seconds

    @property
    def label(self) -> str:
        """The fastest algorithm (the classification target)."""
        return min(self.times, key=self.times.__getitem__)

    @property
    def best_time(self) -> float:
        return min(self.times.values())


@dataclass
class TuningDataset:
    """A list of records plus feature-matrix assembly."""

    records: list[CollectiveRecord] = field(default_factory=list)
    #: Header metadata of the cache file this dataset was loaded from
    #: (``{}`` for datasets built in memory).  Carries the full
    #: uncompressed cache key and, for active-learning runs, the
    #: acquisition trajectory (schedule, decisions, core-hours).
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    # -- filtering -------------------------------------------------------
    def filter(self, collective: str | None = None,
               clusters: set[str] | None = None,
               max_nodes: int | None = None,
               min_nodes: int | None = None) -> "TuningDataset":
        """Subset by collective, cluster membership, or node range."""
        out = []
        for r in self.records:
            if collective is not None and r.collective != collective:
                continue
            if clusters is not None and r.cluster not in clusters:
                continue
            if max_nodes is not None and r.nodes > max_nodes:
                continue
            if min_nodes is not None and r.nodes < min_nodes:
                continue
            out.append(r)
        return TuningDataset(out)

    def clusters(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.cluster, None)
        return tuple(seen)

    def counts_by_cluster(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.cluster] = out.get(r.cluster, 0) + 1
        return out

    def label_distribution(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.records:
            out[r.label] = out.get(r.label, 0) + 1
        return dict(sorted(out.items()))

    # -- matrix form -------------------------------------------------------
    def feature_matrix(self) -> np.ndarray:
        """(n, 14) matrix in :data:`ALL_FEATURE_NAMES` order."""
        cache: dict[str, np.ndarray] = {}
        out = np.empty((len(self.records), len(ALL_FEATURE_NAMES)))
        for i, r in enumerate(self.records):
            if r.cluster not in cache:
                cache[r.cluster] = feature_vector(
                    get_cluster(r.cluster), 1, 1, 0)[3:]
            out[i, :3] = (float(r.nodes), float(r.ppn), float(r.msg_size))
            out[i, 3:] = cache[r.cluster]
        return out

    def labels(self) -> np.ndarray:
        return np.array([r.label for r in self.records])

    # -- (de)serialization -------------------------------------------------
    def save(self, path: str | Path, cache_key: str | None = None,
             extra_meta: dict | None = None) -> Path:
        """Atomic write with an embedded checksum header line.

        The first line is ``{"__meta__": {...}}`` carrying the dataset
        format/version, record count, and a CRC32 over the record
        lines; a mid-write kill leaves a ``*.tmp`` alongside and the
        previous cache intact.

        ``cache_key`` embeds the *full uncompressed* campaign key the
        cache was written under — loaders verify it against the key
        they expect instead of trusting the CRC-32 digest in the file
        name alone, so two campaigns whose keys collide in the digest
        can never silently serve each other's records.  ``extra_meta``
        merges additional header fields (the active-learning loop
        stores its acquisition trajectory there).
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({
            "cluster": r.cluster, "collective": r.collective,
            "nodes": r.nodes, "ppn": r.ppn,
            "msg_size": r.msg_size, "times": r.times,
        }) + "\n" for r in self.records]
        header = {
            "format": DATASET_FORMAT,
            "version": DATASET_VERSION,
            "records": len(lines),
            "crc32": checksum_lines(lines),
        }
        if extra_meta:
            for k, v in extra_meta.items():
                header.setdefault(k, v)
        if cache_key is not None:
            header["cache_key"] = cache_key
        meta = {"__meta__": header}
        tmp = tmp_path_for(path)
        with gzip.open(tmp, "wt") as fh:
            fh.write(json.dumps(meta) + "\n")
            fh.writelines(lines)
        with open(tmp, "rb") as fh:
            os.fsync(fh.fileno())
        return atomic_commit(tmp, path)

    @classmethod
    def load(cls, path: str | Path) -> "TuningDataset":
        """Strictly-validated load.

        Truncated gzip streams, undecodable lines, checksum or count
        mismatches and semantically invalid records (unknown
        collectives/algorithms, non-finite or non-positive times) raise
        :class:`CorruptArtifactError`; a cache from another
        ``DATASET_VERSION`` raises :class:`StaleArtifactError`.
        Pre-checksum caches (no ``__meta__`` first line) are accepted
        when their records validate.
        """
        path = Path(path)
        try:
            with gzip.open(path, "rt") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            raise
        except (OSError, EOFError, gzip.BadGzipFile, zlib.error) as exc:
            raise CorruptArtifactError(
                f"cannot read dataset cache {path}: {exc}") from None
        body = lines
        header: dict = {}
        if lines:
            try:
                first = json.loads(lines[0])
            except json.JSONDecodeError as exc:
                raise CorruptArtifactError(
                    f"dataset cache {path} line 1 is not JSON: "
                    f"{exc}") from None
            if isinstance(first, dict) and "__meta__" in first:
                meta = first["__meta__"]
                body = lines[1:]
                if not isinstance(meta, dict):
                    raise CorruptArtifactError(
                        f"dataset cache {path} has a malformed header")
                header = meta
                version = meta.get("version")
                if version != DATASET_VERSION:
                    raise StaleArtifactError(
                        f"dataset cache {path} has version {version!r}, "
                        f"expected {DATASET_VERSION!r}")
                expected = meta.get("records")
                if expected is not None and expected != len(body):
                    raise CorruptArtifactError(
                        f"dataset cache {path} truncated: header says "
                        f"{expected} records, found {len(body)}")
                stored_crc = meta.get("crc32")
                if stored_crc is not None:
                    actual = checksum_lines(body)
                    if stored_crc != actual:
                        raise CorruptArtifactError(
                            f"dataset cache {path} checksum mismatch: "
                            f"stored {stored_crc}, computed {actual}")
        records = []
        for lineno, line in enumerate(body, 1):
            try:
                d = json.loads(line)
                record = CollectiveRecord(
                    cluster=d["cluster"], collective=d["collective"],
                    nodes=int(d["nodes"]), ppn=int(d["ppn"]),
                    msg_size=int(d["msg_size"]),
                    times={k: float(v) for k, v in d["times"].items()})
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError, AttributeError) as exc:
                raise CorruptArtifactError(
                    f"dataset cache {path} record {lineno} is "
                    f"malformed: {exc}") from None
            _validate_record(record, path, lineno)
            records.append(record)
        return cls(records, meta=header)


def _validate_record(r: CollectiveRecord, path: Path,
                     lineno: int) -> None:
    """Semantic validation of one cached record."""
    where = f"dataset cache {path} record {lineno}"
    try:
        known = set(base.algorithm_names(r.collective))
    except KeyError:
        raise CorruptArtifactError(
            f"{where}: unknown collective {r.collective!r}") from None
    if r.nodes < 1 or r.ppn < 1 or r.msg_size < 0:
        raise CorruptArtifactError(
            f"{where}: invalid configuration "
            f"({r.nodes} nodes, {r.ppn} ppn, {r.msg_size} B)")
    if not r.times:
        raise CorruptArtifactError(f"{where}: no timings")
    for algo, t in r.times.items():
        if algo not in known:
            raise CorruptArtifactError(
                f"{where}: unknown algorithm {algo!r} for "
                f"{r.collective}")
        if not math.isfinite(t) or t <= 0.0:
            raise CorruptArtifactError(
                f"{where}: non-finite or non-positive time "
                f"{t!r} for {algo}")


#: Memoized feasibility grids: the same (cluster, collective) grid is
#: re-derived by collection, the oracle, and the benchmark harness.
_FEASIBLE_CACHE: dict[tuple, tuple[tuple[int, int, int], ...]] = {}


def feasible_configs(spec: ClusterSpec, collective: str
                     ) -> list[tuple[int, int, int]]:
    """The (nodes, ppn, msg) grid of one cluster after feasibility
    filtering (>= 2 ranks; buffers fit memory for every algorithm).

    Memoized per (spec, collective, registered algorithms) — specs are
    frozen dataclasses, so the grid is a pure function of the key."""
    algos = list(base.algorithms(collective).values())
    cache_key = (spec, collective,
                 tuple(sorted(base.algorithm_names(collective))))
    cached = _FEASIBLE_CACHE.get(cache_key)
    if cached is not None:
        return list(cached)
    out = []
    for nodes in spec.node_counts:
        for ppn in spec.ppn_values:
            p = nodes * ppn
            if p < 2:
                continue
            machine = Machine(spec, nodes, ppn)
            for msg in spec.msg_sizes:
                need = max(a.buffer_bytes(p, msg) for a in algos)
                if machine.fits_memory(need):
                    out.append((nodes, ppn, msg))
    if len(_FEASIBLE_CACHE) < 4096:
        _FEASIBLE_CACHE[cache_key] = tuple(out)
    return out


def _measure_with_faults(machine: Machine, collective: str,
                         algo_name: str, msg_size: int,
                         faults: FaultProfile,
                         retry: RetryPolicy) -> float:
    """One algorithm's measurement under injected faults, retried.

    Each attempt rolls fresh seeded luck: an injected measurement
    failure or a transient rank stall raises
    :class:`TransientCollectionError` and the retry policy re-measures;
    the *successful* measurement itself is unchanged, so a faulty
    campaign converges to the clean one.
    """
    key = (machine.spec.name, collective, algo_name,
           machine.nodes, machine.ppn, msg_size)
    attempt_box = [0]
    retries = get_registry().counter("collect.fault_retries")

    def attempt() -> float:
        attempt_box[0] += 1
        n = attempt_box[0]
        if faults.attempt_fails(*key, attempt=n):
            raise TransientCollectionError(
                f"injected measurement failure: {collective}/"
                f"{algo_name} at {machine.nodes}x{machine.ppn}/"
                f"{msg_size}B (attempt {n})")
        if faults.attempt_stalls(*key, attempt=n):
            raise TransientCollectionError(
                f"transient rank stall ({faults.stall_multiplier(*key, attempt=n):.0f}x "
                f"deadline overrun): {collective}/{algo_name} at "
                f"{machine.nodes}x{machine.ppn}/{msg_size}B "
                f"(attempt {n})")
        return measured_time(machine, collective, algo_name, msg_size)

    def note(n: int, exc: BaseException) -> None:
        retries.inc()
        log.debug("measurement retry %d: %s", n, exc)

    return retry.call(attempt, on_retry=note)


def benchmark_config(spec: ClusterSpec, collective: str, nodes: int,
                     ppn: int, msg_size: int,
                     faults: FaultProfile | None = None,
                     retry: RetryPolicy | None = None
                     ) -> CollectiveRecord:
    """Measure every algorithm of *collective* at one configuration.

    With a non-clean *faults* profile, each per-algorithm measurement
    runs under *retry* (default :data:`DEFAULT_COLLECTION_RETRY`);
    exhausted retries propagate :class:`TransientCollectionError` and
    the caller decides whether to drop the configuration.
    """
    machine = Machine(spec, nodes, ppn)
    if faults is None or faults.is_clean:
        times = {
            name: measured_time(machine, collective, name, msg_size)
            for name in base.algorithm_names(collective)
        }
    else:
        retry = retry or DEFAULT_COLLECTION_RETRY
        times = {
            name: _measure_with_faults(machine, collective, name,
                                       msg_size, faults, retry)
            for name in base.algorithm_names(collective)
        }
    return CollectiveRecord(spec.name, collective, nodes, ppn,
                            msg_size, times)


def _cache_dir(cache_dir: str | Path | None) -> Path:
    if cache_dir is not None:
        return Path(cache_dir)
    env = os.environ.get("PML_MPI_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "pml_mpi"


def dataset_cache_key(clusters: list[ClusterSpec],
                      collectives: tuple[str, ...],
                      faults: FaultProfile | None = None,
                      suffix: str = "") -> str:
    """The full, uncompressed campaign cache key.

    Encodes the cluster set, the collectives, any fault profile, and —
    via *suffix* — the acquisition trajectory of an active-learning
    run (seed, batch size, budget, plateau rule: the parameters that
    fully determine which configs get benchmarked, and in what order).
    The key is stored verbatim in the cache's ``__meta__`` header and
    verified on load; the CRC-32 digest of it only names the file.
    """
    key = "-".join(sorted(c.name.replace(" ", "_") for c in clusters)) \
        + "-" + "-".join(collectives)
    if faults is not None and not faults.is_clean:
        key += "-" + faults.cache_key()
    if suffix:
        key += "-" + suffix
    return key


def _cache_digest(key: str) -> int:
    """CRC-32 digest naming the cache file (collisions are survivable:
    the full key inside the file is what loaders trust)."""
    return zlib.crc32(key.encode())


def dataset_cache_path(key: str,
                       cache_dir: str | Path | None = None) -> Path:
    """Cache-file path for one campaign key."""
    return _cache_dir(cache_dir) / \
        f"dataset_v{DATASET_VERSION}_{_cache_digest(key):08x}.jsonl.gz"


def load_cached_dataset(cache: Path, expected_key: str,
                        progress: bool = False) -> TuningDataset | None:
    """Load one cache file, verifying the *full* stored key.

    Returns ``None`` when the file is absent or was quarantined.  A
    cache whose ``__meta__`` carries a different campaign key — e.g.
    an active-learning run whose key collides with an exhaustive
    sweep's CRC-32 digest — is quarantined exactly like a corrupt one
    (counted under ``collect.cache_key_mismatch``): the digest in the
    file name is a lookup hint, never an identity proof.  Pre-key
    caches (no ``cache_key`` header) are trusted when their records
    validate, as before.
    """
    registry = get_registry()
    try:
        dataset = TuningDataset.load(cache)
    except FileNotFoundError:
        return None
    except (CorruptArtifactError, StaleArtifactError) as exc:
        registry.counter("collect.cache_quarantined").inc()
        moved = quarantine(cache)
        log.warning("cache invalid (%s); quarantined to %s",
                    exc, moved.name)
        if progress:
            print(f"[collect] cache invalid ({exc}); "
                  f"quarantined to {moved.name}, re-collecting")
        return None
    stored = dataset.meta.get("cache_key")
    if stored is not None and stored != expected_key:
        registry.counter("collect.cache_key_mismatch").inc()
        registry.counter("collect.cache_quarantined").inc()
        moved = quarantine(cache)
        log.warning(
            "cache %s belongs to campaign %r, expected %r (digest "
            "collision); quarantined to %s", cache.name, stored,
            expected_key, moved.name)
        if progress:
            print(f"[collect] cache key mismatch (digest collision); "
                  f"quarantined to {moved.name}, re-collecting")
        return None
    registry.counter("collect.cache_hits").inc()
    log.info("dataset cache hit: %s (%d records)", cache.name,
             len(dataset))
    return dataset


def _collect_chunk(spec: ClusterSpec, collective: str,
                   faults: FaultProfile | None = None,
                   retry: RetryPolicy | None = None
                   ) -> tuple[list[CollectiveRecord], int]:
    """Benchmark one (cluster, collective) — the unit of parallelism.

    Top-level so it pickles into worker processes; measurements are
    pure functions of the configuration, so parallel collection is
    bit-identical to serial.  Returns ``(records, dropped)`` where
    *dropped* counts configurations whose measurements exhausted their
    retries — collection survives flaky fabrics instead of crashing.
    """
    records: list[CollectiveRecord] = []
    dropped = 0
    with get_tracer().span("collect.chunk", cluster=spec.name,
                           collective=collective) as span:
        for nodes, ppn, msg in feasible_configs(spec, collective):
            try:
                records.append(benchmark_config(spec, collective, nodes,
                                                ppn, msg, faults=faults,
                                                retry=retry))
            except TransientCollectionError:
                dropped += 1
        if span is not None:
            span.attributes["configs"] = len(records)
            span.attributes["dropped"] = dropped
    return records, dropped


def _collect_chunk_task(task: tuple) -> tuple[list[CollectiveRecord], int]:
    """One-argument adapter for :func:`repro.ml.parallel.parallel_map`."""
    spec, collective, faults, retry = task
    return _collect_chunk(spec, collective, faults, retry)


def collect_dataset(clusters: list[ClusterSpec] | None = None,
                    collectives: tuple[str, ...] = COLLECTIVES,
                    cache_dir: str | Path | None = None,
                    use_cache: bool = True,
                    progress: bool = False,
                    workers: int | None = None,
                    faults: FaultProfile | None = None,
                    retry: RetryPolicy | None = None) -> TuningDataset:
    """The full Table I campaign (cached after the first run).

    ``workers`` > 1 fans the (cluster, collective) chunks out over a
    process pool; results are concatenated in deterministic chunk order
    regardless of completion order.

    A cached file that fails validation is quarantined (renamed to
    ``*.corrupt``) and the campaign re-runs — a corrupt cache never
    crashes collection and never silently feeds bad data to training.
    ``faults``/``retry`` inject transient measurement failures and rank
    stalls (seeded, reproducible) and bound the per-measurement
    retries; see :class:`~repro.simcluster.conditions.FaultProfile`.
    """
    if clusters is None:
        clusters = all_clusters()
    key = dataset_cache_key(clusters, collectives, faults)
    cache = dataset_cache_path(key, cache_dir)
    registry = get_registry()
    if use_cache and cache.exists():
        dataset = load_cached_dataset(cache, key, progress=progress)
        if dataset is not None:
            return dataset

    chunks = [(spec, collective) for spec in clusters
              for collective in collectives]
    records: list[CollectiveRecord] = []
    total_dropped = 0
    with get_tracer().span("collect.campaign", clusters=len(clusters),
                           chunks=len(chunks)):
        if workers is not None and workers > 1:
            from ..ml.parallel import parallel_map

            results = parallel_map(
                _collect_chunk_task,
                [(spec, coll, faults, retry) for spec, coll in chunks],
                workers)
        else:
            results = [_collect_chunk(spec, coll, faults, retry)
                       for spec, coll in chunks]
        best_us = registry.histogram("collect.best_time_us")
        for (spec, coll), (chunk, dropped) in zip(chunks, results):
            total_dropped += dropped
            if progress:
                print(f"[collect] {spec.name}: {coll} "
                      f"({len(chunk)} configs)")
            for record in chunk:
                best_us.observe(record.best_time * 1e6)
            records.extend(chunk)
    registry.counter("collect.configs").inc(len(records))
    registry.counter("collect.dropped").inc(total_dropped)
    log.info("collected %d records over %d chunks (%d dropped)",
             len(records), len(chunks), total_dropped)
    if total_dropped:
        log.warning("dropped %d configs after exhausted retries",
                    total_dropped)
        if progress:
            print(f"[collect] dropped {total_dropped} configs after "
                  f"exhausted retries")
    dataset = TuningDataset(records)
    if use_cache:
        dataset.save(cache, cache_key=key)
    return dataset
