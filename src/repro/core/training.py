"""The offline training pipeline (paper Fig. 3, Sections V-A to V-D).

Steps, per collective:

1. rank all 14 features by Random-Forest Gini importance,
2. keep the top 5,
3. (optionally) grid-search hyperparameters with AUC-scored stratified
   cross-validation,
4. fit the final model.

``compare_models`` reproduces Table II (RF vs GradientBoost vs KNN vs
SVM after tuning); ``feature_importance_report`` reproduces Figs. 5-6.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..ml import (
    SVC,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    RandomForestClassifier,
    StandardScaler,
    accuracy_score,
)
from ..ml.model_selection import GridSearchCV
from ..obs.telemetry import get_tracer
from .dataset import TuningDataset
from .features import (
    ALL_FEATURE_NAMES,
    DEFAULT_TOP_K,
    feature_indices,
    select_top_k,
)

log = logging.getLogger(__name__)

#: Model families of Table II with their hyperparameter grids.  Grids
#: are compact so tuned comparisons stay tractable; RF defaults below
#: are already near-optimal for this dataset size.
MODEL_FAMILIES: dict[str, tuple[type, dict[str, Any], dict[str, list]]] = {
    "rf": (RandomForestClassifier,
           {"n_estimators": 100, "random_state": 0},
           {"max_depth": [None, 12], "max_features": [None, "sqrt"]}),
    "gradientboost": (GradientBoostingClassifier,
                      {"n_estimators": 80, "random_state": 0},
                      {"max_depth": [2, 3], "learning_rate": [0.1, 0.3]}),
    "knn": (KNeighborsClassifier, {},
            {"n_neighbors": [3, 5, 9], "weights": ["uniform", "distance"]}),
    "svm": (SVC, {"random_state": 0, "max_samples": 1500},
            {"C": [1.0, 10.0], "gamma": ["scale", 0.5]}),
}

#: Families whose features must be standardized.
SCALED_FAMILIES = frozenset({"knn", "svm"})

#: Ensemble families whose fit accepts an ``n_jobs`` process-pool knob.
PARALLEL_FAMILIES = frozenset({"rf", "gradientboost"})


@dataclass
class TrainedModel:
    """A fitted selector model plus everything inference needs."""

    collective: str
    family: str
    model: Any
    feature_names: tuple[str, ...]
    scaler: StandardScaler | None = None
    importances_full: np.ndarray | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def feature_idx(self) -> np.ndarray:
        return feature_indices(self.feature_names)

    @property
    def envelope(self) -> dict[str, tuple[float, float]] | None:
        """The trained grid envelope — per-dimension ``(min, max)`` of
        the (nodes, ppn, msg_size) values seen at training time, or
        ``None`` for models trained before envelopes existed.  The
        runtime guard uses it for out-of-distribution detection."""
        env = self.metadata.get("envelope")
        if not isinstance(env, dict):
            return None
        out: dict[str, tuple[float, float]] = {}
        for dim in ("nodes", "ppn", "msg_size"):
            bounds = env.get(dim)
            try:
                lo, hi = bounds
                out[dim] = (float(lo), float(hi))
            except (TypeError, ValueError):
                return None
        return out

    def _prepare(self, X_full: np.ndarray) -> np.ndarray:
        X = np.asarray(X_full)[:, self.feature_idx]
        if self.scaler is not None:
            X = self.scaler.transform(X)
        return X

    def predict(self, X_full: np.ndarray) -> np.ndarray:
        """Predict algorithm names from full 14-column feature rows."""
        return self.model.predict(self._prepare(X_full))

    def predict_batch(self, X_full: np.ndarray) -> np.ndarray:
        """Batch prediction from full 14-column feature rows through
        the model's vectorized batch path (packed-tree traversal for
        the ensembles) — element-wise identical to :meth:`predict`."""
        X = self._prepare(X_full)
        batch = getattr(self.model, "predict_batch", None)
        if batch is not None:
            return batch(X)
        return self.model.predict(X)

    def predict_proba(self, X_full: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(self._prepare(X_full))

    def predict_proba_batch(self, X_full: np.ndarray) -> np.ndarray:
        """Class probabilities through the model's vectorized batch
        path (the PackedTrees arena for the ensembles) — bit-identical
        to :meth:`predict_proba`.  The active-learning loop scores
        whole candidate pools through this in one traversal."""
        X = self._prepare(X_full)
        batch = getattr(self.model, "predict_proba_batch", None)
        if batch is not None:
            return batch(X)
        return self.model.predict_proba(X)

    def accuracy(self, dataset: TuningDataset) -> float:
        return accuracy_score(dataset.labels(),
                              self.predict(dataset.feature_matrix()))


def rank_features(dataset: TuningDataset, collective: str,
                  n_estimators: int = 100, seed: int = 0,
                  n_jobs: int | None = None) -> np.ndarray:
    """Gini importances of all 14 features for one collective
    (Figs. 5-6), from a full-feature Random Forest."""
    sub = dataset.filter(collective=collective)
    if len(sub) == 0:
        raise ValueError(f"no {collective} records in dataset")
    rf = RandomForestClassifier(n_estimators=n_estimators,
                                random_state=seed, n_jobs=n_jobs)
    with get_tracer().span("train.rank_features", collective=collective,
                           samples=len(sub)):
        rf.fit(sub.feature_matrix(), sub.labels())
    return rf.feature_importances_


def feature_importance_report(dataset: TuningDataset, collective: str,
                              seed: int = 0) -> list[tuple[str, float]]:
    """(feature, importance) pairs sorted by importance descending."""
    imp = rank_features(dataset, collective, seed=seed)
    order = np.argsort(-imp, kind="stable")
    return [(ALL_FEATURE_NAMES[i], float(imp[i])) for i in order]


def training_envelope(dataset: TuningDataset
                      ) -> dict[str, tuple[int, int]]:
    """Per-dimension (min, max) of the job shapes in *dataset* — the
    trained grid envelope persisted into model metadata so the runtime
    guard can detect far-extrapolation queries."""
    if len(dataset) == 0:
        raise ValueError("cannot compute envelope of an empty dataset")
    nodes = [r.nodes for r in dataset.records]
    ppn = [r.ppn for r in dataset.records]
    msg = [r.msg_size for r in dataset.records]
    return {"nodes": (min(nodes), max(nodes)),
            "ppn": (min(ppn), max(ppn)),
            "msg_size": (min(msg), max(msg))}


def train_model(dataset: TuningDataset, collective: str,
                family: str = "rf", top_k: int = DEFAULT_TOP_K,
                tune: bool = False, cv: int = 3,
                feature_names: tuple[str, ...] | None = None,
                seed: int = 0, n_jobs: int | None = None,
                params: dict[str, Any] | None = None) -> TrainedModel:
    """Fit one selector model on the training dataset.

    ``feature_names=None`` runs the paper's top-k selection; pass an
    explicit tuple to bypass it (used by the ablation benchmarks).
    ``n_jobs`` parallelizes ensemble fitting (and, when ``tune`` is
    set, candidate evaluation in the grid search) without changing any
    result — see :mod:`repro.ml.parallel`.  ``params`` overrides the
    family's default hyperparameters (e.g. a small ``n_estimators``
    for harness-sized models).
    """
    if family not in MODEL_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; known: "
            f"{', '.join(MODEL_FAMILIES)}")
    sub = dataset.filter(collective=collective)
    if len(sub) == 0:
        raise ValueError(f"no {collective} records in dataset")
    tracer = get_tracer()
    with tracer.span("train.model", collective=collective, family=family,
                     samples=len(sub), tuned=tune):
        X_full = sub.feature_matrix()
        y = sub.labels()

        importances = None
        if feature_names is None:
            importances = rank_features(dataset, collective, seed=seed,
                                        n_jobs=n_jobs)
            feature_names = select_top_k(importances, top_k)
        idx = feature_indices(feature_names)
        X = X_full[:, idx]
        log.info("training %s/%s on %d samples, features: %s",
                 collective, family, len(sub), ", ".join(feature_names))

        scaler = None
        if family in SCALED_FAMILIES:
            scaler = StandardScaler().fit(X)
            X = scaler.transform(X)

        cls, defaults, grid = MODEL_FAMILIES[family]
        if params:
            defaults = {**defaults, **params}
        if tune:
            # The search owns the workers (one candidate per task); the
            # estimators stay serial inside it to avoid nested pools.
            search = GridSearchCV(cls(**defaults), grid, scoring="auc",
                                  cv=cv, random_state=seed, n_jobs=n_jobs)
            with tracer.span("train.fit", collective=collective,
                             family=family):
                search.fit(X, y)
            model = search.best_estimator_
            meta = {"tuned": True, "best_params": search.best_params_,
                    "cv_auc": search.best_score_}
            log.info("grid search for %s/%s: best %r (cv auc %.4f)",
                     collective, family, search.best_params_,
                     search.best_score_)
        else:
            defaults = dict(defaults)
            if family in PARALLEL_FAMILIES:
                defaults["n_jobs"] = n_jobs
            model = cls(**defaults)
            with tracer.span("train.fit", collective=collective,
                             family=family):
                model.fit(X, y)
            meta = {"tuned": False}
        meta["n_jobs"] = n_jobs
    # The trained grid envelope rides along in the bundle so the
    # runtime guard can flag far-extrapolation queries (OOD routing).
    env = training_envelope(sub)
    meta["envelope"] = {dim: [int(lo), int(hi)]
                        for dim, (lo, hi) in env.items()}

    return TrainedModel(collective=collective, family=family, model=model,
                        feature_names=tuple(feature_names), scaler=scaler,
                        importances_full=importances, metadata=meta)


def compare_models(train: TuningDataset, test: TuningDataset,
                   collective: str, families: tuple[str, ...] | None = None,
                   tune: bool = True, seed: int = 0,
                   n_jobs: int | None = None) -> dict[str, float]:
    """Test accuracy per model family after tuning — Table II."""
    if families is None:
        families = tuple(MODEL_FAMILIES)
    out: dict[str, float] = {}
    for family in families:
        model = train_model(train, collective, family=family, tune=tune,
                            seed=seed, n_jobs=n_jobs)
        out[family] = model.accuracy(test)
    return out
