"""Pre-trained model bundles — the artifact shipped with the MPI library.

The paper's deployment story is that the vendor trains once and ships
the model inside the MVAPICH release; end users never train.  A
*bundle* is that shippable artifact: one JSON file holding the fitted
per-collective models, their selected features, scalers, and training
metadata.  ``save_selector`` / ``load_selector`` round-trip a
:class:`~repro.core.inference.PretrainedSelector` through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..ml.serialize import FORMAT_VERSION, dump_model, load_model
from .inference import PretrainedSelector
from .training import TrainedModel

BUNDLE_VERSION = 1


def dump_trained_model(model: TrainedModel) -> dict[str, Any]:
    """Serialize one TrainedModel to a JSON-compatible dict."""
    return {
        "collective": model.collective,
        "family": model.family,
        "feature_names": list(model.feature_names),
        "model": dump_model(model.model),
        "scaler": (dump_model(model.scaler)
                   if model.scaler is not None else None),
        "importances_full": (list(map(float, model.importances_full))
                             if model.importances_full is not None
                             else None),
        "metadata": model.metadata,
    }


def load_trained_model(data: dict[str, Any]) -> TrainedModel:
    """Inverse of :func:`dump_trained_model`."""
    import numpy as np

    return TrainedModel(
        collective=data["collective"],
        family=data["family"],
        model=load_model(data["model"]),
        feature_names=tuple(data["feature_names"]),
        scaler=(load_model(data["scaler"])
                if data["scaler"] is not None else None),
        importances_full=(np.asarray(data["importances_full"])
                          if data["importances_full"] is not None
                          else None),
        metadata=dict(data["metadata"]),
    )


def save_selector(selector: PretrainedSelector,
                  path: str | Path) -> Path:
    """Write the shippable model bundle."""
    payload = {
        "bundle_version": BUNDLE_VERSION,
        "model_format_version": FORMAT_VERSION,
        "models": {coll: dump_trained_model(m)
                   for coll, m in selector.models.items()},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


def load_selector(path: str | Path) -> PretrainedSelector:
    """Load a bundle written by :func:`save_selector`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("bundle_version")
    if version != BUNDLE_VERSION:
        raise ValueError(f"unsupported bundle version {version}")
    models = {coll: load_trained_model(d)
              for coll, d in payload["models"].items()}
    return PretrainedSelector(models)
