"""Pre-trained model bundles — the artifact shipped with the MPI library.

The paper's deployment story is that the vendor trains once and ships
the model inside the MVAPICH release; end users never train.  A
*bundle* is that shippable artifact: one JSON file holding the fitted
per-collective models, their selected features, scalers, and training
metadata.  ``save_selector`` / ``load_selector`` round-trip a
:class:`~repro.core.inference.PretrainedSelector` through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..ml.serialize import FORMAT_VERSION, dump_model, load_model
from .inference import PretrainedSelector
from .resilience import (
    CorruptArtifactError,
    StaleArtifactError,
    atomic_write_text,
    checksum_payload,
)
from .training import TrainedModel

BUNDLE_VERSION = 1
BUNDLE_FORMAT = "pml-mpi/bundle"


def dump_trained_model(model: TrainedModel) -> dict[str, Any]:
    """Serialize one TrainedModel to a JSON-compatible dict."""
    return {
        "collective": model.collective,
        "family": model.family,
        "feature_names": list(model.feature_names),
        "model": dump_model(model.model),
        "scaler": (dump_model(model.scaler)
                   if model.scaler is not None else None),
        "importances_full": (list(map(float, model.importances_full))
                             if model.importances_full is not None
                             else None),
        "metadata": model.metadata,
    }


def load_trained_model(data: dict[str, Any]) -> TrainedModel:
    """Inverse of :func:`dump_trained_model`."""
    import numpy as np

    return TrainedModel(
        collective=data["collective"],
        family=data["family"],
        model=load_model(data["model"]),
        feature_names=tuple(data["feature_names"]),
        scaler=(load_model(data["scaler"])
                if data["scaler"] is not None else None),
        importances_full=(np.asarray(data["importances_full"])
                          if data["importances_full"] is not None
                          else None),
        metadata=dict(data["metadata"]),
    )


def save_selector(selector: PretrainedSelector,
                  path: str | Path) -> Path:
    """Write the shippable model bundle (atomically, with a checksum).

    The CRC covers the ``models`` payload only, so metadata edits (e.g.
    a version bump) surface as *stale*, not *corrupt*.
    """
    models = {coll: dump_trained_model(m)
              for coll, m in selector.models.items()}
    payload = {
        "format": BUNDLE_FORMAT,
        "bundle_version": BUNDLE_VERSION,
        "model_format_version": FORMAT_VERSION,
        "crc32": checksum_payload(models),
        "models": models,
    }
    return atomic_write_text(Path(path), json.dumps(payload))


def load_selector(path: str | Path) -> PretrainedSelector:
    """Load a bundle written by :func:`save_selector`.

    Strict validation: parse failures, checksum mismatches and
    malformed model payloads raise :class:`CorruptArtifactError`; a
    well-formed bundle from another schema era raises
    :class:`StaleArtifactError`.  Pre-checksum bundles (no ``crc32``
    field) are accepted when structurally valid.
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        raise
    except (OSError, UnicodeDecodeError) as exc:
        raise CorruptArtifactError(
            f"cannot read bundle {path}: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(
            f"bundle is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or "models" not in payload:
        raise CorruptArtifactError("bundle has no models payload")
    fmt = payload.get("format", BUNDLE_FORMAT)
    if fmt != BUNDLE_FORMAT:
        raise CorruptArtifactError(f"not a model bundle (format {fmt!r})")
    version = payload.get("bundle_version")
    if version != BUNDLE_VERSION:
        raise StaleArtifactError(
            f"unsupported bundle version {version} "
            f"(expected {BUNDLE_VERSION})")
    stored_crc = payload.get("crc32")
    if stored_crc is not None:
        actual = checksum_payload(payload["models"])
        if stored_crc != actual:
            raise CorruptArtifactError(
                f"bundle checksum mismatch: stored {stored_crc}, "
                f"computed {actual}")
    try:
        models = {coll: load_trained_model(d)
                  for coll, d in payload["models"].items()}
        return PretrainedSelector(models)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CorruptArtifactError(
            f"invalid model payload in bundle: {exc}") from None
