"""The paper's three train/test split methodologies (Section V-D).

* **random** — conventional 70/30 random split (Table III col 1),
* **cluster** — hold out whole clusters, so test hardware was never
  seen during training (col 2; also the protocol behind Figs. 9-11),
* **node** — train on small node counts, test on larger ones (col 3;
  the protocol behind Fig. 12).

Each splitter returns (train_indices, test_indices) into a
:class:`~repro.core.dataset.TuningDataset`'s record list.
"""

from __future__ import annotations

import numpy as np

from ..ml.model_selection import rebalance_empty_side
from .dataset import TuningDataset

#: Default held-out clusters for the cluster split: ~30% of the records,
#: spread over CPU vendors and interconnects (the paper selects clusters
#: "not exposed to the model", including its two eval systems).
DEFAULT_HELDOUT_CLUSTERS = ("Frontera", "MRI", "Bebop", "Mayer", "LLNL")


def random_split(dataset: TuningDataset, test_size: float = 0.3,
                 seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """70/30 random split, stratified by label.

    Both sides are guaranteed non-empty: when every per-class
    ``round(len * test_size)`` collapses to 0 (or to the class size),
    one record of the largest class moves to the starved side."""
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    labels = dataset.labels()
    if len(labels) < 2:
        raise ValueError(
            f"cannot split {len(labels)} record(s) into non-empty "
            f"train and test sides")
    rng = np.random.default_rng(seed)
    train_parts, test_parts = [], []
    for label in np.unique(labels):
        idx = rng.permutation(np.flatnonzero(labels == label))
        n_test = int(round(len(idx) * test_size))
        test_parts.append(idx[:n_test])
        train_parts.append(idx[n_test:])
    train_parts, test_parts = rebalance_empty_side(train_parts,
                                                   test_parts)
    return (np.sort(np.concatenate(train_parts)),
            np.sort(np.concatenate(test_parts)))


def cluster_split(dataset: TuningDataset,
                  test_clusters: tuple[str, ...] = DEFAULT_HELDOUT_CLUSTERS
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Hold out whole clusters; the model never sees their hardware."""
    known = set(dataset.clusters())
    missing = [c for c in test_clusters if c not in known]
    if missing:
        raise ValueError(f"test clusters absent from dataset: {missing}")
    test_set = set(test_clusters)
    is_test = np.array([r.cluster in test_set for r in dataset.records])
    if is_test.all() or not is_test.any():
        raise ValueError("cluster split left one side empty")
    return np.flatnonzero(~is_test), np.flatnonzero(is_test)


def node_split(dataset: TuningDataset, max_train_nodes: int = 8
               ) -> tuple[np.ndarray, np.ndarray]:
    """Train on records with ``nodes <= max_train_nodes``; test on the
    rest (scaling generalization, paper Fig. 12)."""
    nodes = np.array([r.nodes for r in dataset.records])
    train = np.flatnonzero(nodes <= max_train_nodes)
    test = np.flatnonzero(nodes > max_train_nodes)
    if len(train) == 0 or len(test) == 0:
        raise ValueError(
            f"node split at {max_train_nodes} left one side empty "
            f"(node counts: {sorted(set(nodes.tolist()))})")
    return train, test


def split_dataset(dataset: TuningDataset, method: str, **kwargs
                  ) -> tuple[TuningDataset, TuningDataset]:
    """Convenience wrapper returning two sub-datasets."""
    if method == "random":
        train_idx, test_idx = random_split(dataset, **kwargs)
    elif method == "cluster":
        train_idx, test_idx = cluster_split(dataset, **kwargs)
    elif method == "node":
        train_idx, test_idx = node_split(dataset, **kwargs)
    else:
        raise ValueError(f"unknown split method {method!r}")
    records = dataset.records
    return (TuningDataset([records[i] for i in train_idx]),
            TuningDataset([records[i] for i in test_idx]))
