"""Deployment resilience: typed artifact errors, retry policies, atomic
validated I/O, quarantine, inter-process locking, and health reporting.

The paper's deployment story (Fig. 4) runs ``setup_cluster`` at MPI
compile time on machines the vendor never saw — exactly where corrupt
caches, half-written tuning tables, concurrent builds and flaky fabrics
live.  This module is the shared substrate that lets the offline→online
pipeline degrade gracefully instead of crashing:

* a typed error taxonomy (:class:`ArtifactError` and friends) so callers
  can distinguish "this file is garbage" from "this file is from another
  era" from "try again",
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  deterministic seeded jitter,
* atomic artifact writes (tmp file + ``os.replace``) with embedded CRC32
  checksums, so a mid-write kill leaves the original intact,
* :func:`quarantine` — corrupt files are renamed to ``*.corrupt`` for
  post-mortem, never deleted,
* :class:`FileLock` — an inter-process lock so concurrent compile-time
  setups on the same table directory don't race,
* :class:`CircuitBreaker` — a closed → open → half-open state machine
  that trips a persistently failing dependency over to its fallback and
  probes for recovery on a deterministic (injectable) clock,
* :class:`HealthReport` / :class:`ArtifactCheck` — a record of which
  degradation-ladder rung served a request, what was quarantined, and
  (for runtime guards) per-query health counters.

This module is deliberately a leaf: it imports nothing from the rest of
``repro`` so every layer (``smpi``, ``simcluster``, ``core``) can use it
without import cycles.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

try:  # POSIX; the O_EXCL fallback below covers everything else
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------

class ArtifactError(ValueError):
    """Base class for every artifact problem.

    Subclasses ``ValueError`` so pre-resilience callers that caught
    ``ValueError`` keep working.
    """


class CorruptArtifactError(ArtifactError):
    """The artifact cannot be trusted: unparsable bytes, checksum
    mismatch, structurally invalid payload, unknown algorithm names,
    non-finite times, …"""


class StaleArtifactError(ArtifactError):
    """The artifact is well-formed but from a different era or place:
    wrong schema version, wrong cluster."""


class LockTimeoutError(ArtifactError):
    """An inter-process :class:`FileLock` could not be acquired in time."""


class TransientCollectionError(RuntimeError):
    """A measurement / generation attempt failed in a retryable way
    (injected fault, rank stall, flaky fabric)."""


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Delays are fully deterministic for a given ``seed``: attempt *k*
    sleeps ``base_delay_s * backoff**(k-1)`` scaled by a jitter factor
    drawn from a generator seeded on ``(seed, k)``, capped at
    ``max_delay_s``.  ``per_attempt_timeout_s`` is a *cooperative*
    deadline: an attempt whose wall time exceeds it is treated as a
    transient failure (the stalled-measurement case), even if it
    eventually returned.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.25           # +/- fractional jitter on each delay
    max_delay_s: float = 2.0
    per_attempt_timeout_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int) -> float:
        """Backoff delay (seconds) after failed attempt *attempt* (1-based)."""
        base = self.base_delay_s * self.backoff ** (attempt - 1)
        if self.jitter > 0.0:
            rng = np.random.default_rng(
                zlib.crc32(f"retry|{self.seed}|{attempt}".encode()))
            base *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return min(base, self.max_delay_s)

    def call(self, fn: Callable[[], Any],
             retry_on: tuple[type[BaseException], ...] = (
                 TransientCollectionError,),
             on_retry: Callable[[int, BaseException], None] | None = None,
             sleep: Callable[[float], None] = time.sleep) -> Any:
        """Run ``fn()`` with retries; raise the last error on exhaustion.

        ``on_retry(attempt, exc)`` is invoked after each failed attempt
        (including the last), so callers can record attempts in a
        :class:`HealthReport`.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            t0 = time.perf_counter()
            try:
                result = fn()
                elapsed = time.perf_counter() - t0
                if (self.per_attempt_timeout_s is not None
                        and elapsed > self.per_attempt_timeout_s):
                    raise TransientCollectionError(
                        f"attempt {attempt} exceeded per-attempt timeout "
                        f"({elapsed:.3f}s > {self.per_attempt_timeout_s}s)")
                return result
            except retry_on as exc:
                last = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if attempt < self.max_attempts:
                    sleep(self.delay(attempt))
        assert last is not None
        raise last


# ---------------------------------------------------------------------------
# Atomic, checksummed artifact I/O
# ---------------------------------------------------------------------------

def checksum_payload(payload: Any) -> str:
    """CRC32 of the canonical JSON encoding of *payload*, as 8 hex digits."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode()
    return f"{zlib.crc32(canonical):08x}"


def checksum_lines(lines: Iterable[str]) -> str:
    """CRC32 over a stream of text lines (for JSON-lines artifacts)."""
    crc = 0
    for line in lines:
        crc = zlib.crc32(line.encode(), crc)
    return f"{crc:08x}"


def tmp_path_for(path: Path) -> Path:
    """The sibling temp file an atomic write of *path* goes through."""
    return path.with_name(f"{path.name}.{os.getpid()}.tmp")


def atomic_commit(tmp: Path, final: Path) -> Path:
    """Atomically promote a fully-written temp file to its final name."""
    os.replace(tmp, final)
    return final


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write *data* to *path* atomically (tmp file + ``os.replace``).

    A crash before the final rename leaves the original file intact and
    the partial ``*.tmp`` file on disk for post-mortem (``doctor`` flags
    stray temp files); it never leaves a half-written artifact under the
    final name.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = tmp_path_for(path)
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    return atomic_commit(tmp, path)


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> Path:
    return atomic_write_bytes(path, text.encode(encoding))


def quarantine(path: str | Path) -> Path:
    """Rename a corrupt artifact to ``*.corrupt`` (never delete it).

    If a previous quarantine already claimed that name, a numeric suffix
    is appended so no evidence is overwritten.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    n = 1
    # lexists, not exists: a dangling symlink at a candidate name is
    # still evidence and must not be silently overwritten.
    while os.path.lexists(target):
        target = path.with_name(f"{path.name}.corrupt.{n}")
        n += 1
    os.replace(path, target)
    return target


# ---------------------------------------------------------------------------
# Inter-process file lock
# ---------------------------------------------------------------------------

class FileLock:
    """Advisory inter-process lock around a lock file.

    Uses ``fcntl.flock`` where available (the kernel releases the lock
    when the holder dies, even on SIGKILL); falls back to
    ``O_CREAT|O_EXCL`` elsewhere.  Either way the holder's identity —
    PID and acquisition time — is written *into* the lock file, which
    buys two things:

    * **stale-lock breaking** — the ``O_EXCL`` fallback (where a killed
      process really does leave a dead lock behind) breaks a lock whose
      recorded owner PID no longer exists, or whose file is unreadably
      old (:data:`STALE_AFTER_S`), instead of deadlocking every later
      start;
    * **crash detection** — a lock file that still exists with a dead
      owner PID is forensic evidence of an unclean shutdown.  The
      serving daemon reads it via :meth:`read_owner` /
      :meth:`owner_is_stale` before re-acquiring, so a crash-restart is
      *recognized* (and recovery counted) rather than silent.

    ``unlink_on_release=True`` removes the lock file on a clean release
    — single-instance owners (the daemon pidfile) use it so "file
    exists with dead PID" unambiguously means "crashed".  Leave it off
    (the default) for contended locks: unlinking a contended ``flock``
    file opens the classic two-holders race.
    """

    #: A lock file with an unreadable owner record older than this is
    #: considered abandoned (fallback path only).
    STALE_AFTER_S = 300.0

    def __init__(self, path: str | Path, timeout_s: float = 10.0,
                 poll_s: float = 0.02,
                 unlink_on_release: bool = False) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self.unlink_on_release = unlink_on_release
        self._fd: int | None = None

    # -- owner records ---------------------------------------------------
    @staticmethod
    def pid_alive(pid: int) -> bool:
        """Does a process with this PID currently exist?"""
        if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except PermissionError:  # pragma: no cover - exists, not ours
            return True
        except OSError:  # pragma: no cover - e.g. pid > pid_max
            return False
        return True

    @classmethod
    def read_owner(cls, path: str | Path) -> dict[str, Any] | None:
        """The ``{"pid": ..., "acquired_at": ...}`` record of the lock's
        last holder, or ``None`` if the file is missing or unreadable
        (pre-record lock files, half-written junk)."""
        try:
            record = json.loads(Path(path).read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict) \
                or not isinstance(record.get("pid"), int):
            return None
        return record

    @classmethod
    def owner_is_stale(cls, path: str | Path,
                       stale_after_s: float | None = None) -> bool:
        """Is the lock file at *path* abandoned?

        True when the recorded owner PID is dead, or — for lock files
        without a readable owner record — when the file's mtime is
        older than *stale_after_s* (default :data:`STALE_AFTER_S`).
        A missing file is not stale (there is nothing to break).
        """
        path = Path(path)
        owner = cls.read_owner(path)
        if owner is not None:
            return not cls.pid_alive(owner["pid"])
        limit = cls.STALE_AFTER_S if stale_after_s is None else stale_after_s
        try:
            return time.time() - path.stat().st_mtime > limit
        except OSError:
            return False

    def break_stale(self) -> bool:
        """Remove the lock file if it is stale; returns whether it was."""
        if not self.owner_is_stale(self.path):
            return False
        self.path.unlink(missing_ok=True)
        return True

    def _write_owner(self, fd: int) -> None:
        record = json.dumps({"pid": os.getpid(),
                             "acquired_at": time.time()})
        try:
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, record.encode())
        except OSError:  # pragma: no cover - lock still works without
            pass

    # -- acquire / release ----------------------------------------------
    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_acquire():
                return
            if time.monotonic() >= deadline:
                raise LockTimeoutError(
                    f"could not acquire lock {self.path} within "
                    f"{self.timeout_s}s (concurrent setup in progress?)")
            time.sleep(self.poll_s)

    def _try_acquire(self) -> bool:
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            self._fd = fd
            self._write_owner(fd)
            return True
        # Non-flock fallback: a killed holder leaves the file behind,
        # so a dead recorded PID (or an unreadably old file) is broken
        # here instead of deadlocking every later start.
        self.break_stale()
        try:  # pragma: no cover - non-POSIX fallback
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        self._fd = fd
        self._write_owner(fd)
        return True

    def release(self) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            if self.unlink_on_release:
                self.path.unlink(missing_ok=True)
            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
        else:  # pragma: no cover
            os.close(self._fd)
            self.path.unlink(missing_ok=True)
        self._fd = None

    @property
    def locked(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic three-state breaker for a flaky dependency.

    *closed* — requests flow; ``failure_threshold`` *consecutive*
    recorded failures trip the breaker *open*.  *open* — requests are
    refused (:meth:`allow_request` returns ``False``) until
    ``recovery_timeout_s`` has elapsed on the breaker's clock, at which
    point the breaker moves to *half-open* and admits exactly one probe
    request.  A recorded success in half-open closes the breaker; a
    failure re-opens it (and restarts the recovery timer).

    The clock is injectable (``clock=time.monotonic`` by default), so
    probe timing is fully deterministic under test and in the chaos
    harness (which drives it with a query-tick counter).  The breaker is
    not thread-safe by design: it guards a per-process selector hot
    path, matching the rest of the runtime layer.
    """

    def __init__(self, failure_threshold: int = 5,
                 recovery_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_timeout_s < 0:
            raise ValueError("recovery_timeout_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_timeout_s = recovery_timeout_s
        self.clock = clock
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Ordered (from, to) state transitions, for audit / tests.
        self.transitions: list[tuple[str, str]] = []

    def _transition(self, new_state: str) -> None:
        if new_state == self.state:
            return
        self.transitions.append((self.state, new_state))
        self.state = new_state
        if new_state == BREAKER_OPEN:
            self._opened_at = self.clock()
            self._probe_in_flight = False
        elif new_state == BREAKER_CLOSED:
            self.consecutive_failures = 0
            self._probe_in_flight = False

    # -- hot-path API ----------------------------------------------------
    def allow_request(self) -> bool:
        """May the guarded dependency be consulted right now?

        In *open*, flips to *half-open* once the recovery timeout has
        elapsed and admits a single probe; further requests are refused
        until that probe's outcome is recorded.
        """
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self.clock() - self._opened_at >= self.recovery_timeout_s:
                self._transition(BREAKER_HALF_OPEN)
            else:
                return False
        # half-open: one probe at a time
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self) -> None:
        """The guarded dependency answered cleanly."""
        self.consecutive_failures = 0
        self._probe_in_flight = False
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """The guarded dependency failed (exception or guard trip)."""
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self._transition(BREAKER_OPEN)
        elif (self.state == BREAKER_CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._transition(BREAKER_OPEN)
        self._probe_in_flight = False

    # -- audit -----------------------------------------------------------
    def transition_counts(self) -> dict[str, int]:
        """``"from->to" -> count`` over the breaker's lifetime."""
        out: dict[str, int] = {}
        for a, b in self.transitions:
            key = f"{a}->{b}"
            out[key] = out.get(key, 0) + 1
        return out

    def cycles(self) -> int:
        """Completed open → half-open → closed recovery cycles."""
        completed = 0
        stage = 0  # 0: want open, 1: want half-open, 2: want closed
        for _, to in self.transitions:
            if stage == 0 and to == BREAKER_OPEN:
                stage = 1
            elif stage == 1 and to == BREAKER_HALF_OPEN:
                stage = 2
            elif stage == 2:
                if to == BREAKER_CLOSED:
                    completed += 1
                    stage = 0
                elif to == BREAKER_OPEN:
                    stage = 1
        return completed

    def describe(self) -> str:
        return (f"CircuitBreaker(state={self.state}, "
                f"consecutive_failures={self.consecutive_failures}, "
                f"transitions={len(self.transitions)})")


# ---------------------------------------------------------------------------
# Health reporting
# ---------------------------------------------------------------------------

#: Degradation-ladder rungs of ``PmlMpiFramework.setup_cluster``.
RUNG_CACHED = "cached-table"
RUNG_REGENERATED = "regenerated"
RUNG_FALLBACK = "heuristic-fallback"


@dataclass
class ArtifactCheck:
    """One artifact's validation outcome (the unit of ``pml-mpi doctor``)."""

    path: str
    kind: str      # tuning-table | bundle | dataset-cache | ...
    status: str    # ok | corrupt | stale | quarantined | orphan-tmp | unknown
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class HealthReport:
    """Which path served a request, and what went wrong along the way."""

    cluster: str = ""
    rung: str = ""
    attempts: int = 0
    quarantined: list[str] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    checks: list[ArtifactCheck] = field(default_factory=list)
    #: Runtime health counters (guarded-selector query statistics,
    #: breaker transitions, ...); empty for pure artifact reports.
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """True when nothing degraded: no errors, no quarantined files,
        and every doctor check (if any) passed."""
        return (not self.errors and not self.quarantined
                and all(c.ok for c in self.checks))

    def record_error(self, message: str) -> None:
        self.errors.append(message)

    def record_quarantine(self, path: str | Path) -> None:
        self.quarantined.append(str(path))

    def to_dict(self) -> dict[str, Any]:
        return {
            "cluster": self.cluster,
            "rung": self.rung,
            "attempts": self.attempts,
            "quarantined": list(self.quarantined),
            "errors": list(self.errors),
            "checks": [vars(c) for c in self.checks],
            "counters": dict(self.counters),
        }

    def describe(self) -> str:
        lines = []
        if self.cluster:
            lines.append(f"cluster:     {self.cluster}")
        if self.rung:
            lines.append(f"served via:  {self.rung}")
        if self.attempts:
            lines.append(f"attempts:    {self.attempts}")
        for q in self.quarantined:
            lines.append(f"quarantined: {q}")
        for e in self.errors:
            lines.append(f"error:       {e}")
        for c in self.checks:
            detail = f" ({c.detail})" if c.detail else ""
            lines.append(f"{c.status:<12} {c.kind:<14} {c.path}{detail}")
        for name in sorted(self.counters):
            lines.append(f"counter:     {name} = {self.counters[name]}")
        return "\n".join(lines) if lines else "healthy (nothing to report)"
