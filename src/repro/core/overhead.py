"""Startup-overhead (core-hour) models — paper Figs. 1 and 7.

Core hours = number of processes x wall time spent before the
application can run with tuned collectives:

* **Offline micro-benchmarking** sweeps every algorithm x message size
  x iteration at the target scale; its wall time is measured in our
  simulator and grows with node count (and runs *on* all the nodes).
* **ACCLAiM** (online ML, Wilkins et al. 2022) retrains at every
  allocation; the paper anchors its cost to the published measurement
  of 5.62 minutes for MPI_Allgather on 128 nodes and treats that as a
  lower bound, scaling the occupied cores with the allocation size.
  We reproduce the same anchoring.
* **PML-MPI** runs one model inference on one process — constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hwmodel.specs import ClusterSpec
from ..simcluster.machine import Machine
from ..smpi.collectives import base
from ..smpi.tuning import measured_time

#: Published ACCLAiM model overhead: 5.62 minutes at 128 nodes for
#: MPI_Allgather (paper Section II, citing Wilkins et al.).
ACCLAIM_MINUTES = 5.62
ACCLAIM_ANCHOR_NODES = 128

#: OMB-style sweep parameters of the offline tuning campaign.
MICROBENCH_ITERATIONS = 100
MICROBENCH_WARMUP = 10


@dataclass(frozen=True)
class OverheadPoint:
    nodes: int
    core_hours: float


def microbenchmark_core_hours(spec: ClusterSpec, collective: str,
                              nodes: int, ppn: int,
                              msg_sizes: tuple[int, ...] | None = None,
                              iterations: int = MICROBENCH_ITERATIONS
                              ) -> float:
    """Core hours of exhaustively benchmarking one node count."""
    msg_sizes = msg_sizes or spec.msg_sizes
    machine = Machine(spec, nodes, ppn)
    wall = 0.0
    for name in base.algorithm_names(collective):
        for msg in msg_sizes:
            per_iter = measured_time(machine, collective, name, msg,
                                     noise=False)
            wall += per_iter * (iterations + MICROBENCH_WARMUP)
    return wall / 3600.0 * machine.p


def acclaim_core_hours(nodes: int, ppn: int) -> float:
    """Lower-bound ACCLAiM core hours at one allocation size, anchored
    to the published 128-node measurement (training occupies the whole
    allocation)."""
    return ACCLAIM_MINUTES / 60.0 * nodes * ppn


def pml_core_hours(inference_seconds: float) -> float:
    """PML-MPI: one inference on one core, independent of scale."""
    return inference_seconds / 3600.0


def overhead_curves(spec: ClusterSpec, collective: str, ppn: int,
                    node_counts: tuple[int, ...],
                    inference_seconds: float,
                    msg_sizes: tuple[int, ...] | None = None
                    ) -> dict[str, list[OverheadPoint]]:
    """The three series of Fig. 7 (Fig. 1 is the first two)."""
    micro = [OverheadPoint(n, microbenchmark_core_hours(
        spec, collective, n, ppn, msg_sizes)) for n in node_counts]
    acclaim = [OverheadPoint(n, acclaim_core_hours(n, ppn))
               for n in node_counts]
    pml = [OverheadPoint(n, pml_core_hours(inference_seconds))
           for n in node_counts]
    return {"microbenchmark": micro, "acclaim": acclaim, "pml": pml}
