"""Online adaptation: feedback ingestion, drift detection, and
champion/challenger guarded rollout.

The paper's central contrast is pre-training vs ACCLAiM-style online
learning (Figs. 1, 7); this package implements the hybrid regime the
related work argues for — a shipped model that *adapts* when runtime
reality drifts away from its training envelope, but can never make
production selection worse than the champion it replaces:

* :mod:`~repro.adapt.feedback` — the versioned, checksummed
  ``pml-mpi/feedback`` JSONL log of runtime-measured collective times.
* :mod:`~repro.adapt.drift` — windowed regret replay of recent
  feedback through the shipped model vs the oracle-from-measurements,
  with Page–Hinkley change detection on the regret stream.
* :mod:`~repro.adapt.challenger` — warm-start re-fit on the existing
  dataset plus feedback rows, producing a candidate bundle with
  lineage metadata.
* :mod:`~repro.adapt.gate` — shadow evaluation of the challenger
  behind :class:`~repro.smpi.guard.GuardedSelector`, a sign-test
  promotion decision, a crash-safe promotion transaction, and
  automatic demotion back to the champion.
* :mod:`~repro.adapt.loop` — the ``pml-mpi adapt`` state machine
  tying the above together (one-shot and ``--watch`` sidecar modes).
"""

from .challenger import graft_champion_models, merge_feedback, train_challenger
from .drift import DriftMonitor, PageHinkley
from .feedback import (
    FEEDBACK_FORMAT,
    FEEDBACK_VERSION,
    FeedbackLog,
    FeedbackRecord,
    record_from_decision,
)
from .gate import ChampionChallengerGate, ShadowReport, shadow_evaluate, sign_test_p
from .loop import VERDICTS, AdaptConfig, AdaptReport, AdaptationLoop

__all__ = [
    "FEEDBACK_FORMAT",
    "FEEDBACK_VERSION",
    "AdaptConfig",
    "AdaptReport",
    "AdaptationLoop",
    "ChampionChallengerGate",
    "DriftMonitor",
    "FeedbackLog",
    "FeedbackRecord",
    "PageHinkley",
    "ShadowReport",
    "VERDICTS",
    "graft_champion_models",
    "merge_feedback",
    "record_from_decision",
    "shadow_evaluate",
    "sign_test_p",
    "train_challenger",
]
