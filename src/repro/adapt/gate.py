"""Champion/challenger gate: shadow evaluation, guarded promotion,
and automatic rollback.

**Shadow evaluation** replays held-out recent feedback through *both*
selectors, each behind its own :class:`~repro.smpi.guard.GuardedSelector`
(namespaced ``guard.champion.*`` / ``guard.challenger.*`` in one shared
registry, so each side's counters partition its replay stream exactly
and never merge).  Per-row regrets are paired; the challenger is
promotable only when its mean regret improves on the champion's by at
least ``min_improvement`` *and* an exact one-sided sign test on the
paired wins rejects "no better than the champion" at level ``alpha``.
Both conditions are pure arithmetic over the rows — no sampling — so
the verdict is deterministic.

**Promotion** is a crash-safe transaction over the serving bundle
file: a ``promotion.json`` sentinel (champion + challenger checksums)
is written first, the champion is copied to a backup, and the
challenger is atomically renamed over the serving path; the sentinel
is removed last.  A process killed anywhere in between leaves
evidence: :meth:`ChampionChallengerGate.recover` finds the sentinel,
quarantines the half-promoted challenger, restores the champion from
backup, and clears the sentinel — the same quarantine/restore ladder
the daemon's boot path uses.  **Demotion** (post-promotion regret
regression) reuses the same moves: quarantine the serving bundle,
restore the backup.  The daemon notices either swap through its
existing :class:`~repro.serve.reload.SnapshotStore` checksum poll.
"""

from __future__ import annotations

import errno
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.resilience import (
    CorruptArtifactError,
    atomic_write_bytes,
    atomic_write_text,
    quarantine,
)
from ..obs.telemetry import MetricsRegistry, get_registry
from ..simcluster.machine import Machine
from ..smpi.guard import GuardedSelector
from ..smpi.heuristics import AlgorithmSelector
from .drift import replay_regret
from .feedback import FeedbackRecord

__all__ = [
    "ChampionChallengerGate",
    "ShadowReport",
    "shadow_evaluate",
    "sign_test_p",
]

#: Paired regrets closer than this are ties (excluded from the sign
#: test): float noise must not manufacture wins.
TIE_EPS = 1e-9


def sign_test_p(wins: int, losses: int) -> float:
    """Exact one-sided sign-test p-value: the probability of seeing at
    least *wins* challenger wins in ``wins + losses`` fair coin flips.

    Small-n safe (exact binomial via ``math.comb``, no normal
    approximation); ``wins + losses == 0`` returns 1.0 — no evidence.
    """
    n = wins + losses
    if n == 0:
        return 1.0
    total = sum(math.comb(n, k) for k in range(wins, n + 1))
    return total / 2.0 ** n


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of one shadow evaluation over held-out feedback."""

    rows: int
    wins: int                 # challenger strictly better
    losses: int               # champion strictly better
    ties: int
    champion_regret: float    # mean relative regret
    challenger_regret: float
    improvement: float        # champion_regret - challenger_regret
    p_value: float
    promote: bool
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": self.rows, "wins": self.wins,
            "losses": self.losses, "ties": self.ties,
            "champion_regret": round(self.champion_regret, 9),
            "challenger_regret": round(self.challenger_regret, 9),
            "improvement": round(self.improvement, 9),
            "p_value": round(self.p_value, 9),
            "promote": self.promote, "detail": self.detail,
        }


def shadow_evaluate(champion: AlgorithmSelector,
                    challenger: AlgorithmSelector,
                    records: list[FeedbackRecord],
                    spec: Any,
                    min_improvement: float = 0.02,
                    alpha: float = 0.05,
                    registry: MetricsRegistry | None = None
                    ) -> ShadowReport:
    """Paired regret comparison of challenger vs champion on held-out
    rows, each behind its own namespaced guard."""
    registry = registry if registry is not None else get_registry()
    champ_guard = GuardedSelector(champion, registry=registry,
                                  namespace="guard.champion")
    chall_guard = GuardedSelector(challenger, registry=registry,
                                  namespace="guard.challenger")
    machines: dict[tuple[int, int], Machine] = {}
    for r in records:
        key = (r.nodes, r.ppn)
        if key not in machines:
            machines[key] = Machine(spec, r.nodes, r.ppn)
    wins = losses = ties = 0
    champ_sum = chall_sum = 0.0
    for r in records:
        rc = replay_regret(champ_guard, machines, r)
        rn = replay_regret(chall_guard, machines, r)
        champ_sum += rc
        chall_sum += rn
        if rn < rc - TIE_EPS:
            wins += 1
        elif rc < rn - TIE_EPS:
            losses += 1
        else:
            ties += 1
    n = len(records)
    champ_mean = champ_sum / n if n else 0.0
    chall_mean = chall_sum / n if n else 0.0
    improvement = champ_mean - chall_mean
    p = sign_test_p(wins, losses)
    promote = n > 0 and improvement >= min_improvement and p <= alpha
    if n == 0:
        detail = "no held-out rows"
    elif promote:
        detail = (f"challenger wins {wins}/{wins + losses} pairs "
                  f"(p={p:.4g}), regret {champ_mean:.4f} -> "
                  f"{chall_mean:.4f}")
    elif improvement < min_improvement:
        detail = (f"improvement {improvement:.4f} below floor "
                  f"{min_improvement:.4f}")
    else:
        detail = f"sign test inconclusive (p={p:.4g} > {alpha:.4g})"
    registry.counter("adapt.gate.evaluations").inc()
    registry.counter("adapt.gate.accepted" if promote
                     else "adapt.gate.rejected").inc()
    registry.gauge("adapt.regret.challenger").set(chall_mean)
    return ShadowReport(rows=n, wins=wins, losses=losses, ties=ties,
                        champion_regret=champ_mean,
                        challenger_regret=chall_mean,
                        improvement=improvement, p_value=p,
                        promote=promote, detail=detail)


def _file_crc32(path: Path) -> str | None:
    """Local copy of :func:`repro.serve.reload.file_crc32` semantics
    (lazy import avoids pulling the serve stack into the gate)."""
    from ..serve.reload import file_crc32
    return file_crc32(path)


class ChampionChallengerGate:
    """Owner of the promotion/demotion transaction over the serving
    bundle file.

    ``serving_path`` is the bundle the daemon watches; ``state_dir``
    holds the gate's durable state: ``champion.backup.json`` (the last
    known-good champion), ``promotion.json`` (the in-flight promotion
    sentinel), and whatever staged challenger the loop hands to
    :meth:`promote`.
    """

    def __init__(self, serving_path: str | Path,
                 state_dir: str | Path,
                 registry: MetricsRegistry | None = None) -> None:
        self.serving_path = Path(serving_path)
        self.state_dir = Path(state_dir)
        self.backup_path = self.state_dir / "champion.backup.json"
        self.sentinel_path = self.state_dir / "promotion.json"
        self.registry = registry if registry is not None \
            else get_registry()

    # -- promotion transaction ------------------------------------------
    def promote(self, challenger_path: str | Path,
                tick: int = 0) -> None:
        """Swap the challenger into the serving path, crash-safely.

        Order matters: sentinel first (so a kill at any later point is
        recoverable), champion backup second (so the restore source
        exists before the swap), rename last (atomic — the daemon
        never sees a torn bundle).
        """
        challenger_path = Path(challenger_path)
        champ_bytes = self.serving_path.read_bytes()
        self.state_dir.mkdir(parents=True, exist_ok=True)
        sentinel = {
            "challenger_checksum": _file_crc32(challenger_path),
            "champion_checksum": _file_crc32(self.serving_path),
            "tick": tick,
        }
        atomic_write_text(self.sentinel_path,
                          json.dumps(sentinel, sort_keys=True,
                                     separators=(",", ":")) + "\n")
        atomic_write_bytes(self.backup_path, champ_bytes)
        try:
            os.replace(challenger_path, self.serving_path)
        except OSError as exc:
            # The staged challenger lives in state_dir while the
            # serving bundle is an arbitrary user path; on different
            # filesystems the rename raises EXDEV.  Degrade to an
            # atomic same-directory write of the challenger bytes.
            if exc.errno != errno.EXDEV:
                raise
            atomic_write_bytes(self.serving_path,
                               challenger_path.read_bytes())
            challenger_path.unlink(missing_ok=True)
        self.sentinel_path.unlink()
        self.registry.counter("adapt.gate.promoted").inc()

    def recover(self) -> str | None:
        """Roll back a promotion that died mid-transaction.

        Returns a human-readable detail when recovery acted, ``None``
        when there was nothing to recover.  An unreadable sentinel is
        treated conservatively: if the serving bundle no longer
        matches the backup, the serving file is quarantined and the
        backup restored.
        """
        if not self.sentinel_path.exists():
            return None
        try:
            sentinel = json.loads(self.sentinel_path.read_text())
            if not isinstance(sentinel, dict):
                raise CorruptArtifactError("promotion sentinel not a dict")
            challenger_crc = sentinel.get("challenger_checksum")
        except (OSError, json.JSONDecodeError, CorruptArtifactError):
            challenger_crc = None
        serving_crc = _file_crc32(self.serving_path)
        backup_crc = _file_crc32(self.backup_path)
        swapped = serving_crc is not None and (
            serving_crc == challenger_crc
            or (challenger_crc is None and backup_crc is not None
                and serving_crc != backup_crc))
        if swapped and backup_crc is not None:
            moved = quarantine(self.serving_path)
            atomic_write_bytes(self.serving_path,
                               self.backup_path.read_bytes())
            self.registry.counter("adapt.gate.quarantined").inc()
            detail = (f"mid-promotion crash: quarantined half-promoted "
                      f"challenger to {moved.name}, restored champion "
                      f"from backup")
        else:
            detail = "cleared pre-swap promotion sentinel"
        self.sentinel_path.unlink(missing_ok=True)
        self.registry.counter("adapt.gate.recovered").inc()
        return detail

    # -- demotion --------------------------------------------------------
    def demote(self, reason: str = "") -> Path:
        """Quarantine the serving bundle and restore the backup
        champion (post-promotion regression, breaker trips, …).

        Returns the quarantine path of the demoted bundle.
        """
        if not self.backup_path.exists():
            raise FileNotFoundError(
                f"cannot demote: no champion backup at {self.backup_path}")
        moved = quarantine(self.serving_path)
        atomic_write_bytes(self.serving_path,
                           self.backup_path.read_bytes())
        self.registry.counter("adapt.gate.demoted").inc()
        self.registry.counter("adapt.gate.quarantined").inc()
        return moved
