"""Drift detection: windowed regret replay + Page–Hinkley change test.

The monitor replays recent feedback through the *shipped* selector and
scores each observation's relative regret against the
oracle-from-measurements (``t_chosen / t_best - 1``, computed entirely
from the feedback row's measured times — no simulator in the loop).
The heuristic floor is replayed alongside as a reference: a model
drifting *below* the floor is the strongest possible signal that the
training envelope no longer matches reality.

Change detection is the classic one-sided Page–Hinkley test on the
regret stream: with running mean ``x̄_t``, the cumulative deviation
``m_t = Σ (x_i - x̄_i - δ)`` drifts downward while regret is stable and
rises when the stream's mean shifts up; an alarm fires when
``m_t - min(m_1..m_t)`` exceeds ``λ``.  The test is a pure fold over
the observations — no clocks, no randomness — so the same window
always produces the same alarm sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..obs.telemetry import get_registry
from ..simcluster.machine import Machine
from ..smpi.heuristics import AlgorithmSelector, MvapichDefaultSelector
from .feedback import FeedbackRecord

__all__ = ["DriftMonitor", "DriftState", "PageHinkley", "replay_regret"]


class PageHinkley:
    """One-sided Page–Hinkley test for an upward mean shift.

    ``delta`` is the magnitude tolerance (drift smaller than this is
    ignored); ``threshold`` is the alarm level λ on the PH statistic;
    ``min_samples`` suppresses alarms before the running mean is
    meaningful.  :meth:`update` returns True on the observation that
    raises the alarm, after which the test resets and re-arms.
    """

    def __init__(self, delta: float = 0.005, threshold: float = 0.5,
                 min_samples: int = 10) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be > 0")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.cum = 0.0       # m_t
        self.cum_min = 0.0   # min over m_1..m_t

    @property
    def stat(self) -> float:
        """The current PH statistic ``m_t - min(m)``."""
        return self.cum - self.cum_min

    def update(self, x: float) -> bool:
        self.n += 1
        self.mean += (x - self.mean) / self.n
        self.cum += x - self.mean - self.delta
        self.cum_min = min(self.cum_min, self.cum)
        if self.n >= self.min_samples and self.stat > self.threshold:
            self.reset()
            return True
        return False


def replay_regret(selector: AlgorithmSelector,
                  machines: dict[tuple[int, int], Machine],
                  record: FeedbackRecord) -> float:
    """Relative regret of *selector*'s choice on one feedback row,
    scored purely from the row's measured times.

    When the selector picks an algorithm the runtime did not measure,
    the row's *worst* measured time stands in as a pessimistic bound
    (counted under ``adapt.regret.unmeasured``) — never the simulator,
    so production monitoring stays grounded in real observations.
    """
    machine = machines[(record.nodes, record.ppn)]
    choice = selector.select(record.collective, machine, record.msg_size)
    t = record.times.get(choice)
    if t is None:
        get_registry().counter("adapt.regret.unmeasured").inc()
        t = max(record.times.values())
    return t / record.best_time - 1.0


@dataclass
class DriftState:
    """One :meth:`DriftMonitor.observe` outcome over a window."""

    rows: int
    drift: bool
    drift_at: int | None          # window index of the (last) alarm
    regret_model: float           # windowed mean regret, shipped model
    regret_floor: float           # windowed mean regret, heuristic floor
    ph_stat: float                # PH statistic after the fold
    regrets: list[float] = field(default_factory=list, repr=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": self.rows, "drift": self.drift,
            "drift_at": self.drift_at,
            "regret_model": round(self.regret_model, 9),
            "regret_floor": round(self.regret_floor, 9),
            "ph_stat": round(self.ph_stat, 9),
        }


class DriftMonitor:
    """Replays a feedback window through champion + floor and folds
    the champion's regret stream through Page–Hinkley.

    Stateless across calls by design: :meth:`observe` rebuilds the
    detector and folds the whole window, so the verdict is a pure
    function of ``(window contents, detector parameters)`` — two
    replays of the same log are byte-identical, and no detector state
    needs crash-safe persistence.
    """

    def __init__(self, champion: AlgorithmSelector, spec: Any,
                 floor: AlgorithmSelector | None = None,
                 delta: float = 0.005, threshold: float = 0.5,
                 min_samples: int = 10) -> None:
        self.champion = champion
        self.spec = spec
        self.floor = floor if floor is not None \
            else MvapichDefaultSelector()
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples

    def observe(self, records: Iterable[FeedbackRecord]) -> DriftState:
        records = list(records)
        registry = get_registry()
        machines: dict[tuple[int, int], Machine] = {}
        for r in records:
            key = (r.nodes, r.ppn)
            if key not in machines:
                machines[key] = Machine(self.spec, r.nodes, r.ppn)
        detector = PageHinkley(self.delta, self.threshold,
                               self.min_samples)
        model_regrets: list[float] = []
        floor_sum = 0.0
        drift = False
        drift_at: int | None = None
        for i, r in enumerate(records):
            reg = replay_regret(self.champion, machines, r)
            model_regrets.append(reg)
            floor_sum += replay_regret(self.floor, machines, r)
            if detector.update(reg):
                drift = True
                drift_at = i
        n = len(records)
        state = DriftState(
            rows=n, drift=drift, drift_at=drift_at,
            regret_model=sum(model_regrets) / n if n else 0.0,
            regret_floor=floor_sum / n if n else 0.0,
            ph_stat=detector.stat, regrets=model_regrets)
        registry.counter("adapt.drift.windows").inc()
        if drift:
            registry.counter("adapt.drift.events").inc()
        registry.gauge("adapt.regret.model").set(state.regret_model)
        registry.gauge("adapt.regret.floor").set(state.regret_floor)
        registry.gauge("adapt.ph.stat").set(state.ph_stat)
        registry.gauge("adapt.drift.state").set(1.0 if drift else 0.0)
        return state
