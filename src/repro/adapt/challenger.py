"""Challenger training: warm-start re-fit on dataset + feedback rows.

When drift fires, the loop re-fits a candidate selector on the union
of the champion's original training dataset and the recent feedback
window.  Feedback is the fresher evidence, so it wins configuration
conflicts: a feedback row *replaces* any base-dataset row for the same
``(cluster, collective, nodes, ppn, msg_size)`` cell (last write wins,
mirroring the tuning-table duplicate policy), and novel cells extend
the grid.  The fit itself rides :func:`repro.core.training.train_model`
unchanged — including ``n_jobs`` process-pool parallelism via
:mod:`repro.ml.parallel` — so a challenger is bit-identical to an
offline model trained on the same merged rows.

Every challenger model carries lineage metadata (parent bundle
checksum, the feedback tick window, row provenance counts) in
``TrainedModel.metadata["lineage"]``; the bundle CRC covers model
payloads, so lineage is checksummed like everything else and survives
into the daemon's stats view.
"""

from __future__ import annotations

from typing import Any

from ..core.dataset import CollectiveRecord, TuningDataset
from ..core.inference import PretrainedSelector
from ..core.training import train_model
from ..obs.telemetry import get_registry, get_tracer
from .feedback import FeedbackRecord

__all__ = ["graft_champion_models", "merge_feedback", "train_challenger"]


def merge_feedback(base: TuningDataset,
                   feedback: list[FeedbackRecord]) -> TuningDataset:
    """Union of base training rows and feedback rows, feedback winning
    per-configuration conflicts (last write wins within the feedback
    list too, so later ticks dominate earlier ones)."""
    merged: dict[tuple, CollectiveRecord] = {}
    for r in base.records:
        merged[(r.cluster, r.collective, r.nodes, r.ppn,
                r.msg_size)] = r
    for f in feedback:
        merged[(f.cluster, f.collective, f.nodes, f.ppn,
                f.msg_size)] = f.to_collective_record()
    return TuningDataset(list(merged.values()))


def train_challenger(base: TuningDataset,
                     feedback: list[FeedbackRecord],
                     collectives: list[str] | None = None,
                     family: str = "rf",
                     seed: int = 0,
                     n_jobs: int | None = None,
                     params: dict[str, Any] | None = None,
                     parent_checksum: str | None = None
                     ) -> PretrainedSelector:
    """Fit a candidate selector on the merged rows.

    ``collectives=None`` trains one model per collective present in
    the feedback window (the only models drift has evidence against).
    The result covers *only* those collectives — before staging it as
    the serving bundle, the loop grafts the champion's models for
    every collective the challenger did not retrain (see
    :func:`graft_champion_models`), so promotion can never shrink
    coverage and regress an unobserved collective down to the
    heuristic floor.
    """
    if collectives is None:
        seen: dict[str, None] = {}
        for f in feedback:
            seen.setdefault(f.collective, None)
        collectives = list(seen)
    if not collectives:
        raise ValueError("no collectives to train a challenger for")
    merged = merge_feedback(base, feedback)
    ticks = [f.tick for f in feedback]
    lineage = {
        "parent_checksum": parent_checksum,
        "feedback_rows": len(feedback),
        "base_rows": len(base),
        "tick_lo": min(ticks) if ticks else None,
        "tick_hi": max(ticks) if ticks else None,
        "seed": seed,
        "family": family,
    }
    tracer = get_tracer()
    models = {}
    with tracer.span("adapt.train_challenger",
                     collectives=",".join(collectives),
                     rows=len(merged)):
        for collective in collectives:
            model = train_model(merged, collective, family=family,
                                seed=seed, n_jobs=n_jobs, params=params)
            model.metadata["lineage"] = dict(lineage)
            models[collective] = model
    get_registry().counter("adapt.challengers.trained").inc()
    return PretrainedSelector(models)


def graft_champion_models(challenger: PretrainedSelector,
                          champion: PretrainedSelector
                          ) -> PretrainedSelector:
    """Union selector: the challenger's freshly-trained models plus
    the champion's model for every collective the challenger did not
    retrain (the challenger wins where both have one).

    Drift only re-fits collectives present in the feedback window, so
    a raw challenger can cover fewer collectives than the champion it
    replaces.  Promoting it as-is would drop those models entirely —
    ``PretrainedSelector.select`` would raise ``KeyError`` and the
    daemon would serve the heuristic floor (and could trip the circuit
    breaker) for collectives nobody observed regressing.  Grafting
    keeps the champion's model serving for them instead; neither
    shadow evaluation nor probation can score unobserved collectives,
    so coverage must be preserved structurally, not statistically.
    """
    missing = {c: m for c, m in champion.models.items()
               if c not in challenger.models}
    if not missing:
        return challenger
    get_registry().counter("adapt.challengers.grafted").inc(len(missing))
    return PretrainedSelector({**missing, **challenger.models})
