"""The ``pml-mpi adapt`` state machine: ingest → detect → train →
gate → promote/demote, crash-safe and deterministic.

One :meth:`AdaptationLoop.run_once` call is one transaction under the
``adapt.lock`` file lock:

1. **recover** — a promotion sentinel left by a killed run is rolled
   back first (challenger quarantined, champion restored), before any
   new decision is made.
2. **ingest** — the feedback log is strictly loaded; a corrupt log is
   quarantined and the run degrades to an empty window instead of
   crashing the sidecar.
3. **probation** — right after a promotion the loop watches the
   promoted bundle on post-promotion feedback only: a regret
   regression beyond ``demote_tolerance`` demotes it (quarantine +
   champion restore); holding its shadow-evaluation promise confirms
   it as the new champion.
4. **stable** — the drift monitor replays the window through the
   serving bundle; a Page–Hinkley alarm trains a challenger on
   dataset + pre-held-out feedback, shadow-evaluates it on the
   held-out tail, and promotes only on a statistically meaningful
   regret win.

Every decision is a pure function of (feedback log, serving bundle,
config) — ticks are logical producer stamps, the detector is a
stateless fold, and the sign test is exact — so two runs over the
same inputs write byte-identical decision logs.  The ``fence_tick``
in the durable state marks the last row already judged; each verdict
advances it, so one drift episode triggers at most one
train/evaluate/promote cycle.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.bundle import load_selector, save_selector
from ..core.dataset import TuningDataset
from ..core.inference import PretrainedSelector
from ..core.resilience import ArtifactError, FileLock, atomic_write_text
from ..hwmodel import get_cluster
from ..obs.live import get_recorder
from ..obs.telemetry import get_registry, get_tracer
from ..smpi.guard import GuardedSelector
from ..smpi.heuristics import MvapichDefaultSelector
from .challenger import graft_champion_models, train_challenger
from .drift import DriftMonitor, DriftState
from .feedback import FeedbackLog
from .gate import ChampionChallengerGate, ShadowReport, shadow_evaluate

__all__ = ["AdaptConfig", "AdaptReport", "AdaptationLoop", "VERDICTS"]

#: Every run_once verdict; ``adapt.runs`` == Σ ``adapt.verdict.<v>``.
VERDICTS = ("recovered", "no_feedback", "stable", "promoted",
            "rejected", "probation_wait", "confirmed", "demoted")

PHASE_STABLE = "stable"
PHASE_PROBATION = "probation"


@dataclass(frozen=True)
class AdaptConfig:
    """Knobs for one adaptation loop instance."""

    cluster: str
    bundle_path: str | Path            # the serving bundle the daemon watches
    feedback_path: str | Path          # pml-mpi/feedback JSONL log
    state_dir: str | Path              # lock, state, backup, sentinel, log
    dataset_path: str | Path | None = None  # warm-start base dataset
    window: int = 256                  # rows replayed per drift check
    heldout_fraction: float = 0.25     # tail of the window kept for shadow eval
    ph_delta: float = 0.005            # Page-Hinkley magnitude tolerance
    ph_threshold: float = 0.5          # Page-Hinkley alarm level
    ph_min_samples: int = 10
    min_improvement: float = 0.02      # mean-regret win floor for promotion
    alpha: float = 0.05                # sign-test level
    probation_rows: int = 20           # post-promotion rows before a verdict
    demote_tolerance: float = 0.05     # regret slack over the shadow promise
    family: str = "rf"
    model_params: dict[str, Any] | None = None
    seed: int = 0
    n_jobs: int | None = None
    poll_s: float = 1.0                # --watch cadence
    lock_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.heldout_fraction < 1.0:
            raise ValueError("heldout_fraction must be in (0, 1)")
        if self.probation_rows < 1:
            raise ValueError("probation_rows must be >= 1")


@dataclass
class AdaptReport:
    """Outcome of one :meth:`AdaptationLoop.run_once`."""

    verdict: str
    detail: str
    phase: str                      # phase *after* this run
    fence_tick: int
    rows: int
    drift: DriftState | None = None
    shadow: ShadowReport | None = None
    quarantined: str | None = None  # corrupt feedback log, if any
    demoted: str | None = None      # quarantined bundle path, if any

    def to_dict(self) -> dict[str, Any]:
        return {
            "verdict": self.verdict, "detail": self.detail,
            "phase": self.phase, "fence_tick": self.fence_tick,
            "rows": self.rows,
            "drift": self.drift.to_dict() if self.drift else None,
            "shadow": self.shadow.to_dict() if self.shadow else None,
            "quarantined": self.quarantined, "demoted": self.demoted,
        }

    def describe(self) -> str:
        lines = [f"adapt: {self.verdict} — {self.detail}",
                 f"  phase={self.phase} fence_tick={self.fence_tick} "
                 f"rows={self.rows}"]
        if self.drift is not None:
            lines.append(
                f"  regret model={self.drift.regret_model:.4f} "
                f"floor={self.drift.regret_floor:.4f} "
                f"ph={self.drift.ph_stat:.4f} drift={self.drift.drift}")
        if self.shadow is not None:
            lines.append(
                f"  shadow: {self.shadow.wins}W/{self.shadow.losses}L/"
                f"{self.shadow.ties}T p={self.shadow.p_value:.4g} "
                f"champion={self.shadow.champion_regret:.4f} "
                f"challenger={self.shadow.challenger_regret:.4f}")
        if self.quarantined:
            lines.append(f"  quarantined feedback: {self.quarantined}")
        if self.demoted:
            lines.append(f"  demoted bundle: {self.demoted}")
        return "\n".join(lines)


@dataclass
class _State:
    """Durable loop state (``adapt_state.json``)."""

    phase: str = PHASE_STABLE
    fence_tick: int = -1
    baseline_regret: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {"phase": self.phase, "fence_tick": self.fence_tick,
                "baseline_regret": self.baseline_regret}


class AdaptationLoop:
    """See the module docstring for the state machine."""

    def __init__(self, config: AdaptConfig) -> None:
        self.config = config
        self.spec = get_cluster(config.cluster)
        self.state_dir = Path(config.state_dir)
        self.feedback = FeedbackLog(config.feedback_path)
        self.gate = ChampionChallengerGate(config.bundle_path,
                                           self.state_dir)
        self.state_path = self.state_dir / "adapt_state.json"
        self.decision_log = self.state_dir / "adapt_decisions.jsonl"
        self.lock_path = self.state_dir / "adapt.lock"
        self.staged_path = self.state_dir / "challenger.json"

    # -- durable state ---------------------------------------------------
    def _load_state(self) -> _State:
        try:
            data = json.loads(self.state_path.read_text())
        except (OSError, json.JSONDecodeError):
            return _State()
        if not isinstance(data, dict) \
                or data.get("phase") not in (PHASE_STABLE,
                                             PHASE_PROBATION) \
                or not isinstance(data.get("fence_tick"), int):
            return _State()
        baseline = data.get("baseline_regret")
        if baseline is not None and not isinstance(baseline, (int, float)):
            baseline = None
        return _State(phase=data["phase"],
                      fence_tick=data["fence_tick"],
                      baseline_regret=baseline)

    def _save_state(self, state: _State) -> None:
        atomic_write_text(self.state_path,
                          json.dumps(state.to_dict(), sort_keys=True,
                                     separators=(",", ":")) + "\n")

    def _log_decision(self, state: _State, report: AdaptReport) -> None:
        line = json.dumps(report.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        self.state_dir.mkdir(parents=True, exist_ok=True)
        with open(self.decision_log, "a") as fh:
            fh.write(line)
            fh.flush()

    def _finish(self, state: _State, report: AdaptReport) -> AdaptReport:
        registry = get_registry()
        registry.counter("adapt.runs").inc()
        registry.counter(f"adapt.verdict.{report.verdict}").inc()
        registry.gauge("adapt.phase").set(
            1.0 if state.phase == PHASE_PROBATION else 0.0)
        registry.gauge("adapt.fence_tick").set(float(state.fence_tick))
        # Publish the verdict into the ambient flight recorder so an
        # in-process observer (a daemon hosting the loop, or a test)
        # sees promotions/demotions next to the requests they affect;
        # cross-process observers tail the decision log instead.
        recorder = get_recorder()
        if recorder.enabled:
            recorder.record(
                "adapt", verdict=report.verdict, phase=report.phase,
                fence_tick=report.fence_tick, rows=report.rows,
                detail=report.detail[:200])
        self._save_state(state)
        self._log_decision(state, report)
        return report

    # -- helpers ---------------------------------------------------------
    def _base_dataset(self) -> tuple[TuningDataset, str]:
        """The warm-start dataset, degrading to feedback-only on a
        missing or corrupt dataset artifact (never crashing)."""
        path = self.config.dataset_path
        if path is None:
            return TuningDataset([]), "no base dataset configured"
        try:
            return TuningDataset.load(path), ""
        except (OSError, ArtifactError) as exc:
            return TuningDataset([]), (
                f"base dataset unusable ({type(exc).__name__}), "
                f"training on feedback only")

    def _demote_safe(self, reason: str) -> tuple[Path | None, str]:
        """``gate.demote`` that cannot crash the sidecar: a missing
        champion backup (quarantined, cleaned up, or a hand-edited
        ``phase=probation`` state file) degrades to keeping the
        serving bundle, returning ``(None, explanation)`` instead of
        letting ``FileNotFoundError`` escape ``run_once``."""
        try:
            return self.gate.demote(reason), "champion restored"
        except FileNotFoundError:
            get_registry().counter("adapt.gate.demote_unrestorable").inc()
            return None, ("champion backup missing, serving bundle "
                          "kept; resetting to stable")

    def _champion(self) -> GuardedSelector | None:
        try:
            inner = load_selector(self.gate.serving_path)
        except (OSError, ArtifactError):
            return None
        return GuardedSelector(inner, registry=get_registry(),
                               namespace="guard.champion")

    # -- the transaction -------------------------------------------------
    def run_once(self) -> AdaptReport:
        lock = FileLock(self.lock_path,
                        timeout_s=self.config.lock_timeout_s,
                        unlink_on_release=True)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if FileLock.owner_is_stale(self.lock_path):
            if lock.break_stale():
                get_registry().counter("adapt.lock.broken").inc()
        with lock:
            with get_tracer().span("adapt.run_once"):
                return self._run_locked()

    def _run_locked(self) -> AdaptReport:
        cfg = self.config
        state = self._load_state()

        recovered = self.gate.recover()
        if recovered is not None:
            state.phase = PHASE_STABLE
            state.baseline_regret = None
            return self._finish(state, AdaptReport(
                verdict="recovered", detail=recovered,
                phase=state.phase, fence_tick=state.fence_tick, rows=0))

        rows, quarantined = self.feedback.load_or_quarantine()
        fresh = [r for r in rows if r.tick > state.fence_tick]
        window = fresh[-cfg.window:]
        q = str(quarantined) if quarantined is not None else None
        if not window:
            return self._finish(state, AdaptReport(
                verdict="no_feedback",
                detail="quarantined corrupt feedback log"
                if q else "no feedback newer than the fence",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=0, quarantined=q))
        max_tick = max(r.tick for r in window)

        if state.phase == PHASE_PROBATION:
            return self._run_probation(state, window, max_tick, q)
        return self._run_stable(state, window, max_tick, q)

    def _run_stable(self, state: _State, window, max_tick: int,
                    quarantined: str | None) -> AdaptReport:
        cfg = self.config
        champion = self._champion()
        if champion is None:
            return self._finish(state, AdaptReport(
                verdict="stable",
                detail="serving bundle unreadable; daemon floor is "
                "authoritative, nothing to adapt",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), quarantined=quarantined))
        monitor = DriftMonitor(champion, self.spec,
                               delta=cfg.ph_delta,
                               threshold=cfg.ph_threshold,
                               min_samples=cfg.ph_min_samples)
        drift = monitor.observe(window)
        if not drift.drift:
            return self._finish(state, AdaptReport(
                verdict="stable", detail="regret stream stable",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), drift=drift, quarantined=quarantined))

        # Drift: train a challenger on everything but the held-out
        # tail, shadow-evaluate on the tail.
        n_heldout = max(1, int(len(window) * cfg.heldout_fraction))
        if n_heldout >= len(window):
            n_heldout = len(window) - 1
        train_rows = window[:-n_heldout] if n_heldout else list(window)
        heldout = window[-n_heldout:] if n_heldout else []
        base, base_detail = self._base_dataset()
        parent_crc = None
        try:
            from ..serve.reload import file_crc32
            parent_crc = file_crc32(self.gate.serving_path)
        except OSError:  # pragma: no cover - crc reads never raise
            pass
        if not train_rows or not heldout:
            state.fence_tick = max_tick
            return self._finish(state, AdaptReport(
                verdict="rejected",
                detail="window too small to split train/held-out",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), drift=drift, quarantined=quarantined))
        try:
            challenger = train_challenger(
                base, train_rows, family=cfg.family, seed=cfg.seed,
                n_jobs=cfg.n_jobs, params=cfg.model_params,
                parent_checksum=parent_crc)
        except ValueError as exc:
            state.fence_tick = max_tick
            return self._finish(state, AdaptReport(
                verdict="rejected",
                detail=f"challenger training failed: {exc}",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), drift=drift, quarantined=quarantined))

        # Coverage guard: drift only retrains collectives seen in
        # feedback; the promoted bundle must still serve every
        # collective the champion did, so graft the champion's models
        # for the rest *before* the challenger is evaluated or staged.
        if isinstance(champion.inner, PretrainedSelector):
            challenger = graft_champion_models(challenger,
                                               champion.inner)

        shadow = shadow_evaluate(
            champion.inner, challenger, heldout, self.spec,
            min_improvement=cfg.min_improvement, alpha=cfg.alpha)
        state.fence_tick = max_tick
        if not shadow.promote:
            detail = shadow.detail
            if base_detail:
                detail = f"{detail}; {base_detail}"
            return self._finish(state, AdaptReport(
                verdict="rejected", detail=detail,
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), drift=drift, shadow=shadow,
                quarantined=quarantined))

        save_selector(challenger, self.staged_path)
        self.gate.promote(self.staged_path, tick=max_tick)
        state.phase = PHASE_PROBATION
        state.baseline_regret = shadow.challenger_regret
        detail = f"promoted challenger: {shadow.detail}"
        if base_detail:
            detail = f"{detail}; {base_detail}"
        return self._finish(state, AdaptReport(
            verdict="promoted", detail=detail,
            phase=state.phase, fence_tick=state.fence_tick,
            rows=len(window), drift=drift, shadow=shadow,
            quarantined=quarantined))

    def _run_probation(self, state: _State, window, max_tick: int,
                       quarantined: str | None) -> AdaptReport:
        cfg = self.config
        if len(window) < cfg.probation_rows:
            return self._finish(state, AdaptReport(
                verdict="probation_wait",
                detail=f"{len(window)}/{cfg.probation_rows} "
                f"post-promotion rows",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), quarantined=quarantined))
        promoted = self._champion()  # the promoted bundle now serves
        if promoted is None:
            # Serving bundle unreadable during probation: restore the
            # champion rather than keep an unverifiable promotion.
            moved, outcome = self._demote_safe(
                "serving bundle unreadable during probation")
            state.phase = PHASE_STABLE
            state.baseline_regret = None
            state.fence_tick = max_tick
            return self._finish(state, AdaptReport(
                verdict="demoted",
                detail="serving bundle unreadable during probation; "
                f"{outcome}",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window),
                demoted=str(moved) if moved is not None else None,
                quarantined=quarantined))
        monitor = DriftMonitor(promoted, self.spec,
                               delta=cfg.ph_delta,
                               threshold=cfg.ph_threshold,
                               min_samples=cfg.ph_min_samples)
        drift = monitor.observe(window)
        baseline = state.baseline_regret \
            if state.baseline_regret is not None else 0.0
        state.fence_tick = max_tick
        if drift.regret_model > baseline + cfg.demote_tolerance:
            moved, outcome = self._demote_safe(
                f"probation regret {drift.regret_model:.4f} exceeds "
                f"shadow promise {baseline:.4f} + "
                f"{cfg.demote_tolerance:.4f}")
            state.phase = PHASE_STABLE
            state.baseline_regret = None
            return self._finish(state, AdaptReport(
                verdict="demoted",
                detail=f"probation regret {drift.regret_model:.4f} > "
                f"promise {baseline:.4f} + tolerance "
                f"{cfg.demote_tolerance:.4f}; {outcome}",
                phase=state.phase, fence_tick=state.fence_tick,
                rows=len(window), drift=drift,
                demoted=str(moved) if moved is not None else None,
                quarantined=quarantined))
        state.phase = PHASE_STABLE
        state.baseline_regret = None
        return self._finish(state, AdaptReport(
            verdict="confirmed",
            detail=f"probation regret {drift.regret_model:.4f} within "
            f"promise {baseline:.4f} + tolerance; challenger is the "
            f"new champion",
            phase=state.phase, fence_tick=state.fence_tick,
            rows=len(window), drift=drift, quarantined=quarantined))

    # -- sidecar mode ----------------------------------------------------
    def watch(self, max_polls: int | None = None,
              on_report=None) -> list[AdaptReport]:
        """Run :meth:`run_once` on a fixed cadence until interrupted
        (or *max_polls* runs, for tests and bounded sidecars)."""
        reports: list[AdaptReport] = []
        polls = 0
        try:
            while max_polls is None or polls < max_polls:
                report = self.run_once()
                reports.append(report)
                if on_report is not None:
                    on_report(report)
                polls += 1
                if max_polls is not None and polls >= max_polls:
                    break
                time.sleep(self.config.poll_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        return reports
