"""The runtime feedback log: versioned, checksummed JSONL of measured
collective times.

One :class:`FeedbackRecord` is one runtime observation — "on this
cluster, for this communicator shape and message size, the deployed
selector executed *algorithm* and these per-algorithm times were
measured".  ``times`` always contains the executed algorithm; when the
runtime also micro-benchmarked alternatives (the ACCLAiM-style probe),
their times ride along and sharpen the oracle.  ``tick`` is a logical
sequence stamp (monotonically non-decreasing), *not* a wall-clock
time — every adaptation decision is a pure function of the log
contents, so replays are byte-identical.  Producers may assign ticks
explicitly; records left at the default ``tick=0`` are auto-stamped
by :meth:`FeedbackLog.append` so the adaptation fence keeps seeing
fresh rows.

The on-disk format mirrors the trace/dataset artifacts: line 1 is a
``{"__meta__": {...}}`` header with format name, schema version,
record count, and a CRC32 over the record lines; each subsequent line
is one record with sorted keys and compact separators.  Writes go
through :func:`repro.core.resilience.atomic_write_text`; loading
raises the shared typed artifact errors, and the adaptation loop
quarantines (never deletes) a corrupt log via
:func:`repro.core.resilience.quarantine`.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.dataset import CollectiveRecord
from ..core.resilience import (
    CorruptArtifactError,
    FileLock,
    StaleArtifactError,
    atomic_write_text,
    checksum_lines,
    quarantine,
)
from ..obs.telemetry import get_registry

__all__ = [
    "FEEDBACK_FORMAT",
    "FEEDBACK_VERSION",
    "FeedbackLog",
    "FeedbackRecord",
    "record_from_decision",
]

FEEDBACK_FORMAT = "pml-mpi/feedback"
#: Bump on incompatible record-schema changes.
FEEDBACK_VERSION = 1


@dataclass(frozen=True)
class FeedbackRecord:
    """One runtime-measured selection outcome."""

    cluster: str
    collective: str
    nodes: int
    ppn: int
    msg_size: int
    algorithm: str           # what the deployed selector executed
    times: dict[str, float]  # algorithm -> measured seconds (>= 1 entry)
    tick: int = 0            # producer-assigned logical sequence stamp

    @property
    def best_algorithm(self) -> str:
        """The oracle-from-measurements choice for this observation."""
        return min(self.times, key=self.times.__getitem__)

    @property
    def best_time(self) -> float:
        return min(self.times.values())

    @property
    def executed_time(self) -> float:
        return self.times[self.algorithm]

    def regret(self) -> float:
        """Relative regret of the executed choice vs the measured
        oracle: ``t_executed / t_best - 1`` (0 when it was optimal)."""
        return self.executed_time / self.best_time - 1.0

    def to_collective_record(self) -> CollectiveRecord:
        """The same observation as a training row."""
        return CollectiveRecord(
            cluster=self.cluster, collective=self.collective,
            nodes=self.nodes, ppn=self.ppn, msg_size=self.msg_size,
            times=dict(self.times))

    def to_dict(self) -> dict[str, Any]:
        return {
            "cluster": self.cluster, "collective": self.collective,
            "nodes": self.nodes, "ppn": self.ppn,
            "msg_size": self.msg_size, "algorithm": self.algorithm,
            "times": self.times, "tick": self.tick,
        }


def validate_record(data: Any, where: str = "feedback") -> FeedbackRecord:
    """Strictly validate one decoded record object.

    Raises :class:`CorruptArtifactError` on any structural problem —
    wrong types, empty/non-finite/non-positive times, an executed
    algorithm missing from ``times``, a negative tick.
    """
    if not isinstance(data, dict):
        raise CorruptArtifactError(f"{where}: record is not an object")
    for key in ("cluster", "collective", "algorithm"):
        if not isinstance(data.get(key), str) or not data[key]:
            raise CorruptArtifactError(
                f"{where}: {key!r} must be a non-empty string")
    for key in ("nodes", "ppn", "msg_size"):
        v = data.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 1:
            raise CorruptArtifactError(
                f"{where}: {key!r} must be a positive integer")
    tick = data.get("tick", 0)
    if not isinstance(tick, int) or isinstance(tick, bool) or tick < 0:
        raise CorruptArtifactError(
            f"{where}: 'tick' must be a non-negative integer")
    times = data.get("times")
    if not isinstance(times, dict) or not times:
        raise CorruptArtifactError(
            f"{where}: 'times' must be a non-empty object")
    for name, t in times.items():
        if not isinstance(name, str) or not name:
            raise CorruptArtifactError(
                f"{where}: algorithm names must be non-empty strings")
        if isinstance(t, bool) or not isinstance(t, (int, float)) \
                or not math.isfinite(t) or t <= 0:
            raise CorruptArtifactError(
                f"{where}: time for {name!r} must be a finite positive "
                f"number, got {t!r}")
    if data["algorithm"] not in times:
        raise CorruptArtifactError(
            f"{where}: executed algorithm {data['algorithm']!r} has no "
            f"measured time")
    extra = set(data) - {"cluster", "collective", "nodes", "ppn",
                         "msg_size", "algorithm", "times", "tick"}
    if extra:
        raise CorruptArtifactError(
            f"{where}: unknown fields {sorted(extra)}")
    return FeedbackRecord(
        cluster=data["cluster"], collective=data["collective"],
        nodes=data["nodes"], ppn=data["ppn"],
        msg_size=data["msg_size"], algorithm=data["algorithm"],
        times={k: float(v) for k, v in times.items()}, tick=tick)


def record_from_decision(cluster: str, decision: dict[str, Any],
                         times: dict[str, float],
                         tick: int = 0) -> FeedbackRecord:
    """Build a feedback record from a daemon/service decision dict
    (the :meth:`SelectionDecision.to_dict` shape) plus the runtime's
    measured times for that call.

    The decision's ``algorithm`` may legitimately be missing from
    *times* when the runtime measured only alternatives; in that case
    the executed time must still be supplied, so this raises the same
    typed error the log loader would.
    """
    if decision.get("algorithm") is None:
        raise CorruptArtifactError(
            "cannot build feedback from an invalid decision "
            "(algorithm is None)")
    return validate_record({
        "cluster": cluster,
        "collective": decision["collective"],
        "nodes": decision["nodes"],
        "ppn": decision["ppn"],
        "msg_size": decision["msg_size"],
        "algorithm": decision["algorithm"],
        "times": dict(times),
        "tick": tick,
    }, where="decision feedback")


def _record_line(record: FeedbackRecord) -> str:
    return json.dumps(record.to_dict(), sort_keys=True,
                      separators=(",", ":")) + "\n"


class FeedbackLog:
    """Append-mostly feedback artifact with strict load validation.

    ``append`` rewrites the whole file atomically (header checksum
    covers every record line), so a mid-append kill leaves either the
    old valid log or the new valid log — never a torn one.  Feedback
    volumes here are adaptation windows (hundreds to thousands of
    rows), not traces, so the rewrite is cheap.

    Mutations (``append``, and the quarantine rename inside
    ``load_or_quarantine``) are serialized through a sibling
    ``<name>.lock`` :class:`~repro.core.resilience.FileLock`: the
    atomic write only protects against torn files, so without the
    lock two concurrent producers' load-merge-rewrite cycles would
    silently drop each other's records.
    """

    def __init__(self, path: str | Path,
                 lock_timeout_s: float = 10.0) -> None:
        self.path = Path(path)
        self.lock_path = self.path.with_name(self.path.name + ".lock")
        self.lock_timeout_s = lock_timeout_s

    def _lock(self) -> FileLock:
        # Contended lock: leave the file in place on release
        # (unlinking a contended flock file opens a two-holders race).
        return FileLock(self.lock_path, timeout_s=self.lock_timeout_s)

    # -- reading ---------------------------------------------------------
    def load(self) -> list[FeedbackRecord]:
        """Strictly load every record; raises typed artifact errors.

        A missing file is an empty log (the steady state before the
        first runtime observation arrives), not an error.
        """
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise CorruptArtifactError(
                f"feedback log unreadable: {exc}") from exc
        lines = text.splitlines()
        if not lines:
            raise CorruptArtifactError("feedback log is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CorruptArtifactError(
                f"feedback header is not JSON: {exc}") from exc
        meta = header.get("__meta__") if isinstance(header, dict) else None
        if not isinstance(meta, dict):
            raise CorruptArtifactError("feedback log has no __meta__ header")
        if meta.get("format") != FEEDBACK_FORMAT:
            raise CorruptArtifactError(
                f"not a feedback log: format={meta.get('format')!r}")
        if meta.get("version") != FEEDBACK_VERSION:
            raise StaleArtifactError(
                f"feedback log version {meta.get('version')!r}, "
                f"expected {FEEDBACK_VERSION}")
        body = [ln + "\n" for ln in lines[1:]]
        crc = checksum_lines(body)
        if meta.get("crc32") != crc:
            raise CorruptArtifactError(
                f"feedback checksum mismatch: header says "
                f"{meta.get('crc32')!r}, records hash to {crc!r}")
        if meta.get("records") != len(body):
            raise CorruptArtifactError(
                f"feedback record count mismatch: header says "
                f"{meta.get('records')!r}, found {len(body)}")
        records = []
        for i, line in enumerate(body):
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CorruptArtifactError(
                    f"feedback line {i + 2} is not JSON: {exc}") from exc
            records.append(validate_record(data, where=f"line {i + 2}"))
        return records

    def load_or_quarantine(self) -> tuple[list[FeedbackRecord],
                                          Path | None]:
        """The adaptation loop's ingestion path: a corrupt or stale log
        is quarantined (renamed ``*.corrupt``) and ingestion continues
        with an empty window instead of crashing the sidecar.

        Counts ``adapt.feedback.loads`` = ``adapt.feedback.ok`` +
        ``adapt.feedback.quarantined`` on the ambient registry.
        """
        registry = get_registry()
        registry.counter("adapt.feedback.loads").inc()
        with self._lock():
            try:
                records = self.load()
            except (CorruptArtifactError, StaleArtifactError):
                registry.counter("adapt.feedback.quarantined").inc()
                moved = quarantine(self.path)
                return [], moved
        registry.counter("adapt.feedback.ok").inc()
        return records, None

    # -- writing ---------------------------------------------------------
    def append(self, records: list[FeedbackRecord]) -> Path:
        """Append validated records, atomically rewriting the log.

        The existing log is loaded strictly first — appending to a
        corrupt log raises rather than laundering garbage under a
        fresh checksum.  The load-merge-rewrite runs under the log's
        file lock so concurrent producers cannot lose each other's
        records.

        Records carrying the default ``tick=0`` on a non-empty log (or
        after another default-tick record in the same batch) are
        auto-stamped with the next monotonic tick: the adaptation
        fence filters on ``tick > fence_tick``, so a producer that
        never manages ticks would otherwise have every row after the
        first batch silently dropped as already-judged.  An explicit
        non-zero tick is always kept as given.
        """
        with self._lock():
            existing = self.load()
            last = max((r.tick for r in existing), default=-1)
            stamped = []
            for r in records:
                v = validate_record(r.to_dict())
                if v.tick == 0 and last >= 0:
                    v = dataclasses.replace(v, tick=last + 1)
                stamped.append(v)
                last = max(last, v.tick)
            merged = existing + stamped
            body = [_record_line(r) for r in merged]
            header = json.dumps({"__meta__": {
                "format": FEEDBACK_FORMAT, "version": FEEDBACK_VERSION,
                "records": len(body), "crc32": checksum_lines(body),
            }}, sort_keys=True, separators=(",", ":")) + "\n"
            atomic_write_text(self.path, header + "".join(body))
        get_registry().counter("adapt.feedback.appended").inc(len(records))
        return self.path

    def window(self, size: int) -> list[FeedbackRecord]:
        """The most recent *size* records (by file order, which the
        producer keeps tick-sorted), strictly loaded."""
        records = self.load()
        return records[-size:] if size > 0 else []
