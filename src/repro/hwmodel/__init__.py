"""Hardware substrate: cluster specifications, synthetic system probes,
and the feature-extraction script of PML-MPI's offline/online stages."""

from .extract import (
    HARDWARE_FEATURE_NAMES,
    ExtractionError,
    HardwareFeatures,
    cluster_features,
    extract_features,
)
from .probe import ProbeOutput, probe_cluster
from .registry import (
    CLUSTER_NAMES,
    all_clusters,
    get_cluster,
    register_cluster,
    training_clusters,
    unregister_cluster,
)
from .specs import (
    ClusterSpec,
    CpuSpec,
    CpuVendor,
    InfinibandGeneration,
    InterconnectFamily,
    InterconnectSpec,
    MemorySpec,
    NodeSpec,
    PcieSpec,
)

__all__ = [
    "CLUSTER_NAMES",
    "HARDWARE_FEATURE_NAMES",
    "ClusterSpec",
    "CpuSpec",
    "CpuVendor",
    "ExtractionError",
    "HardwareFeatures",
    "InfinibandGeneration",
    "InterconnectFamily",
    "InterconnectSpec",
    "MemorySpec",
    "NodeSpec",
    "PcieSpec",
    "ProbeOutput",
    "all_clusters",
    "cluster_features",
    "extract_features",
    "get_cluster",
    "probe_cluster",
    "register_cluster",
    "training_clusters",
    "unregister_cluster",
]
