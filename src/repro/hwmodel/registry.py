"""The 18-cluster registry reproducing the paper's Table I.

Each entry pairs the Table I row (processor, interconnect, and the counts
of node/PPN/message-size settings sampled there) with concrete hardware
parameters taken from public vendor datasheets.  The paper's feature
extractor reads these quantities from ``lscpu``/``ibstat``/``lspci``; our
probe generator (:mod:`repro.hwmodel.probe`) renders the same text from
these specs so the extraction code path is identical.

Message-size grids are powers of two: 21 sizes = 1 B .. 1 MiB for every
cluster except MRI, which the paper samples at 16 sizes (1 B .. 32 KiB).
"""

from __future__ import annotations

from .specs import (
    ClusterSpec,
    CpuSpec,
    CpuVendor,
    InfinibandGeneration,
    InterconnectFamily,
    InterconnectSpec,
    MemorySpec,
    NodeSpec,
    PcieSpec,
)

_MSG_21 = tuple(2**k for k in range(21))  # 1 B .. 1 MiB
_MSG_16 = tuple(2**k for k in range(16))  # 1 B .. 32 KiB


def _ib(gen: InfinibandGeneration, hca: str, latency_us: float,
        width: int = 4) -> InterconnectSpec:
    return InterconnectSpec(
        family=InterconnectFamily.INFINIBAND,
        generation=gen,
        link_width=width,
        hca_model=hca,
        base_latency_us=latency_us,
    )


def _opa(latency_us: float = 1.1) -> InterconnectSpec:
    return InterconnectSpec(
        family=InterconnectFamily.OMNIPATH,
        generation=InfinibandGeneration.OPA100,
        link_width=4,
        hca_model="Intel Omni-Path HFI Silicon 100",
        base_latency_us=latency_us,
    )


def _build_registry() -> dict[str, ClusterSpec]:
    reg: dict[str, ClusterSpec] = {}

    def add(spec: ClusterSpec) -> None:
        if spec.name in reg:
            raise ValueError(f"duplicate cluster {spec.name}")
        reg[spec.name] = spec

    # ----------------------------------------------------------------- RI2
    add(ClusterSpec(
        name="RI2",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon CPU E5-2680 v4 @ 2.40GHz",
                        CpuVendor.INTEL, 2.40, 3.30,
                        cores_per_socket=14, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=70.0),
            memory=MemorySpec(128, 76.8),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-4 VPI", 1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16, 28),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------------ RI
    add(ClusterSpec(
        name="RI",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon CPU E5630 @ 2.53GHz",
                        CpuVendor.INTEL, 2.53, 2.80,
                        cores_per_socket=4, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=24.0),
            memory=MemorySpec(24, 25.6),
            interconnect=_ib(InfinibandGeneration.QDR,
                             "Mellanox ConnectX-2 VPI", 1.70),
            pcie=PcieSpec(2.0, 8),
        ),
        max_nodes=2,
        node_counts=(2,),
        ppn_values=(4, 8),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------- Haswell
    add(ClusterSpec(
        name="Haswell",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon CPU E5-2687W v3 @ 3.10GHz",
                        CpuVendor.INTEL, 3.10, 3.50,
                        cores_per_socket=10, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=50.0),
            memory=MemorySpec(64, 68.0),
            interconnect=_ib(InfinibandGeneration.HDR,
                             "Mellanox ConnectX-6 VPI", 0.80),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8,
        node_counts=(2, 4, 8),
        ppn_values=(1, 2, 4, 8, 16, 20),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------ Catalyst
    add(ClusterSpec(
        name="Catalyst",
        node=NodeSpec(
            cpu=CpuSpec("FUJITSU A64FX", CpuVendor.FUJITSU, 1.80, 2.20,
                        cores_per_socket=48, threads_per_core=1, sockets=1,
                        numa_nodes=4, l3_cache_mib=32.0),
            memory=MemorySpec(32, 1024.0),  # HBM2
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-5 VPI", 1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8,
        node_counts=(1, 2, 4, 8),
        ppn_values=(1, 2, 4, 12, 24, 48),
        msg_sizes=_MSG_21,
    ))

    # --------------------------------------------------------------- Spock
    add(ClusterSpec(
        name="Spock",
        node=NodeSpec(
            cpu=CpuSpec("AMD EPYC 7763 64-Core Processor",
                        CpuVendor.AMD, 2.45, 3.50,
                        cores_per_socket=64, threads_per_core=2, sockets=1,
                        numa_nodes=4, l3_cache_mib=256.0),
            memory=MemorySpec(256, 204.8),
            interconnect=_ib(InfinibandGeneration.HDR,
                             "Mellanox ConnectX-6 VPI", 0.75),
            pcie=PcieSpec(4.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16, 32, 48, 64),
        msg_sizes=_MSG_21,
    ))

    # ---------------------------------------------------------------- Rome
    add(ClusterSpec(
        name="Rome",
        node=NodeSpec(
            cpu=CpuSpec("AMD EPYC 7601 32-Core Processor",
                        CpuVendor.AMD, 2.20, 3.20,
                        cores_per_socket=32, threads_per_core=2, sockets=2,
                        numa_nodes=8, l3_cache_mib=128.0),
            memory=MemorySpec(256, 170.7),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-4 VPI", 1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8,
        node_counts=(1, 2, 4, 8),
        ppn_values=(1, 2, 4, 8, 12, 16, 24, 32, 48, 64),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------ Frontera
    add(ClusterSpec(
        name="Frontera",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon Platinum 8280 CPU @ 2.70GHz",
                        CpuVendor.INTEL, 2.70, 4.00,
                        cores_per_socket=28, threads_per_core=1, sockets=2,
                        numa_nodes=2, l3_cache_mib=77.0),
            memory=MemorySpec(192, 140.8),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-6 VPI", 0.90),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8192,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16, 28, 32, 56),
        msg_sizes=_MSG_21,
    ))

    # ---------------------------------------------------------------- LLNL
    add(ClusterSpec(
        name="LLNL",
        node=NodeSpec(
            cpu=CpuSpec("AMD EPYC 7401 24-Core Processor",
                        CpuVendor.AMD, 2.00, 3.00,
                        cores_per_socket=24, threads_per_core=2, sockets=2,
                        numa_nodes=8, l3_cache_mib=128.0),
            memory=MemorySpec(128, 170.7),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-4 VPI", 1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 24, 48),
        msg_sizes=_MSG_21,
    ))

    # -------------------------------------------------------- Frontera RTX
    add(ClusterSpec(
        name="Frontera RTX",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon CPU E5-2620 v4 @ 2.10GHz",
                        CpuVendor.INTEL, 2.10, 3.00,
                        cores_per_socket=8, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=40.0),
            memory=MemorySpec(128, 68.3),
            interconnect=_ib(InfinibandGeneration.FDR,
                             "Mellanox ConnectX-3 VPI", 1.30),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------- Hartree
    add(ClusterSpec(
        name="Hartree",
        node=NodeSpec(
            cpu=CpuSpec("Cavium ThunderX2 CN9975",
                        CpuVendor.ARM, 2.00, 2.50,
                        cores_per_socket=28, threads_per_core=4, sockets=2,
                        numa_nodes=2, l3_cache_mib=64.0),
            memory=MemorySpec(128, 249.6),
            interconnect=_ib(InfinibandGeneration.FDR,
                             "Mellanox ConnectX-3 VPI", 1.30),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8,
        node_counts=(2, 4, 8),
        ppn_values=(1, 4, 8, 16, 28),
        msg_sizes=_MSG_21,
    ))

    # --------------------------------------------------------------- Mayer
    add(ClusterSpec(
        name="Mayer",
        node=NodeSpec(
            cpu=CpuSpec("Cavium ThunderX2 CN9975",
                        CpuVendor.ARM, 2.00, 2.50,
                        cores_per_socket=28, threads_per_core=4, sockets=2,
                        numa_nodes=2, l3_cache_mib=64.0),
            memory=MemorySpec(128, 249.6),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-5 VPI", 1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8,
        node_counts=(1, 2, 4, 8),
        ppn_values=(1, 2, 4, 8, 16, 28, 56),
        msg_sizes=_MSG_21,
    ))

    # ----------------------------------------------------------------- Ray
    add(ClusterSpec(
        name="Ray",
        node=NodeSpec(
            cpu=CpuSpec("IBM POWER8 S822LC", CpuVendor.IBM, 2.92, 4.02,
                        cores_per_socket=10, threads_per_core=8, sockets=2,
                        numa_nodes=2, l3_cache_mib=160.0),
            memory=MemorySpec(256, 230.0),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-4 VPI", 1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=8,
        node_counts=(1, 2, 4, 8),
        ppn_values=(4, 8, 16),
        msg_sizes=_MSG_21,
    ))

    # -------------------------------------------------------------- Sierra
    add(ClusterSpec(
        name="Sierra",
        node=NodeSpec(
            cpu=CpuSpec("IBM POWER9 AC922", CpuVendor.IBM, 2.30, 3.80,
                        cores_per_socket=22, threads_per_core=4, sockets=2,
                        numa_nodes=2, l3_cache_mib=240.0),
            memory=MemorySpec(256, 340.0),
            interconnect=_ib(InfinibandGeneration.EDR,
                             "Mellanox ConnectX-5 VPI", 0.95),
            pcie=PcieSpec(4.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16, 22, 32, 44),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------- Bridges
    add(ClusterSpec(
        name="Bridges",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon CPU E5-2695 v3 @ 2.30GHz",
                        CpuVendor.INTEL, 2.30, 3.30,
                        cores_per_socket=14, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=70.0),
            memory=MemorySpec(128, 68.3),
            interconnect=_opa(1.10),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16, 28),
        msg_sizes=_MSG_21,
    ))

    # --------------------------------------------------------------- Bebop
    add(ClusterSpec(
        name="Bebop",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon CPU E5-2695 v4 @ 2.10GHz",
                        CpuVendor.INTEL, 2.10, 3.30,
                        cores_per_socket=18, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=90.0),
            memory=MemorySpec(128, 76.8),
            interconnect=_opa(1.10),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 12, 16),
        ppn_values=(1, 4, 8, 16, 36),
        msg_sizes=_MSG_21,
    ))

    # ------------------------------------------------------------ TACC KNL
    add(ClusterSpec(
        name="TACC KNL",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon Phi CPU 7250 @ 1.40GHz",
                        CpuVendor.INTEL, 1.40, 1.60,
                        cores_per_socket=68, threads_per_core=4, sockets=1,
                        numa_nodes=2, l3_cache_mib=34.0),
            memory=MemorySpec(112, 380.0),  # MCDRAM-dominated
            interconnect=_opa(1.20),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 12, 16),
        ppn_values=(1, 4, 8, 16, 32, 64),
        msg_sizes=_MSG_21,
    ))

    # -------------------------------------------------------- TACC Skylake
    add(ClusterSpec(
        name="TACC Skylake",
        node=NodeSpec(
            cpu=CpuSpec("Intel Xeon Platinum 8170", CpuVendor.INTEL,
                        2.10, 3.70,
                        cores_per_socket=26, threads_per_core=2, sockets=2,
                        numa_nodes=2, l3_cache_mib=71.5),
            memory=MemorySpec(192, 119.2),
            interconnect=_opa(1.00),
            pcie=PcieSpec(3.0, 16),
        ),
        max_nodes=16,
        node_counts=(1, 2, 4, 8, 16),
        ppn_values=(1, 2, 4, 8, 16, 24, 48, 52),
        msg_sizes=_MSG_21,
    ))

    # ----------------------------------------------------------------- MRI
    add(ClusterSpec(
        name="MRI",
        node=NodeSpec(
            cpu=CpuSpec("AMD EPYC 7713 64-Core Processor",
                        CpuVendor.AMD, 2.00, 3.675,
                        cores_per_socket=64, threads_per_core=2, sockets=2,
                        numa_nodes=8, l3_cache_mib=512.0),
            memory=MemorySpec(256, 409.6),
            interconnect=_ib(InfinibandGeneration.HDR,
                             "Mellanox ConnectX-6 VPI", 0.70),
            pcie=PcieSpec(4.0, 16),
        ),
        max_nodes=8,
        node_counts=(1, 2, 4, 8),
        ppn_values=(1, 2, 4, 8, 16, 32, 64, 128),
        msg_sizes=_MSG_16,
    ))

    return reg


_REGISTRY = _build_registry()
_CUSTOM: dict[str, ClusterSpec] = {}

#: Cluster names in Table I order (custom registrations excluded).
CLUSTER_NAMES: tuple[str, ...] = tuple(_REGISTRY)


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster by its Table I name or a custom registration
    (case-insensitive)."""
    for table in (_REGISTRY, _CUSTOM):
        try:
            return table[name]
        except KeyError:
            for key, spec in table.items():
                if key.lower() == name.lower():
                    return spec
    raise KeyError(
        f"unknown cluster {name!r}; known: "
        f"{', '.join((*_REGISTRY, *_CUSTOM))}")


def register_cluster(spec: ClusterSpec,
                     replace: bool = False) -> ClusterSpec:
    """Add a user-defined cluster so datasets, feature extraction and
    tuning tables can reference it by name.

    Table I names cannot be shadowed.  Registrations are
    process-lifetime only (they are configuration, not data).
    """
    if spec.name in _REGISTRY:
        raise ValueError(
            f"{spec.name!r} is a Table I cluster and cannot be replaced")
    if spec.name in _CUSTOM and not replace:
        raise ValueError(
            f"custom cluster {spec.name!r} already registered "
            f"(pass replace=True to overwrite)")
    _CUSTOM[spec.name] = spec
    return spec


def unregister_cluster(name: str) -> None:
    """Remove a custom registration (no-op semantics are an error)."""
    try:
        del _CUSTOM[name]
    except KeyError:
        raise KeyError(f"no custom cluster {name!r} registered") from None


def all_clusters() -> list[ClusterSpec]:
    """All 18 Table I clusters (custom registrations excluded — the
    paper's dataset is fixed; pass custom specs explicitly)."""
    return list(_REGISTRY.values())


def training_clusters(exclude: tuple[str, ...] = ()) -> list[ClusterSpec]:
    """All clusters except the named ones (e.g. held-out eval clusters)."""
    drop = {e.lower() for e in exclude}
    return [c for c in _REGISTRY.values() if c.name.lower() not in drop]
