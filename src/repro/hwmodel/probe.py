"""Synthetic system-probe output.

The paper's feature-extraction script shells out to built-in Linux
commands (``lscpu``, ``ibstat``, ``lspci``, and a STREAM-style memory
probe) and parses their text output.  We cannot run those commands on the
paper's clusters, so this module renders *faithful* command output from a
:class:`~repro.hwmodel.specs.ClusterSpec`.  The extraction code in
:mod:`repro.hwmodel.extract` then parses this text exactly as it would
parse real command output — the substitution keeps the production code
path intact end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import ClusterSpec, InterconnectFamily


@dataclass(frozen=True)
class ProbeOutput:
    """Raw text of every probe command run on one node."""

    lscpu: str
    ibstat: str
    lspci: str
    meminfo: str
    stream: str


def render_lscpu(spec: ClusterSpec) -> str:
    """Render ``lscpu`` output for one node of *spec*."""
    cpu = spec.node.cpu
    lines = [
        "Architecture:        x86_64"
        if cpu.vendor.name in ("INTEL", "AMD") else
        "Architecture:        aarch64"
        if cpu.vendor.name in ("ARM", "FUJITSU") else
        "Architecture:        ppc64le",
        f"CPU(s):              {cpu.threads_per_node}",
        f"Thread(s) per core:  {cpu.threads_per_core}",
        f"Core(s) per socket:  {cpu.cores_per_socket}",
        f"Socket(s):           {cpu.sockets}",
        f"NUMA node(s):        {cpu.numa_nodes}",
        f"Vendor ID:           {cpu.vendor.value}",
        f"Model name:          {cpu.model_name}",
        f"CPU MHz:             {cpu.base_clock_ghz * 1000:.3f}",
        f"CPU max MHz:         {cpu.max_clock_ghz * 1000:.4f}",
        f"CPU min MHz:         {cpu.base_clock_ghz * 1000 / 2:.4f}",
        # lscpu reports the per-socket L3 size.
        f"L3 cache:            {cpu.l3_cache_mib / cpu.sockets * 1024:.0f}K",
    ]
    return "\n".join(lines) + "\n"


_IB_RATE_NAME = {
    8.0: "QDR", 13.64: "FDR", 25.0: "EDR", 50.0: "HDR", 25.0781: "OPA",
}


def render_ibstat(spec: ClusterSpec) -> str:
    """Render ``ibstat`` output (one active port)."""
    ic = spec.node.interconnect
    rate_name = _IB_RATE_NAME[ic.generation.value]
    # ibstat reports the *aggregate* link rate rounded to the marketing
    # number (e.g. 100 for EDR x4).
    marketing_rate = {
        "QDR": 40, "FDR": 56, "EDR": 100, "HDR": 200, "OPA": 100,
    }[rate_name] * ic.link_width // 4
    ca_type = ("hfi1" if ic.family is InterconnectFamily.OMNIPATH
               else ic.hca_model.replace(" ", "_"))
    return (
        f"CA '{ca_type}'\n"
        f"\tCA type: {ic.hca_model}\n"
        f"\tNumber of ports: 1\n"
        f"\tPort 1:\n"
        f"\t\tState: Active\n"
        f"\t\tPhysical state: LinkUp\n"
        f"\t\tRate: {marketing_rate}\n"
        f"\t\tLink layer: "
        f"{'InfiniBand' if ic.family is InterconnectFamily.INFINIBAND else 'Omni-Path'}\n"
        f"\t\tActive width: {ic.link_width}X\n"
        f"\t\tActive speed: {ic.generation.lane_gbps:.2f} Gbps\n"
    )


def render_lspci(spec: ClusterSpec) -> str:
    """Render the ``lspci -vv`` stanza for the HCA's PCIe link."""
    ic = spec.node.interconnect
    pcie = spec.node.pcie
    gts = {2.0: 5.0, 3.0: 8.0, 4.0: 16.0, 5.0: 32.0}[pcie.version]
    return (
        f"81:00.0 Infiniband controller: {ic.hca_model}\n"
        f"\tLnkCap:\tPort #0, Speed {gts}GT/s, Width x{pcie.lanes}\n"
        f"\tLnkSta:\tSpeed {gts}GT/s (ok), Width x{pcie.lanes} (ok)\n"
    )


def render_meminfo(spec: ClusterSpec) -> str:
    """Render the ``MemTotal`` line of ``/proc/meminfo``."""
    kib = int(spec.node.memory.capacity_gib * 1024 * 1024)
    return f"MemTotal:       {kib} kB\n"


def render_stream(spec: ClusterSpec) -> str:
    """Render a STREAM triad summary line (the paper's memory-bandwidth
    probe).  Best-rate is reported in MB/s as STREAM does."""
    mbs = spec.node.memory.bandwidth_gbs * 1000.0
    return (
        "Function    Best Rate MB/s  Avg time     Min time     Max time\n"
        f"Triad:      {mbs:14.1f}  0.011277     0.011154     0.011477\n"
    )


def probe_cluster(spec: ClusterSpec) -> ProbeOutput:
    """Run every synthetic probe on one node of *spec*."""
    return ProbeOutput(
        lscpu=render_lscpu(spec),
        ibstat=render_ibstat(spec),
        lspci=render_lspci(spec),
        meminfo=render_meminfo(spec),
        stream=render_stream(spec),
    )
