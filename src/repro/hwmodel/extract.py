"""Hardware feature extraction (the paper's Fig. 3 extraction script).

Parses the text output of the system probes (``lscpu``, ``ibstat``,
``lspci``, ``/proc/meminfo``, STREAM) into the 11 hardware features the
paper feeds to its ML model:

    CPU max clock, L3 cache size, memory bandwidth, core count, thread
    count, sockets, NUMA nodes, PCIe lanes, PCIe version, HCA link speed
    and HCA link width.

The parsers are deliberately written against the *text* formats, not the
spec objects, so they exercise the same code path the paper runs on live
clusters; :func:`extract_features` composes them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields

from .probe import ProbeOutput, probe_cluster
from .specs import ClusterSpec


class ExtractionError(ValueError):
    """A probe output did not contain an expected field."""


@dataclass(frozen=True)
class HardwareFeatures:
    """The 11 hardware features of the paper, in a fixed order.

    ``as_vector()`` yields them in declaration order; the feature-name
    list used for importance plots is :data:`HARDWARE_FEATURE_NAMES`.
    """

    cpu_max_clock_ghz: float
    l3_cache_mib: float
    memory_bandwidth_gbs: float
    core_count: int
    thread_count: int
    sockets: int
    numa_nodes: int
    pcie_lanes: int
    pcie_version: float
    link_speed_gbps: float  # per-lane effective data rate
    link_width: int

    def as_vector(self) -> list[float]:
        """Feature values in canonical order."""
        return [float(getattr(self, f.name)) for f in fields(self)]


#: Canonical hardware feature names (order matches ``as_vector``).
HARDWARE_FEATURE_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(HardwareFeatures)
)


def _search(pattern: str, text: str, what: str) -> re.Match:
    m = re.search(pattern, text, re.MULTILINE)
    if m is None:
        raise ExtractionError(f"could not find {what} (pattern {pattern!r})")
    return m


def parse_lscpu(text: str) -> dict[str, float]:
    """Parse the CPU-related features out of ``lscpu`` output."""
    max_mhz = float(_search(r"^CPU max MHz:\s+([\d.]+)", text,
                            "CPU max MHz").group(1))
    threads = int(_search(r"^CPU\(s\):\s+(\d+)", text, "CPU(s)").group(1))
    tpc = int(_search(r"^Thread\(s\) per core:\s+(\d+)", text,
                      "threads per core").group(1))
    cps = int(_search(r"^Core\(s\) per socket:\s+(\d+)", text,
                      "cores per socket").group(1))
    sockets = int(_search(r"^Socket\(s\):\s+(\d+)", text,
                          "sockets").group(1))
    numa = int(_search(r"^NUMA node\(s\):\s+(\d+)", text,
                       "NUMA nodes").group(1))
    l3_match = _search(r"^L3 cache:\s+([\d.]+)([KMG])i?B?", text, "L3 cache")
    l3_val = float(l3_match.group(1))
    l3_mib = l3_val * {"K": 1 / 1024, "M": 1.0, "G": 1024.0}[l3_match.group(2)]
    if threads != cps * sockets * tpc:
        raise ExtractionError(
            f"inconsistent lscpu topology: CPU(s)={threads} != "
            f"{cps} cores x {sockets} sockets x {tpc} threads"
        )
    return {
        "cpu_max_clock_ghz": max_mhz / 1000.0,
        "l3_cache_mib": l3_mib * sockets,  # lscpu reports per-socket L3
        "core_count": cps * sockets,
        "thread_count": threads,
        "sockets": sockets,
        "numa_nodes": numa,
    }


def parse_ibstat(text: str) -> dict[str, float]:
    """Parse per-lane link speed and link width out of ``ibstat``."""
    width = int(_search(r"Active width:\s+(\d+)X", text,
                        "active width").group(1))
    speed = float(_search(r"Active speed:\s+([\d.]+)\s*Gbps", text,
                          "active speed").group(1))
    return {"link_speed_gbps": speed, "link_width": width}


# GT/s -> PCIe version (LnkSta reports transfer rate, not version).
_GTS_TO_VERSION = {2.5: 1.0, 5.0: 2.0, 8.0: 3.0, 16.0: 4.0, 32.0: 5.0}


def parse_lspci(text: str) -> dict[str, float]:
    """Parse the HCA's PCIe link width and version out of ``lspci -vv``."""
    m = _search(r"LnkSta:\s*Speed\s+([\d.]+)GT/s.*Width x(\d+)", text,
                "PCIe link status")
    gts = float(m.group(1))
    if gts not in _GTS_TO_VERSION:
        raise ExtractionError(f"unknown PCIe transfer rate {gts} GT/s")
    return {"pcie_version": _GTS_TO_VERSION[gts],
            "pcie_lanes": int(m.group(2))}


def parse_stream(text: str) -> dict[str, float]:
    """Parse STREAM triad bandwidth (MB/s -> GB/s)."""
    mbs = float(_search(r"^Triad:\s+([\d.]+)", text,
                        "STREAM triad rate").group(1))
    return {"memory_bandwidth_gbs": mbs / 1000.0}


def parse_meminfo(text: str) -> dict[str, float]:
    """Parse node memory capacity (GiB) — used for feasibility checks,
    not as an ML feature."""
    kib = float(_search(r"^MemTotal:\s+(\d+)\s*kB", text,
                        "MemTotal").group(1))
    return {"memory_capacity_gib": kib / (1024.0 * 1024.0)}


def extract_features(probe: ProbeOutput) -> HardwareFeatures:
    """Assemble :class:`HardwareFeatures` from one node's probe output."""
    vals: dict[str, float] = {}
    vals.update(parse_lscpu(probe.lscpu))
    vals.update(parse_ibstat(probe.ibstat))
    vals.update(parse_lspci(probe.lspci))
    vals.update(parse_stream(probe.stream))
    return HardwareFeatures(
        cpu_max_clock_ghz=vals["cpu_max_clock_ghz"],
        l3_cache_mib=vals["l3_cache_mib"],
        memory_bandwidth_gbs=vals["memory_bandwidth_gbs"],
        core_count=int(vals["core_count"]),
        thread_count=int(vals["thread_count"]),
        sockets=int(vals["sockets"]),
        numa_nodes=int(vals["numa_nodes"]),
        pcie_lanes=int(vals["pcie_lanes"]),
        pcie_version=vals["pcie_version"],
        link_speed_gbps=vals["link_speed_gbps"],
        link_width=int(vals["link_width"]),
    )


def cluster_features(spec: ClusterSpec) -> HardwareFeatures:
    """Probe one node of *spec* and extract its hardware features.

    This is the full production path: spec -> rendered command output ->
    text parsers -> feature vector.
    """
    return extract_features(probe_cluster(spec))
