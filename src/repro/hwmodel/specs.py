"""Hardware specification dataclasses.

These are the static descriptions of the machines in the paper's Table I.
Every quantity that the PML-MPI feature-extraction script reads from a live
system (``lscpu``, ``ibstat``, ``lspci``, ``/proc/meminfo`` and friends) has
a corresponding field here, so the rest of the stack — the network cost
model, the synthetic probe-output generator, and the feature extractor —
can all be driven from one source of truth.

Units are SI unless the field name says otherwise: clocks in GHz, cache in
MiB, bandwidth in GB/s (decimal), link speed in Gb/s *per lane*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CpuVendor(enum.Enum):
    """CPU vendor, as reported in the ``Vendor ID`` row of ``lscpu``."""

    INTEL = "GenuineIntel"
    AMD = "AuthenticAMD"
    ARM = "ARM"
    IBM = "IBM"
    FUJITSU = "Fujitsu"


class InterconnectFamily(enum.Enum):
    """High-speed interconnect family."""

    INFINIBAND = "InfiniBand"
    OMNIPATH = "Omni-Path"


class InfinibandGeneration(enum.Enum):
    """InfiniBand signalling generations with per-lane *effective* data
    rate in Gb/s (after line coding).

    QDR uses 8b/10b coding (10 Gb/s signalling -> 8 Gb/s data); FDR uses
    64b/66b at 14.0625 Gb/s -> ~13.64 Gb/s; EDR and HDR are 64b/66b at
    25 and 50 Gb/s nominal data rate respectively.  Omni-Path is carried
    here as a pseudo-generation with 25 Gb/s lanes (OPA 100 = 4x25).
    """

    QDR = 8.0
    FDR = 13.64
    EDR = 25.0
    HDR = 50.0
    OPA100 = 25.0781  # distinct value so enum members stay unique

    @property
    def lane_gbps(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class CpuSpec:
    """A processor model as seen by ``lscpu``."""

    model_name: str
    vendor: CpuVendor
    base_clock_ghz: float
    max_clock_ghz: float
    cores_per_socket: int
    threads_per_core: int
    sockets: int
    numa_nodes: int
    l3_cache_mib: float  # total L3 per node (all sockets)

    @property
    def cores_per_node(self) -> int:
        """Physical cores in one node."""
        return self.cores_per_socket * self.sockets

    @property
    def threads_per_node(self) -> int:
        """Hardware threads in one node."""
        return self.cores_per_node * self.threads_per_core

    def __post_init__(self) -> None:
        if self.max_clock_ghz < self.base_clock_ghz:
            raise ValueError(
                f"{self.model_name}: max clock {self.max_clock_ghz} GHz below "
                f"base clock {self.base_clock_ghz} GHz"
            )
        if min(self.cores_per_socket, self.threads_per_core, self.sockets,
               self.numa_nodes) < 1:
            raise ValueError(f"{self.model_name}: counts must be >= 1")
        if self.l3_cache_mib <= 0:
            raise ValueError(f"{self.model_name}: L3 cache must be positive")


@dataclass(frozen=True)
class MemorySpec:
    """Node-level memory subsystem."""

    capacity_gib: float
    bandwidth_gbs: float  # peak STREAM-like bandwidth per node

    def __post_init__(self) -> None:
        if self.capacity_gib <= 0 or self.bandwidth_gbs <= 0:
            raise ValueError("memory capacity/bandwidth must be positive")


@dataclass(frozen=True)
class InterconnectSpec:
    """Host Channel Adapter + fabric description.

    ``link_width`` is the lane count (the ``x4`` in "EDR x4"); the usable
    node injection bandwidth is ``lane_gbps * link_width / 8`` GB/s times
    an efficiency factor applied by the network model.
    """

    family: InterconnectFamily
    generation: InfinibandGeneration
    link_width: int
    hca_model: str
    base_latency_us: float  # one-way small-message latency, switch included

    @property
    def link_speed_gbps(self) -> float:
        """Aggregate link data rate in Gb/s."""
        return self.generation.lane_gbps * self.link_width

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Raw unidirectional link bandwidth in bytes/second."""
        return self.link_speed_gbps * 1e9 / 8.0

    def __post_init__(self) -> None:
        if self.link_width < 1:
            raise ValueError("link width must be >= 1")
        if self.base_latency_us <= 0:
            raise ValueError("base latency must be positive")


@dataclass(frozen=True)
class PcieSpec:
    """PCIe connection between CPU and HCA."""

    version: float  # 3.0, 4.0, ...
    lanes: int

    # Per-lane data rates in GB/s (after encoding) indexed by version.
    _RATES = {2.0: 0.5, 3.0: 0.985, 4.0: 1.969, 5.0: 3.938}

    @property
    def bandwidth_gbs(self) -> float:
        """Usable PCIe bandwidth in GB/s."""
        return self._RATES[self.version] * self.lanes

    def __post_init__(self) -> None:
        if self.version not in self._RATES:
            raise ValueError(f"unsupported PCIe version {self.version}")
        if self.lanes not in (1, 2, 4, 8, 16, 32):
            raise ValueError(f"invalid PCIe lane count {self.lanes}")


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: CPU + memory + NIC + PCIe."""

    cpu: CpuSpec
    memory: MemorySpec
    interconnect: InterconnectSpec
    pcie: PcieSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A named cluster: homogeneous nodes plus the benchmark grid the
    paper sampled on it (Table I's #nodes/#ppn/#msg-size columns are the
    *counts* of distinct settings, reproduced here as explicit lists)."""

    name: str
    node: NodeSpec
    max_nodes: int
    node_counts: tuple[int, ...] = field(default=())
    ppn_values: tuple[int, ...] = field(default=())
    msg_sizes: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        for n in self.node_counts:
            if n > self.max_nodes:
                raise ValueError(
                    f"{self.name}: node count {n} exceeds max_nodes "
                    f"{self.max_nodes}"
                )
        for ppn in self.ppn_values:
            if ppn > self.node.cpu.threads_per_node:
                raise ValueError(
                    f"{self.name}: PPN {ppn} exceeds hardware threads "
                    f"{self.node.cpu.threads_per_node}"
                )

    @property
    def full_subscription_ppn(self) -> int:
        """PPN that uses every physical core."""
        return self.node.cpu.cores_per_node

    @property
    def half_subscription_ppn(self) -> int:
        """PPN that uses half the physical cores."""
        return max(1, self.node.cpu.cores_per_node // 2)

    def describe(self) -> str:
        """One-line human-readable summary (Table I row)."""
        ic = self.node.interconnect
        return (
            f"{self.name}: {self.node.cpu.model_name} | "
            f"{ic.family.value} ({ic.generation.name}) | "
            f"{len(self.node_counts)} node settings x "
            f"{len(self.ppn_values)} ppn x {len(self.msg_sizes)} msg sizes"
        )
