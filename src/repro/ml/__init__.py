"""From-scratch NumPy machine-learning library.

Implements the four model families the paper evaluates (Random Forest,
Gradient Boosting, KNN, SVM — Table II), the CART trees underneath, the
Gini feature-importance computation (Figs. 5-6), and the AUC-scored
cross-validation / grid-search machinery used for hyperparameter tuning
(Section V-C).  API mirrors scikit-learn where practical.
"""

from .boosting import GradientBoostingClassifier
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier
from .metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    roc_auc_score,
)
from .model_selection import (
    GridSearchCV,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from .preprocessing import LabelEncoder, StandardScaler
from .serialize import dump_model, load_model, load_model_file, save_model
from .svm import SVC
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "SVC",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GridSearchCV",
    "KFold",
    "KNeighborsClassifier",
    "LabelEncoder",
    "RandomForestClassifier",
    "StandardScaler",
    "StratifiedKFold",
    "accuracy_score",
    "classification_report",
    "confusion_matrix",
    "cross_val_score",
    "dump_model",
    "load_model",
    "load_model_file",
    "roc_auc_score",
    "save_model",
    "train_test_split",
]
