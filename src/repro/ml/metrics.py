"""Classification metrics: accuracy, confusion matrix, and the
one-vs-rest macro AUC the paper uses for imbalance-robust model
selection (Section V-C)."""

from __future__ import annotations

import numpy as np


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if len(y_true) == 0:
        raise ValueError("empty input")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     labels: np.ndarray | None = None) -> np.ndarray:
    """Rows = true classes, columns = predicted classes."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    mat = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        mat[index[t], index[p]] += 1
    return mat


def _binary_auc(y: np.ndarray, score: np.ndarray) -> float:
    """Mann-Whitney AUC with midrank tie handling.

    ``y`` is boolean (positive class); ``score`` the classifier score.
    """
    n_pos = int(y.sum())
    n_neg = len(y) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("binary AUC needs both classes present")
    order = np.argsort(score, kind="stable")
    ranks = np.empty(len(score))
    sorted_scores = score[order]
    # Midranks for ties.
    i = 0
    pos = 1.0
    while i < len(score):
        j = i
        while j + 1 < len(score) and sorted_scores[j + 1] == \
                sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (pos + pos + (j - i))
        pos += j - i + 1
        i = j + 1
    rank_sum = ranks[y].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray,
                  labels: np.ndarray | None = None) -> float:
    """Macro-averaged one-vs-rest AUC for multiclass problems.

    ``y_score`` has one column per class in ``labels`` order (defaults
    to the sorted unique labels of ``y_true``).  Classes absent from
    ``y_true`` are skipped, which keeps cross-validation folds with
    missing rare classes well-defined — the class-imbalance robustness
    the paper selects this metric for.
    """
    y_true = np.asarray(y_true)
    y_score = np.asarray(y_score, dtype=np.float64)
    if y_score.ndim == 1:
        # Binary convenience form: score of the positive class.
        classes = np.unique(y_true)
        if len(classes) != 2:
            raise ValueError("1-D scores require exactly two classes")
        return _binary_auc(y_true == classes[1], y_score)
    if labels is None:
        labels = np.unique(y_true)
        if y_score.shape[1] != len(labels):
            raise ValueError(
                f"y_score has {y_score.shape[1]} columns but y_true has "
                f"{len(labels)} classes; pass labels= explicitly")
    aucs = []
    for col, label in enumerate(labels):
        mask = y_true == label
        if 0 < mask.sum() < len(y_true):
            aucs.append(_binary_auc(mask, y_score[:, col]))
    if not aucs:
        raise ValueError("no class with both positives and negatives")
    return float(np.mean(aucs))


def classification_report(y_true: np.ndarray,
                          y_pred: np.ndarray) -> dict[str, dict[str, float]]:
    """Per-class precision/recall/F1 plus accuracy, as a dict."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    report: dict[str, dict[str, float]] = {}
    for label in labels:
        tp = int(np.sum((y_true == label) & (y_pred == label)))
        fp = int(np.sum((y_true != label) & (y_pred == label)))
        fn = int(np.sum((y_true == label) & (y_pred != label)))
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (2 * precision * recall / (precision + recall)
              if precision + recall else 0.0)
        report[str(label)] = {
            "precision": precision, "recall": recall, "f1": f1,
            "support": int(np.sum(y_true == label)),
        }
    report["accuracy"] = {"accuracy": accuracy_score(y_true, y_pred),
                          "support": len(y_true)}
    return report
