"""Train/test splitting, cross-validation, and grid search.

``GridSearchCV`` scores with accuracy or one-vs-rest macro AUC — the
paper tunes hyperparameters with AUC-based cross-validation to guard
against the dataset's class imbalance (Section V-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from .metrics import accuracy_score, roc_auc_score
from .parallel import parallel_map


def rebalance_empty_side(train_parts: list[np.ndarray],
                         test_parts: list[np.ndarray]
                         ) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Guarantee both sides of a stratified split are non-empty.

    Per-class ``round(len * test_size)`` can be 0 (or ``len``) for
    *every* class, leaving one side empty.  Move one record out of the
    largest class on the full side — deterministic, and the least
    disturbance to the class proportions.
    """
    if sum(len(p) for p in test_parts) == 0:
        big = int(np.argmax([len(p) for p in train_parts]))
        test_parts[big] = train_parts[big][:1]
        train_parts[big] = train_parts[big][1:]
    if sum(len(p) for p in train_parts) == 0:
        big = int(np.argmax([len(p) for p in test_parts]))
        train_parts[big] = test_parts[big][:1]
        test_parts[big] = test_parts[big][1:]
    return train_parts, test_parts


def train_test_split(X: np.ndarray, y: np.ndarray, test_size: float = 0.3,
                     random_state: int | None = None,
                     stratify: np.ndarray | None = None
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """Random (optionally stratified) split; returns
    X_train, X_test, y_train, y_test.  Both sides are guaranteed
    non-empty (needs at least 2 samples)."""
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have the same length")
    if not 0.0 < test_size < 1.0:
        raise ValueError("test_size must be in (0, 1)")
    n = len(X)
    if n < 2:
        raise ValueError(
            f"cannot split {n} sample(s) into non-empty train and "
            f"test sides")
    rng = np.random.default_rng(random_state)
    if stratify is None:
        perm = rng.permutation(n)
        n_test = min(n - 1, max(1, int(round(n * test_size))))
        test_idx, train_idx = perm[:n_test], perm[n_test:]
    else:
        stratify = np.asarray(stratify)
        test_parts, train_parts = [], []
        for label in np.unique(stratify):
            idx = rng.permutation(np.flatnonzero(stratify == label))
            n_test = int(round(len(idx) * test_size))
            test_parts.append(idx[:n_test])
            train_parts.append(idx[n_test:])
        train_parts, test_parts = rebalance_empty_side(train_parts,
                                                       test_parts)
        test_idx = np.concatenate(test_parts)
        train_idx = np.concatenate(train_parts)
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class KFold:
    """Plain k-fold splitter."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 random_state: int | None = None) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X: np.ndarray, y: np.ndarray | None = None
              ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds")
        idx = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.random_state).shuffle(idx)
        for fold in np.array_split(idx, self.n_splits):
            mask = np.ones(n, dtype=bool)
            mask[fold] = False
            yield np.flatnonzero(mask), np.sort(fold)


class StratifiedKFold(KFold):
    """K-fold preserving per-class proportions."""

    def split(self, X: np.ndarray, y: np.ndarray | None = None
              ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if y is None:
            raise ValueError("StratifiedKFold requires y")
        y = np.asarray(y)
        n = len(y)
        rng = np.random.default_rng(self.random_state)
        folds: list[list[int]] = [[] for _ in range(self.n_splits)]
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(idx)
            for i, chunk in enumerate(np.array_split(idx, self.n_splits)):
                folds[i].extend(chunk.tolist())
        for fold in folds:
            fold_arr = np.asarray(sorted(fold), dtype=np.int64)
            mask = np.ones(n, dtype=bool)
            mask[fold_arr] = False
            yield np.flatnonzero(mask), fold_arr


def _clone(estimator: Any, **override: Any) -> Any:
    params = estimator.get_params()
    params.update(override)
    return type(estimator)(**params)


def _score(estimator: Any, X: np.ndarray, y: np.ndarray,
           scoring: str) -> float:
    if scoring == "accuracy":
        return accuracy_score(y, estimator.predict(X))
    if scoring == "auc":
        proba = estimator.predict_proba(X)
        return roc_auc_score(y, proba, labels=estimator.classes_)
    raise ValueError(f"unknown scoring {scoring!r}")


def cross_val_score(estimator: Any, X: np.ndarray, y: np.ndarray,
                    cv: int = 5, scoring: str = "accuracy",
                    random_state: int | None = 0) -> np.ndarray:
    """Per-fold scores under stratified k-fold CV."""
    X = np.asarray(X)
    y = np.asarray(y)
    splitter = StratifiedKFold(cv, shuffle=True, random_state=random_state)
    scores = []
    for train_idx, test_idx in splitter.split(X, y):
        model = _clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        scores.append(_score(model, X[test_idx], y[test_idx], scoring))
    return np.asarray(scores)


@dataclass
class GridSearchResult:
    params: dict[str, Any]
    mean_score: float
    fold_scores: np.ndarray


def _evaluate_candidate(payload: tuple) -> np.ndarray:
    """CV-score one hyperparameter combination (module-level so the
    grid-search process pool can pickle it)."""
    estimator, params, X, y, cv, scoring, random_state = payload
    return cross_val_score(_clone(estimator, **params), X, y, cv=cv,
                           scoring=scoring, random_state=random_state)


class GridSearchCV:
    """Exhaustive hyperparameter search with stratified CV.

    After ``fit``, exposes ``best_params_``, ``best_score_``,
    ``best_estimator_`` (refitted on the full data) and the full
    ``results_`` list.  ``n_jobs`` fans candidate evaluation over a
    process pool; candidates are scored independently with fixed fold
    seeds, so the selected model is identical at any worker count.
    """

    def __init__(self, estimator: Any, param_grid: dict[str, list],
                 scoring: str = "auc", cv: int = 5,
                 random_state: int | None = 0,
                 n_jobs: int | None = None) -> None:
        if not param_grid:
            raise ValueError("param_grid must not be empty")
        self.estimator = estimator
        self.param_grid = param_grid
        self.scoring = scoring
        self.cv = cv
        self.random_state = random_state
        self.n_jobs = n_jobs

    def _candidates(self) -> Iterator[dict[str, Any]]:
        keys = sorted(self.param_grid)
        for combo in itertools.product(*(self.param_grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GridSearchCV":
        X = np.asarray(X)
        y = np.asarray(y)
        candidates = list(self._candidates())
        fold_scores = parallel_map(
            _evaluate_candidate,
            [(self.estimator, params, X, y, self.cv, self.scoring,
              self.random_state) for params in candidates],
            self.n_jobs,
            work_units=len(candidates) * self.cv * len(X))
        self.results_: list[GridSearchResult] = []
        best: GridSearchResult | None = None
        for params, scores in zip(candidates, fold_scores):
            result = GridSearchResult(params, float(scores.mean()), scores)
            self.results_.append(result)
            if best is None or result.mean_score > best.mean_score:
                best = result
        assert best is not None
        self.best_params_ = best.params
        self.best_score_ = best.mean_score
        self.best_estimator_ = _clone(self.estimator, **best.params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.best_estimator_.predict(X)

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction through the refit best estimator's packed
        batch path, so a tuned ensemble serves (N, F) matrices with one
        arena traversal instead of the per-tree scalar loop.  Falls
        back to plain ``predict`` for estimators without a batch path
        (element-wise identical either way)."""
        if not hasattr(self, "best_estimator_"):
            raise RuntimeError("GridSearchCV is not fitted")
        batch = getattr(self.best_estimator_, "predict_batch", None)
        if batch is not None:
            return batch(X)
        return self.best_estimator_.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return _score(self.best_estimator_, X, y, "accuracy")
