"""CART decision trees (classifier and regressor), NumPy-vectorized.

The classifier minimizes Gini impurity (the paper's Eq. 1); the
regressor minimizes within-node variance (MSE) and is the weak learner
of gradient boosting.  Both record per-feature *impurity decrease*,
which :class:`~repro.ml.forest.RandomForestClassifier` accumulates into
the Gini feature importances of the paper's Figs. 5-6.

Trees are stored as flat arrays (feature, threshold, children, leaf
values) and built iteratively with an explicit stack; split search is
vectorized per feature via class-count prefix sums, so fitting the
paper-size dataset (~10k rows, 14 features) takes milliseconds per tree.
"""

from __future__ import annotations

import numpy as np

_LEAF = -1


class _TreeBase:
    """Shared array-based tree construction and traversal."""

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_features: int | str | None = None,
                 random_state: int | None = None) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

    # Subclass API -----------------------------------------------------
    def _node_stats(self, y: np.ndarray) -> np.ndarray:
        """Sufficient statistics of a node's targets."""
        raise NotImplementedError

    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _impurity_from_stats(self, stats: np.ndarray,
                             y: np.ndarray) -> float:
        """Node impurity, reusing the already-computed node statistics
        where the subclass can (hot path)."""
        return self._impurity(y)

    def _best_split_feature(self, x: np.ndarray, y: np.ndarray,
                            min_leaf: int) -> tuple[float, float]:
        """(impurity_decrease_weighted, threshold) of the best split of
        one feature column; (-inf, nan) when no valid split exists.
        The decrease is *not* normalized by the node size (caller
        weights it)."""
        raise NotImplementedError

    # Fitting -----------------------------------------------------------
    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, (int, np.integer)):
            return max(1, min(int(mf), n_features))
        raise ValueError(f"invalid max_features {mf!r}")

    def _fit_arrays(self, X: np.ndarray, y: np.ndarray) -> None:
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        k = self._resolve_max_features(d)
        max_depth = self.max_depth if self.max_depth is not None else 2**31

        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        values: list[np.ndarray] = []
        self.feature_importances_raw_ = np.zeros(d)

        # Stack of (sample_indices, depth, parent_slot, is_left)
        stack: list[tuple[np.ndarray, int, int, bool]] = [
            (np.arange(n), 0, -1, False)]
        while stack:
            idx, depth, parent, is_left = stack.pop()
            node_id = len(feature)
            if parent >= 0:
                if is_left:
                    left[parent] = node_id
                else:
                    right[parent] = node_id
            yi = y[idx]
            stats = self._node_stats(yi)
            values.append(stats)
            feature.append(_LEAF)
            threshold.append(np.nan)
            left.append(_LEAF)
            right.append(_LEAF)

            if (depth >= max_depth or len(idx) < self.min_samples_split
                    or self._impurity_from_stats(stats, yi) <= 1e-12):
                continue

            feats = (np.arange(d) if k == d
                     else rng.choice(d, size=k, replace=False))
            best_gain, best_feat, best_thr = 0.0, -1, np.nan
            for f in feats:
                gain, thr = self._best_split_feature(
                    X[idx, f], yi, self.min_samples_leaf)
                if gain > best_gain + 1e-15:
                    best_gain, best_feat, best_thr = gain, int(f), thr
            if best_feat < 0:
                continue

            mask = X[idx, best_feat] <= best_thr
            n_left = int(mask.sum())
            if n_left < self.min_samples_leaf or \
                    len(idx) - n_left < self.min_samples_leaf:
                continue

            feature[node_id] = best_feat
            threshold[node_id] = best_thr
            self.feature_importances_raw_[best_feat] += best_gain
            stack.append((idx[~mask], depth + 1, node_id, False))
            stack.append((idx[mask], depth + 1, node_id, True))

        self.feature_ = np.asarray(feature, dtype=np.int64)
        self.threshold_ = np.asarray(threshold)
        self.left_ = np.asarray(left, dtype=np.int64)
        self.right_ = np.asarray(right, dtype=np.int64)
        self.values_ = np.vstack(values)
        self.n_features_in_ = d

    def _check_fitted(self) -> None:
        if not hasattr(self, "feature_"):
            raise RuntimeError(f"{type(self).__name__} is not fitted")

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of X (vectorized descent)."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected (n, {self.n_features_in_}) input, "
                f"got {X.shape}")
        node = np.zeros(len(X), dtype=np.int64)
        # Track only rows still descending: the working set shrinks as
        # rows reach leaves instead of rescanning every row per level.
        rows = np.flatnonzero(self.feature_[node] != _LEAF)
        while len(rows):
            cur = node[rows]
            go_left = (X[rows, self.feature_[cur]]
                       <= self.threshold_[cur])
            nxt = np.where(go_left, self.left_[cur], self.right_[cur])
            node[rows] = nxt
            rows = rows[self.feature_[nxt] != _LEAF]
        return node

    @property
    def node_count(self) -> int:
        self._check_fitted()
        return len(self.feature_)

    @property
    def depth(self) -> int:
        """Maximum root-to-leaf depth of the fitted tree."""
        self._check_fitted()
        depths = np.zeros(self.node_count, dtype=np.int64)
        for node in range(self.node_count):  # parents precede children
            if self.feature_[node] != _LEAF:
                depths[self.left_[node]] = depths[node] + 1
                depths[self.right_[node]] = depths[node] + 1
        return int(depths.max(initial=0))


class PackedTrees:
    """Many fitted trees concatenated into one flat node arena.

    Packing concatenates every tree's node arrays (child indices
    shifted by the tree's offset) into one address space, so a single
    ``values_`` matrix serves the whole ensemble and every descent
    speaks arena indices.  This is the batch hot path of
    :meth:`RandomForestClassifier.predict_batch` and
    :meth:`GradientBoostingClassifier.decision_function_batch`.

    Traversal is organized around what the ensembles this framework
    trains actually look like (shallow, stump-heavy): stump trees
    resolve slab-wise grouped by root feature, deeper trees take a
    slab-wise root step and then walk jointly through one flat
    (tree, row) lane pool, and :meth:`mean_values` deduplicates large
    batches by threshold cell before descending at all.  Every lane
    still performs the same ``X[row, feature] <= threshold`` float64
    comparison as :meth:`_TreeBase.apply`, so leaf assignments are
    bit-identical to per-tree descent; :meth:`mean_values` accumulates
    in tree order, so ensemble probabilities are bit-identical to the
    scalar loop.
    """

    def __init__(self, trees: list) -> None:
        if not trees:
            raise ValueError("cannot pack an empty tree list")
        widths = {t.values_.shape[1] for t in trees}
        n_features = {t.n_features_in_ for t in trees}
        if len(widths) != 1 or len(n_features) != 1:
            raise ValueError("trees disagree on value width or "
                             "feature count")
        self.n_trees = len(trees)
        self.n_features_in_ = trees[0].n_features_in_
        roots = []
        feature, threshold, left, right, values = [], [], [], [], []
        offset = 0
        for tree in trees:
            roots.append(offset)
            feature.append(tree.feature_)
            threshold.append(tree.threshold_)
            # Shift child pointers of inner nodes into the arena;
            # leaves keep _LEAF (their children are never read).
            inner = tree.feature_ != _LEAF
            lt, rt = tree.left_.copy(), tree.right_.copy()
            lt[inner] += offset
            rt[inner] += offset
            left.append(lt)
            right.append(rt)
            values.append(tree.values_)
            offset += len(tree.feature_)
        self.roots_ = np.asarray(roots, dtype=np.int64)
        self.feature_ = np.concatenate(feature)
        self.threshold_ = np.concatenate(threshold)
        self.left_ = np.concatenate(left)
        self.right_ = np.concatenate(right)
        self.values_ = np.vstack(values)
        # Classify trees once at pack time: stumps (an internal root
        # whose both children are leaves) resolve with one column
        # compare and are batched per root feature in _leaf_columns;
        # deeper trees take the generic descent.
        root_feat = self.feature_[self.roots_]
        lchild = self.left_[self.roots_]
        rchild = self.right_[self.roots_]
        internal = root_feat != _LEAF
        # Leaf roots carry _LEAF (= -1) children; the gather then reads
        # the last arena node, which the `internal` mask discards.
        stump = internal & (self.feature_[lchild] == _LEAF) \
            & (self.feature_[rchild] == _LEAF)
        self._stump_groups = []
        stump_idx = np.flatnonzero(stump)
        for f in np.unique(root_feat[stump_idx]):
            tidx = stump_idx[root_feat[stump_idx] == f]
            roots_f = self.roots_[tidx]
            self._stump_groups.append(
                (int(f), tidx,
                 self.threshold_[roots_f][:, None],
                 self.left_[roots_f][:, None],
                 self.right_[roots_f][:, None]))
        # Deeper trees descend jointly (one flat lane pool); ordering
        # them by root feature makes each root-step write a contiguous
        # slab of the lane matrix.
        deep_idx = np.flatnonzero(internal & ~stump)
        order = np.argsort(root_feat[deep_idx], kind="stable")
        self._deep_order = deep_idx[order]
        self._deep_groups = []
        dfo = root_feat[self._deep_order]
        start = 0
        for f in np.unique(dfo):
            cnt = int((dfo == f).sum())
            sl = slice(start, start + cnt)
            roots_f = self.roots_[self._deep_order[sl]]
            self._deep_groups.append(
                (int(f), sl,
                 self.threshold_[roots_f][:, None],
                 self.left_[roots_f][:, None],
                 self.right_[roots_f][:, None]))
            start += cnt
        # Per-feature sorted threshold sets: rows whose every
        # ``x <= thr`` compare agrees land in identical leaves in every
        # tree, so mean_values dedups rows by threshold cell.  Horner
        # cell codes need the digit-size product to fit int64;
        # pathological forests disable the dedup instead of risking
        # overflow.
        self._feat_thresholds = [
            np.unique(self.threshold_[self.feature_ == f])
            for f in range(self.n_features_in_)]
        n_cells = 1
        for thr in self._feat_thresholds:
            n_cells *= len(thr) + 1
        self._cell_dedup = n_cells <= (1 << 62)

    def _check(self, X: np.ndarray) -> np.ndarray:
        X = np.ascontiguousarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected (n, {self.n_features_in_}) input, "
                f"got {X.shape}")
        return X

    def _leaf_columns(self, Xc: np.ndarray,
                      Xt: np.ndarray) -> list:
        """Per-tree arena leaf arrays (``None`` for single-leaf trees).

        Stump trees sharing a root feature resolve together: one
        ``(n_stumps, n_rows)`` compare-and-select per distinct feature
        replaces a descent per tree, and each tree's result is a
        contiguous row of it.  Deeper trees take their root step the
        same slab-wise way, then walk *jointly*: all still-internal
        (tree, row) lanes form one flat pool, so the loop runs
        max-depth iterations over a shrinking pool instead of a
        Python-level descent per tree.  Every lane performs the same
        ``X[row, feature] <= threshold`` float64 compare as
        :meth:`_TreeBase.apply`, so leaf assignments are bit-identical
        to per-tree descent.
        """
        cols: list = [None] * self.n_trees
        for f, tidx, thr, lt, rt in self._stump_groups:
            nodes = np.where(Xt[f][None, :] <= thr, lt, rt)
            for j, t in enumerate(tidx.tolist()):
                cols[t] = nodes[j]
        deep = self._deep_order
        if len(deep):
            n = Xc.shape[0]
            feature, threshold = self.feature_, self.threshold_
            left, right = self.left_, self.right_
            lanes = np.empty((len(deep), n), dtype=np.int64)
            for f, sl, thr, lt, rt in self._deep_groups:
                lanes[sl] = np.where(Xt[f][None, :] <= thr, lt, rt)
            flat = lanes.ravel()  # view: writes land in `lanes`
            act = np.flatnonzero(feature[flat] != _LEAF)
            while len(act):
                cur = flat[act]
                go_left = Xc[act % n, feature[cur]] <= threshold[cur]
                nxt = np.where(go_left, left[cur], right[cur])
                flat[act] = nxt
                act = act[feature[nxt] != _LEAF]
            for j, t in enumerate(deep.tolist()):
                cols[t] = lanes[j]
        return cols

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Arena leaf index of every (row, tree) pair: shape
        ``(len(X), n_trees)``."""
        Xc = self._check(X)
        Xt = np.ascontiguousarray(Xc.T)
        out = np.empty((len(Xc), self.n_trees), dtype=np.int64)
        for t, node in enumerate(self._leaf_columns(Xc, Xt)):
            out[:, t] = self.roots_[t] if node is None else node
        return out

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Per-(row, tree) leaf value rows: ``(len(X), n_trees, V)``."""
        return self.values_[self.apply(X)]

    def _cell_codes(self, Xc: np.ndarray) -> np.ndarray:
        """Threshold-cell id per row (Horner over per-feature digits).

        Two rows share a code iff ``x <= thr`` agrees between them for
        every threshold the ensemble compares that feature against —
        which makes their descents, leaves, and value sums *provably
        identical*, not merely close.
        """
        codes = np.zeros(len(Xc), dtype=np.int64)
        for f, thr in enumerate(self._feat_thresholds):
            if len(thr):
                codes *= len(thr) + 1
                codes += np.searchsorted(thr, Xc[:, f], side="left")
        return codes

    def mean_values(self, X: np.ndarray) -> np.ndarray:
        """Per-row mean of the leaf-value rows across the ensemble:
        ``(len(X), V)``.  The accumulation runs in tree order (t = 0,
        1, ...) so the float result is bit-identical to the scalar
        per-tree loop.  The ``(n, T, V)`` value cube is never
        materialized — each value column accumulates through a
        contiguous 1-D gather of the tree's leaf array.

        Large batches are deduplicated by threshold cell first (see
        :meth:`_cell_codes`): the ensemble runs once per *distinct*
        cell and the result rows are scattered back — same floats,
        because every member of a cell takes identical descents.
        """
        Xc = self._check(X)
        if self._cell_dedup and len(Xc) > 64:
            _, rep, inverse = np.unique(
                self._cell_codes(Xc), return_index=True,
                return_inverse=True)
            if len(rep) * 2 <= len(Xc):
                return self._mean_values_all(Xc[rep])[inverse]
        return self._mean_values_all(Xc)

    def _mean_values_all(self, Xc: np.ndarray) -> np.ndarray:
        Xt = np.ascontiguousarray(Xc.T)
        values = self.values_
        n_values = values.shape[1]
        vcols = [np.ascontiguousarray(values[:, j])
                 for j in range(n_values)]
        out = np.zeros((len(Xc), n_values))
        ocols = [out[:, j] for j in range(n_values)]
        for t, node in enumerate(self._leaf_columns(Xc, Xt)):
            if node is None:
                root = self.roots_[t]
                for j in range(n_values):
                    ocols[j] += vcols[j][root]
            else:
                for j in range(n_values):
                    ocols[j] += vcols[j][node]
        return out / self.n_trees


def _gini_from_counts(counts: np.ndarray) -> np.ndarray:
    """Gini impurity per row of a class-count matrix (paper Eq. 1).

    Hot path (hundreds of thousands of calls per forest fit): guarded
    by clamping instead of an ``np.errstate`` context, which profiling
    showed dominated the per-call cost.
    """
    totals = counts.sum(axis=-1, keepdims=True)
    p = counts / np.maximum(totals, 1e-300)
    g = 1.0 - np.einsum("...i,...i->...", p, p)
    return np.where(totals[..., 0] > 0, g, 0.0)


class DecisionTreeClassifier(_TreeBase):
    """CART classifier minimizing Gini impurity."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one label per row")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        self._n_classes = len(self.classes_)
        self._fit_arrays(X, y_enc)
        # Normalized importances.
        total = self.feature_importances_raw_.sum()
        self.feature_importances_ = (
            self.feature_importances_raw_ / total if total > 0
            else np.zeros_like(self.feature_importances_raw_))
        return self

    # -- subclass hooks --------------------------------------------------
    def _node_stats(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        return counts / counts.sum()

    def _impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=self._n_classes).astype(float)
        return float(_gini_from_counts(counts))

    def _impurity_from_stats(self, stats: np.ndarray,
                             y: np.ndarray) -> float:
        # stats are the node's class probabilities.
        return float(1.0 - np.dot(stats, stats))

    def _best_split_feature(self, x: np.ndarray, y: np.ndarray,
                            min_leaf: int) -> tuple[float, float]:
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        n = len(xs)
        # One-hot prefix sums -> class counts left of each split.
        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(onehot, axis=0)[:-1]  # split after i
        total = left_counts[-1] + onehot[-1]
        right_counts = total - left_counts
        n_left = np.arange(1, n)
        n_right = n - n_left
        # Valid split positions: feature value changes & leaf sizes ok.
        valid = (xs[1:] != xs[:-1]) & (n_left >= min_leaf) & \
            (n_right >= min_leaf)
        if not np.any(valid):
            return -np.inf, np.nan
        g_parent = _gini_from_counts(total[None, :])[0]
        g_left = _gini_from_counts(left_counts)
        g_right = _gini_from_counts(right_counts)
        child = (n_left * g_left + n_right * g_right) / n
        gain = (g_parent - child) * n  # weighted decrease
        gain[~valid] = -np.inf
        best = int(np.argmax(gain))
        thr = 0.5 * (xs[best] + xs[best + 1])
        return float(gain[best]), float(thr)

    # -- prediction --------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        leaves = self.apply(X)
        return self.values_[leaves]

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))


class DecisionTreeRegressor(_TreeBase):
    """CART regressor minimizing within-node variance (MSE)."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one target per row")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._fit_arrays(X, y)
        return self

    def _node_stats(self, y: np.ndarray) -> np.ndarray:
        return np.array([y.mean()])

    def _impurity(self, y: np.ndarray) -> float:
        return float(y.var())

    def _best_split_feature(self, x: np.ndarray, y: np.ndarray,
                            min_leaf: int) -> tuple[float, float]:
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        n = len(xs)
        csum = np.cumsum(ys)[:-1]
        csum2 = np.cumsum(ys * ys)[:-1]
        total, total2 = ys.sum(), (ys * ys).sum()
        n_left = np.arange(1, n)
        n_right = n - n_left
        # Sum of squared errors left/right of each split.
        sse_left = csum2 - csum**2 / n_left
        sse_right = (total2 - csum2) - (total - csum)**2 / n_right
        valid = (xs[1:] != xs[:-1]) & (n_left >= min_leaf) & \
            (n_right >= min_leaf)
        if not np.any(valid):
            return -np.inf, np.nan
        sse_parent = total2 - total**2 / n
        gain = sse_parent - (sse_left + sse_right)
        gain[~valid] = -np.inf
        best = int(np.argmax(gain))
        thr = 0.5 * (xs[best] + xs[best + 1])
        return float(gain[best]), float(thr)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.values_[self.apply(X), 0]
