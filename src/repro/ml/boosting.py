"""Gradient boosting classifier (multinomial deviance, CART regressors).

Friedman's gradient boosting machine: per boosting round, one shallow
regression tree per class is fitted to the softmax residuals, and leaf
values are set by a one-step Newton update.  Matches the behaviour of
scikit-learn's ``GradientBoostingClassifier`` closely enough for the
paper's Table II model comparison.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .parallel import resolve_n_jobs
from .tree import DecisionTreeRegressor, PackedTrees


def _softmax(F: np.ndarray) -> np.ndarray:
    z = F - F.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def _fit_class_tree(payload: tuple
                    ) -> tuple[DecisionTreeRegressor, np.ndarray]:
    """Fit one class's weak learner of one boosting round and return
    ``(tree, per-sample score update)``.  Module-level so the process
    pool can pickle it; classes within a round are independent, so the
    result is identical however the K fits are scheduled."""
    X, sub, residual_k, seed, K, max_depth, min_samples_leaf = payload
    tree = DecisionTreeRegressor(
        max_depth=max_depth, min_samples_leaf=min_samples_leaf,
        random_state=seed)
    tree.fit(X[sub], residual_k[sub])
    # Newton leaf update on the full sample: gamma =
    # (K-1)/K * sum(r) / sum(|r|(1-|r|)) per leaf.
    leaves = tree.apply(X)
    hess_term = np.abs(residual_k) * (1.0 - np.abs(residual_k))
    num = np.bincount(leaves, weights=residual_k,
                      minlength=tree.node_count)
    den = np.bincount(leaves, weights=hess_term,
                      minlength=tree.node_count)
    gamma = np.zeros(tree.node_count)
    nz = den > 1e-12
    gamma[nz] = (K - 1) / K * num[nz] / den[nz]
    tree.values_ = gamma[:, None]
    return tree, gamma[leaves]


class GradientBoostingClassifier:
    """K-class gradient boosting with multinomial deviance loss."""

    def __init__(self, n_estimators: int = 100, learning_rate: float = 0.1,
                 max_depth: int = 3, min_samples_leaf: int = 1,
                 subsample: float = 1.0,
                 random_state: int | None = None,
                 n_jobs: int | None = None) -> None:
        if not 0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        resolve_n_jobs(n_jobs)  # validate eagerly
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.n_jobs = n_jobs

    def get_params(self) -> dict:
        return {
            "n_estimators": self.n_estimators,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "subsample": self.subsample,
            "random_state": self.random_state,
            "n_jobs": self.n_jobs,
        }

    def fit(self, X: np.ndarray,
            y: np.ndarray) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one label per row")
        self.classes_, y_enc = np.unique(y, return_inverse=True)
        n, _ = X.shape
        K = len(self.classes_)
        rng = np.random.default_rng(self.random_state)

        onehot = np.zeros((n, K))
        onehot[np.arange(n), y_enc] = 1.0
        # Initial scores: log class priors.
        priors = np.clip(onehot.mean(axis=0), 1e-12, None)
        self.init_score_ = np.log(priors)
        F = np.tile(self.init_score_, (n, 1))

        self.estimators_: list[list[DecisionTreeRegressor]] = []
        # The pool is reused across all boosting rounds, so its spawn
        # cost amortizes over the whole fit: rows x rounds x classes
        # is the relevant work size for adaptive engagement.
        jobs = resolve_n_jobs(self.n_jobs,
                              work_units=n * self.n_estimators * K)
        pool = (ProcessPoolExecutor(max_workers=min(jobs, K))
                if jobs > 1 and K > 1 else None)
        try:
            for _ in range(self.n_estimators):
                proba = _softmax(F)
                residual = onehot - proba
                if self.subsample < 1.0:
                    sub = rng.random(n) < self.subsample
                    if not np.any(sub):
                        sub[rng.integers(n)] = True
                else:
                    sub = np.ones(n, dtype=bool)
                # Per-class seeds pre-drawn in serial order, so pooled
                # rounds are bit-identical to serial ones.
                payloads = [
                    (X, sub, residual[:, k], int(rng.integers(2**31)),
                     K, self.max_depth, self.min_samples_leaf)
                    for k in range(K)
                ]
                if pool is None:
                    results = [_fit_class_tree(p) for p in payloads]
                else:
                    results = list(pool.map(_fit_class_tree, payloads))
                stage: list[DecisionTreeRegressor] = []
                for k, (tree, update) in enumerate(results):
                    F[:, k] += self.learning_rate * update
                    stage.append(tree)
                self.estimators_.append(stage)
        finally:
            if pool is not None:
                pool.shutdown()
        self.n_features_in_ = X.shape[1]
        self._packed_ = None  # invalidate any batch arena of a prior fit
        return self

    def _packed(self) -> PackedTrees:
        packed = getattr(self, "_packed_", None)
        if packed is None:
            packed = PackedTrees(
                [t for stage in self.estimators_ for t in stage])
            self._packed_ = packed
        return packed

    def decision_function_batch(self, X: np.ndarray) -> np.ndarray:
        """Per-class scores via one packed traversal of every stage's
        trees — bit-identical to :meth:`decision_function` (same leaf
        comparisons, same stage-order accumulation)."""
        if not hasattr(self, "estimators_"):
            raise RuntimeError("GradientBoostingClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        K = len(self.classes_)
        # (n, stages * K) leaf values, stage-major to match fit order.
        leaf = self._packed().leaf_values(X)[:, :, 0]
        leaf = leaf.reshape(len(X), len(self.estimators_), K)
        F = np.tile(self.init_score_, (len(X), 1))
        for s in range(len(self.estimators_)):
            F += self.learning_rate * leaf[:, s]
        return F

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Vectorized batch prediction — element-wise identical to
        :meth:`predict`, one arena descent instead of a Python loop
        over ``stages * classes`` trees."""
        scores = self.decision_function_batch(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "estimators_"):
            raise RuntimeError("GradientBoostingClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        F = np.tile(self.init_score_, (len(X), 1))
        for stage in self.estimators_:
            for k, tree in enumerate(stage):
                F[:, k] += self.learning_rate * tree.predict(X)
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))
