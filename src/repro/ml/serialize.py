"""Model serialization.

The paper's framework ships the pre-trained model *inside* the MPI
library release, so models must round-trip through a portable on-disk
format.  This module serializes every estimator in :mod:`repro.ml` to a
single JSON-compatible dict (trees as flat arrays), with NumPy arrays
base64-encoded.  No pickle — the artifact is inspectable, diffable, and
safe to load from an untrusted package.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any

import numpy as np

from .boosting import GradientBoostingClassifier
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier
from .preprocessing import StandardScaler
from .svm import SVC, _BinarySVM
from .tree import DecisionTreeClassifier, DecisionTreeRegressor

FORMAT_VERSION = 1


def _encode_array(arr: np.ndarray) -> dict[str, Any]:
    arr = np.asarray(arr)
    return {
        # tobytes() always emits a C-order copy, shape preserved.
        "__ndarray__": base64.b64encode(arr.tobytes()).decode("ascii"),
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
    }


def _decode_array(obj: dict[str, Any]) -> np.ndarray:
    raw = base64.b64decode(obj["__ndarray__"])
    return np.frombuffer(raw, dtype=np.dtype(obj["dtype"])).reshape(
        obj["shape"]).copy()


def _is_encoded_array(obj: Any) -> bool:
    return isinstance(obj, dict) and "__ndarray__" in obj


# ---------------------------------------------------------------------
# Per-estimator field tables: constructor params + fitted attributes.
# ---------------------------------------------------------------------

_TREE_FITTED = ("feature_", "threshold_", "left_", "right_", "values_",
                "feature_importances_raw_", "n_features_in_")


def _dump_tree(tree: DecisionTreeClassifier | DecisionTreeRegressor
               ) -> dict[str, Any]:
    out: dict[str, Any] = {
        "kind": type(tree).__name__,
        "params": {
            "max_depth": tree.max_depth,
            "min_samples_split": tree.min_samples_split,
            "min_samples_leaf": tree.min_samples_leaf,
            "max_features": tree.max_features,
            "random_state": tree.random_state,
        },
    }
    for name in _TREE_FITTED:
        out[name] = _encode_array(np.asarray(getattr(tree, name)))
    if isinstance(tree, DecisionTreeClassifier):
        out["classes_"] = _encode_array(np.asarray(tree.classes_))
        out["_n_classes"] = tree._n_classes
        out["feature_importances_"] = _encode_array(
            tree.feature_importances_)
    return out


def _load_tree(data: dict[str, Any]
               ) -> DecisionTreeClassifier | DecisionTreeRegressor:
    cls = {"DecisionTreeClassifier": DecisionTreeClassifier,
           "DecisionTreeRegressor": DecisionTreeRegressor}[data["kind"]]
    tree = cls(**data["params"])
    for name in _TREE_FITTED:
        value = _decode_array(data[name])
        setattr(tree, name, int(value) if name == "n_features_in_"
                else value)
    if isinstance(tree, DecisionTreeClassifier):
        tree.classes_ = _decode_array(data["classes_"])
        tree._n_classes = int(data["_n_classes"])
        tree.feature_importances_ = _decode_array(
            data["feature_importances_"])
    return tree


def _dump_forest(model: RandomForestClassifier) -> dict[str, Any]:
    return {
        "params": model.get_params(),
        "classes_": _encode_array(np.asarray(model.classes_)),
        "feature_importances_": _encode_array(model.feature_importances_),
        "n_features_in_": model.n_features_in_,
        "estimators_": [_dump_tree(t) for t in model.estimators_],
    }


def _load_forest(data: dict[str, Any]) -> RandomForestClassifier:
    model = RandomForestClassifier(**data["params"])
    model.classes_ = _decode_array(data["classes_"])
    model.feature_importances_ = _decode_array(
        data["feature_importances_"])
    model.n_features_in_ = int(data["n_features_in_"])
    model.estimators_ = [_load_tree(t) for t in data["estimators_"]]
    return model


def _dump_boosting(model: GradientBoostingClassifier) -> dict[str, Any]:
    return {
        "params": model.get_params(),
        "classes_": _encode_array(np.asarray(model.classes_)),
        "init_score_": _encode_array(model.init_score_),
        "n_features_in_": model.n_features_in_,
        "estimators_": [[_dump_tree(t) for t in stage]
                        for stage in model.estimators_],
    }


def _load_boosting(data: dict[str, Any]) -> GradientBoostingClassifier:
    model = GradientBoostingClassifier(**data["params"])
    model.classes_ = _decode_array(data["classes_"])
    model.init_score_ = _decode_array(data["init_score_"])
    model.n_features_in_ = int(data["n_features_in_"])
    model.estimators_ = [[_load_tree(t) for t in stage]
                         for stage in data["estimators_"]]
    return model


def _dump_knn(model: KNeighborsClassifier) -> dict[str, Any]:
    return {
        "params": model.get_params(),
        "classes_": _encode_array(np.asarray(model.classes_)),
        "_y": _encode_array(model._y),
        "_X": _encode_array(model._X),
        "n_features_in_": model.n_features_in_,
    }


def _load_knn(data: dict[str, Any]) -> KNeighborsClassifier:
    model = KNeighborsClassifier(**data["params"])
    model.classes_ = _decode_array(data["classes_"])
    model._y = _decode_array(data["_y"])
    model._X = _decode_array(data["_X"])
    model.n_features_in_ = int(data["n_features_in_"])
    return model


def _dump_svc(model: SVC) -> dict[str, Any]:
    binaries = []
    for b in model._binaries:
        binaries.append({
            "C": b.C, "kernel": b.kernel, "gamma": b.gamma,
            "tol": b.tol, "max_passes": b.max_passes,
            "max_iter": b.max_iter, "seed": b.seed,
            "support_vectors_": _encode_array(b.support_vectors_),
            "dual_coef_": _encode_array(b.dual_coef_),
            "intercept_": b.intercept_,
        })
    return {
        "params": model.get_params(),
        "classes_": _encode_array(np.asarray(model.classes_)),
        "n_features_in_": model.n_features_in_,
        "binaries": binaries,
    }


def _load_svc(data: dict[str, Any]) -> SVC:
    model = SVC(**data["params"])
    model.classes_ = _decode_array(data["classes_"])
    model.n_features_in_ = int(data["n_features_in_"])
    model._binaries = []
    for bd in data["binaries"]:
        b = _BinarySVM(bd["C"], bd["kernel"], bd["gamma"], bd["tol"],
                       bd["max_passes"], bd["max_iter"], bd["seed"])
        b.support_vectors_ = _decode_array(bd["support_vectors_"])
        b.dual_coef_ = _decode_array(bd["dual_coef_"])
        b.intercept_ = float(bd["intercept_"])
        model._binaries.append(b)
    return model


def _dump_scaler(scaler: StandardScaler) -> dict[str, Any]:
    return {"mean_": _encode_array(scaler.mean_),
            "scale_": _encode_array(scaler.scale_)}


def _load_scaler(data: dict[str, Any]) -> StandardScaler:
    scaler = StandardScaler()
    scaler.mean_ = _decode_array(data["mean_"])
    scaler.scale_ = _decode_array(data["scale_"])
    return scaler


_DUMPERS = {
    RandomForestClassifier: ("random_forest", _dump_forest),
    GradientBoostingClassifier: ("gradient_boosting", _dump_boosting),
    KNeighborsClassifier: ("knn", _dump_knn),
    SVC: ("svc", _dump_svc),
    StandardScaler: ("standard_scaler", _dump_scaler),
    DecisionTreeClassifier: ("tree_classifier", _dump_tree),
    DecisionTreeRegressor: ("tree_regressor", _dump_tree),
}

_LOADERS = {
    "random_forest": _load_forest,
    "gradient_boosting": _load_boosting,
    "knn": _load_knn,
    "svc": _load_svc,
    "standard_scaler": _load_scaler,
    "tree_classifier": _load_tree,
    "tree_regressor": _load_tree,
}


def dump_model(model: Any) -> dict[str, Any]:
    """Serialize a fitted estimator to a JSON-compatible dict."""
    for cls, (tag, dumper) in _DUMPERS.items():
        if type(model) is cls:
            return {"format_version": FORMAT_VERSION, "model_type": tag,
                    "payload": dumper(model)}
    raise TypeError(f"cannot serialize {type(model).__name__}")


def load_model(data: dict[str, Any]) -> Any:
    """Reconstruct an estimator from :func:`dump_model` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version}")
    tag = data["model_type"]
    try:
        loader = _LOADERS[tag]
    except KeyError:
        raise ValueError(f"unknown model type {tag!r}") from None
    return loader(data["payload"])


def save_model(model: Any, path: str | Path) -> Path:
    """Serialize *model* to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(dump_model(model)))
    return path


def load_model_file(path: str | Path) -> Any:
    """Load a model saved by :func:`save_model`."""
    return load_model(json.loads(Path(path).read_text()))
