"""Process-pool parallelism for the ensemble trainers.

The estimators in this package are pure NumPy, so Python's GIL makes
thread pools useless for tree fitting; a process pool is the only way
to use more than one core.  Determinism is preserved by *pre-drawing*
every per-task seed from the master RNG in serial order before any
work is dispatched — parallel results are bit-identical to serial.

Worker functions handed to :func:`parallel_map` must be module-level
(picklable).  ``n_jobs`` follows the scikit-learn convention:
``None``/``1`` serial, ``-1`` one worker per CPU, ``k > 1`` exactly
*k* workers.

Pool spawn/pickle overhead dominates small fits (a 42-row forest fit
recorded a 0.46x *slowdown* with 2 workers), so callers that know how
much work they are dispatching pass ``work_units`` — an abstract size
(rows x estimators for ensembles, candidates x folds x rows for grid
search) — and :func:`resolve_n_jobs` engages the pool *adaptively*:
never more workers than cores, and never fewer than
``PARALLEL_MIN_UNITS_PER_WORKER`` units each, degrading all the way to
serial so a pooled fit is never slower than a serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from ..obs.telemetry import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    use_telemetry,
)

#: Smallest amount of work (abstract units; see module docstring) that
#: justifies one pool worker.  Calibrated against the bench harness:
#: a worker costs roughly one fork + two pickles (~20-40 ms), and
#: 50k row-estimator units of tree fitting cost an order of magnitude
#: more than that, so the pool engages only where it can win.
PARALLEL_MIN_UNITS_PER_WORKER = 50_000


def resolve_n_jobs(n_jobs: int | None,
                   work_units: int | None = None) -> int:
    """Normalize an ``n_jobs`` knob to a concrete worker count.

    When *work_units* is given, the count is resolved *adaptively*:
    capped at the machine's core count (extra processes on a saturated
    machine are pure overhead) and shrunk so every worker receives at
    least :data:`PARALLEL_MIN_UNITS_PER_WORKER` units of work — down to
    ``1`` (serial, no pool) for workloads too small to amortize the
    fork + pickle cost.  Without *work_units* the requested count is
    honored verbatim (the pre-adaptive contract).
    """
    if n_jobs is None:
        jobs = 1
    elif n_jobs == -1:
        jobs = os.cpu_count() or 1
    elif not isinstance(n_jobs, int) or isinstance(n_jobs, bool) \
            or n_jobs < 1:
        raise ValueError(
            f"n_jobs must be a positive int, -1, or None; got {n_jobs!r}")
    else:
        jobs = n_jobs
    if work_units is None or jobs == 1:
        return jobs
    if not isinstance(work_units, int) or isinstance(work_units, bool) \
            or work_units < 0:
        raise ValueError(
            f"work_units must be a non-negative int, got {work_units!r}")
    affordable = work_units // PARALLEL_MIN_UNITS_PER_WORKER
    return max(1, min(jobs, os.cpu_count() or 1, affordable))


def chunk_evenly(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Split *items* into at most *n_chunks* contiguous, near-equal
    chunks (never returns empty chunks)."""
    n_chunks = max(1, min(n_chunks, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def _traced_worker(payload: tuple[Callable[[Any], Any], Any]
                   ) -> tuple[Any, list[dict], list[dict]]:
    """Run one task under a fresh per-worker tracer/registry and ship
    the telemetry home alongside the result.

    Worker processes cannot share the parent's ambient tracer, so spans
    recorded inside worker code would silently vanish; this wrapper
    captures them as plain dicts for :meth:`Tracer.merge` /
    :meth:`MetricsRegistry.merge_records` on the parent side.
    """
    fn, item = payload
    with use_telemetry(Tracer(), MetricsRegistry()) as (tracer, registry):
        result = fn(item)
        return result, tracer.export_spans(), registry.export_metrics()


def parallel_map(fn: Callable[[Any], Any], items: Sequence[Any],
                 n_jobs: int | None,
                 work_units: int | None = None) -> list[Any]:
    """``[fn(x) for x in items]``, fanned over a process pool when
    ``n_jobs`` allows it.  Results are returned in input order, so the
    caller sees identical output regardless of worker count.

    *work_units* (when known) enables the adaptive engagement rule of
    :func:`resolve_n_jobs`: too-small workloads run serially instead
    of paying pool overhead they cannot recoup.

    When the ambient tracer is enabled, tasks are dispatched through
    :func:`_traced_worker` and each worker's spans/metrics are merged
    back (in input order) — traced parallel runs keep the full span
    tree instead of losing everything behind the process boundary.
    """
    jobs = resolve_n_jobs(n_jobs, work_units=work_units)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    tracer = get_tracer()
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        if not tracer.enabled:
            return list(pool.map(fn, items))
        results = []
        registry = get_registry()
        for result, spans, metrics in pool.map(
                _traced_worker, [(fn, item) for item in items]):
            tracer.merge(spans)
            registry.merge_records(metrics)
            results.append(result)
        return results
