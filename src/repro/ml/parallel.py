"""Process-pool parallelism for the ensemble trainers.

The estimators in this package are pure NumPy, so Python's GIL makes
thread pools useless for tree fitting; a process pool is the only way
to use more than one core.  Determinism is preserved by *pre-drawing*
every per-task seed from the master RNG in serial order before any
work is dispatched — parallel results are bit-identical to serial.

Worker functions handed to :func:`parallel_map` must be module-level
(picklable).  ``n_jobs`` follows the scikit-learn convention:
``None``/``1`` serial, ``-1`` one worker per CPU, ``k > 1`` exactly
*k* workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from ..obs.telemetry import (
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    use_telemetry,
)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` knob to a concrete worker count."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        return os.cpu_count() or 1
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool) \
            or n_jobs < 1:
        raise ValueError(
            f"n_jobs must be a positive int, -1, or None; got {n_jobs!r}")
    return n_jobs


def chunk_evenly(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Split *items* into at most *n_chunks* contiguous, near-equal
    chunks (never returns empty chunks)."""
    n_chunks = max(1, min(n_chunks, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks, start = [], 0
    for i in range(n_chunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def _traced_worker(payload: tuple[Callable[[Any], Any], Any]
                   ) -> tuple[Any, list[dict], list[dict]]:
    """Run one task under a fresh per-worker tracer/registry and ship
    the telemetry home alongside the result.

    Worker processes cannot share the parent's ambient tracer, so spans
    recorded inside worker code would silently vanish; this wrapper
    captures them as plain dicts for :meth:`Tracer.merge` /
    :meth:`MetricsRegistry.merge_records` on the parent side.
    """
    fn, item = payload
    with use_telemetry(Tracer(), MetricsRegistry()) as (tracer, registry):
        result = fn(item)
        return result, tracer.export_spans(), registry.export_metrics()


def parallel_map(fn: Callable[[Any], Any], items: Sequence[Any],
                 n_jobs: int | None) -> list[Any]:
    """``[fn(x) for x in items]``, fanned over a process pool when
    ``n_jobs`` allows it.  Results are returned in input order, so the
    caller sees identical output regardless of worker count.

    When the ambient tracer is enabled, tasks are dispatched through
    :func:`_traced_worker` and each worker's spans/metrics are merged
    back (in input order) — traced parallel runs keep the full span
    tree instead of losing everything behind the process boundary.
    """
    jobs = resolve_n_jobs(n_jobs)
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    tracer = get_tracer()
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        if not tracer.enabled:
            return list(pool.map(fn, items))
        results = []
        registry = get_registry()
        for result, spans, metrics in pool.map(
                _traced_worker, [(fn, item) for item in items]):
            tracer.merge(spans)
            registry.merge_records(metrics)
            results.append(result)
        return results
