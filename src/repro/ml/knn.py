"""K-nearest-neighbours classifier (brute-force, chunked distances)."""

from __future__ import annotations

import numpy as np


class KNeighborsClassifier:
    """Majority vote among the k nearest training points (Euclidean or
    Manhattan metric).  Distances are computed in chunks to bound peak
    memory on large test sets."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform",
                 metric: str = "euclidean", chunk_size: int = 2048) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"unknown weights {weights!r}")
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(f"unknown metric {metric!r}")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.metric = metric
        self.chunk_size = chunk_size

    def get_params(self) -> dict:
        return {"n_neighbors": self.n_neighbors, "weights": self.weights,
                "metric": self.metric, "chunk_size": self.chunk_size}

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D with one label per row")
        if self.n_neighbors > len(X):
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds training size "
                f"{len(X)}")
        self.classes_, self._y = np.unique(y, return_inverse=True)
        self._X = X
        self.n_features_in_ = X.shape[1]
        return self

    def _distances(self, chunk: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            # (a-b)^2 = a^2 - 2ab + b^2; no sqrt needed for ranking,
            # but 'distance' weights want true distances.
            d2 = (np.sum(chunk**2, axis=1)[:, None]
                  - 2.0 * chunk @ self._X.T
                  + np.sum(self._X**2, axis=1)[None, :])
            return np.sqrt(np.maximum(d2, 0.0))
        return np.abs(chunk[:, None, :] - self._X[None, :, :]).sum(axis=2)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "_X"):
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        k = self.n_neighbors
        K = len(self.classes_)
        out = np.zeros((len(X), K))
        for start in range(0, len(X), self.chunk_size):
            chunk = X[start:start + self.chunk_size]
            dist = self._distances(chunk)
            nn = np.argpartition(dist, k - 1, axis=1)[:, :k]
            labels = self._y[nn]
            if self.weights == "uniform":
                w = np.ones_like(labels, dtype=float)
            else:
                d = np.take_along_axis(dist, nn, axis=1)
                w = 1.0 / np.maximum(d, 1e-12)
            for c in range(K):
                out[start:start + len(chunk), c] = \
                    np.sum(w * (labels == c), axis=1)
        out /= np.maximum(out.sum(axis=1, keepdims=True), 1e-12)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction over an ``(N, F)`` matrix.

        The brute-force distance path is already fully vectorized (and
        chunked to bound memory), so this validates the batch shape and
        delegates; it exists so every model family exposes the same
        batch-serving entry point."""
        if not hasattr(self, "_X"):
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"expected (n, {self.n_features_in_}) input, "
                f"got {X.shape}")
        return self.predict(X)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(X) == np.asarray(y)))
