"""Feature preprocessing: standardization and label encoding."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean unit-variance scaling (constant features left at 0)."""

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != len(self.mean_):
            raise ValueError(
                f"expected {len(self.mean_)} features, got {X.shape[1]}")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler is not fitted")
        return np.asarray(X) * self.scale_ + self.mean_


class LabelEncoder:
    """Bidirectional label <-> integer mapping."""

    def fit(self, y: np.ndarray) -> "LabelEncoder":
        self.classes_ = np.unique(np.asarray(y))
        return self

    def transform(self, y: np.ndarray) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted")
        y = np.asarray(y)
        idx = np.searchsorted(self.classes_, y)
        bad = (idx >= len(self.classes_)) | (self.classes_[np.minimum(
            idx, len(self.classes_) - 1)] != y)
        if np.any(bad):
            raise ValueError(f"unseen labels: {np.unique(y[bad])}")
        return idx

    def fit_transform(self, y: np.ndarray) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, idx: np.ndarray) -> np.ndarray:
        if not hasattr(self, "classes_"):
            raise RuntimeError("LabelEncoder is not fitted")
        idx = np.asarray(idx)
        if np.any((idx < 0) | (idx >= len(self.classes_))):
            raise ValueError("index out of range")
        return self.classes_[idx]
